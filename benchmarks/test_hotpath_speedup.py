"""Benchmark gate for the fused/no-grad bulk-encode hot path.

The seed implementations — four separate attention projections, per-step
Python RNN loops over autograd tensors, per-row final-state gathers — are
ported verbatim below and temporarily swapped into the live modules, so the
same model (same weights, same batches) can be bulk-encoded through the seed
path and through this PR's fused path.  The measured ratio is exactly the
encode speedup of the kernel overhaul (3.3-4.2x on the benchmark machine);
it lands in ``benchmark.extra_info`` next to the Table 2 / Figure 10
artefacts so the perf trajectory accumulates run over run, while the hard
assertion sits at 2.5x to leave headroom for noisy shared CI runners.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import numpy as np

from repro.core.config import small_config
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import build_and_pretrain, ZooSettings
from repro.nn import GRU, Tensor, stack
from repro.nn.attention import TransformerEncoderLayer
from repro.nn.tensor import masked_fill

#: Measured 3.3-4.2x on the benchmark machine; the hard gate leaves headroom
#: for noisy shared CI runners (different core counts / BLAS threading).
#: The actual measured ratio is recorded in extra_info every run.
REQUIRED_SPEEDUP = 2.5
REPEATS = 3


# --------------------------------------------------------------------- #
# Seed (legacy) forward implementations, driven off the shipped weights
# --------------------------------------------------------------------- #
def _legacy_attention(attn, x, attention_bias=None, key_padding_mask=None):
    batch, seq, _ = x.shape
    d = attn.d_model
    w, b = attn.qkv_weight, attn.qkv_bias

    def split_heads(t):
        return t.reshape(batch, seq, attn.num_heads, attn.d_head).transpose(0, 2, 1, 3)

    query = split_heads(x @ w[:, :d] + b[:d])
    key = split_heads(x @ w[:, d : 2 * d] + b[d : 2 * d])
    value = split_heads(x @ w[:, 2 * d :] + b[2 * d :])
    scores = (query @ key.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(attn.d_head))
    if attention_bias is not None:
        scores = scores + attention_bias
    if key_padding_mask is not None:
        mask = np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
        mask = np.broadcast_to(mask, (batch, attn.num_heads, seq, seq))
        scores = masked_fill(scores, mask, -1e9)
    weights = attn.dropout(scores.softmax(axis=-1))
    context = (weights @ value).transpose(0, 2, 1, 3).reshape(batch, seq, d)
    return attn.out_proj(context)


def _legacy_encoder_layer_forward(self, x, attention_bias=None, key_padding_mask=None):
    attended = _legacy_attention(
        self.attention, x, attention_bias=attention_bias, key_padding_mask=key_padding_mask
    )
    x = self.norm1(x + self.dropout(attended))
    transformed = self.feed_forward(x)
    return self.norm2(x + self.dropout(transformed))


def _legacy_gru_forward(self, x, lengths=None, initial=None):
    batch, seq_len, _ = x.shape
    hidden = initial if initial is not None else Tensor.zeros((batch, self.hidden_size))
    outputs = []
    for step in range(seq_len):
        hidden = self.cell(x[:, step, :], hidden)
        outputs.append(hidden)
    all_hidden = stack(outputs, axis=1)
    if lengths is None:
        return all_hidden, hidden
    rows = []
    for index in range(batch):
        last = max(int(lengths[index]) - 1, 0)
        rows.append(all_hidden[index, last, :])
    return all_hidden, stack(rows, axis=0)


def _legacy_start_encode(self, trajectories, batch_size=None, time_mode="full"):
    """Seed ``STARTModel.encode``: a fresh stage-one TPE-GAT sweep per batch."""
    from repro.nn import no_grad

    if not trajectories:
        return np.zeros((0, self.config.d_model), dtype=np.float32)
    batch_size = batch_size or self.config.batch_size
    builder = self.make_builder()
    was_training = self.training
    self.eval()
    self._road_cache = None
    outputs = []
    with no_grad():
        for start in range(0, len(trajectories), batch_size):
            chunk = trajectories[start : start + batch_size]
            batch = builder.build(chunk, span_mask=False, time_mode=time_mode)
            self._road_cache = None  # the seed recomputed the GAT every batch
            _, pooled = self.forward(batch)
            outputs.append(pooled.data.astype(np.float32))
    if was_training:
        self.train()
    return np.concatenate(outputs, axis=0)


@contextmanager
def _legacy_kernels():
    from repro.core.model import STARTModel

    originals = (TransformerEncoderLayer.forward, GRU.forward, STARTModel.encode)
    TransformerEncoderLayer.forward = _legacy_encoder_layer_forward
    GRU.forward = _legacy_gru_forward
    STARTModel.encode = _legacy_start_encode
    try:
        yield
    finally:
        TransformerEncoderLayer.forward, GRU.forward, STARTModel.encode = originals


def _best_encode_seconds(model, pool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        model.encode(pool)
        best = min(best, time.perf_counter() - start)
    return best


def test_bulk_encode_speedup_gate(benchmark, once, capsys):
    dataset = experiment_dataset("synthetic-porto", scale=0.3)
    pool = dataset.trajectories
    settings = ZooSettings(config=small_config(), pretrain_epochs=1)

    def measure():
        results = {}
        for name in ("START", "Trembr"):
            model, _ = build_and_pretrain(name, dataset, settings, {})
            fused = _best_encode_seconds(model, pool)
            with _legacy_kernels():
                legacy = _best_encode_seconds(model, pool)
            results[name] = (legacy, fused)
        return results

    results = once(benchmark, measure)
    with capsys.disabled():
        print()
        for name, (legacy, fused) in results.items():
            print(
                f"{name} bulk encode ({len(pool)} trajectories): "
                f"legacy {legacy * 1e3:.0f} ms -> fused {fused * 1e3:.0f} ms "
                f"({legacy / fused:.1f}x)"
            )

    start_speedup = results["START"][0] / results["START"][1]
    trembr_speedup = results["Trembr"][0] / results["Trembr"][1]
    assert start_speedup >= REQUIRED_SPEEDUP, (
        f"START bulk encode is only {start_speedup:.2f}x the seed kernels "
        f"(need >= {REQUIRED_SPEEDUP}x)"
    )
    assert trembr_speedup >= 1.2, (
        f"Trembr (GRU) bulk encode is only {trembr_speedup:.2f}x the seed kernels"
    )
    benchmark.extra_info["start_encode_speedup"] = float(start_speedup)
    benchmark.extra_info["trembr_encode_speedup"] = float(trembr_speedup)
    benchmark.extra_info["start_encode_seconds"] = float(results["START"][1])
    benchmark.extra_info["trembr_encode_seconds"] = float(results["Trembr"][1])
