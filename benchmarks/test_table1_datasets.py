"""Benchmark: regenerate Table I (dataset statistics after preprocessing)."""

from __future__ import annotations

from repro.experiments import format_table1, run_table1


def test_table1_dataset_statistics(benchmark, once, capsys):
    rows = once(benchmark, run_table1, scale=0.3)
    with capsys.disabled():
        print()
        print(format_table1(rows))
    assert {row["Dataset"] for row in rows} == {"synthetic-bj", "synthetic-porto"}
    bj = next(row for row in rows if row["Dataset"] == "synthetic-bj")
    porto = next(row for row in rows if row["Dataset"] == "synthetic-porto")
    # Table I shape: BJ is the larger dataset on both axes.
    assert bj["#Road Segment"] > porto["#Road Segment"]
    assert bj["#Trajectory"] > porto["#Trajectory"]
    benchmark.extra_info["bj_trajectories"] = bj["#Trajectory"]
    benchmark.extra_info["porto_trajectories"] = porto["#Trajectory"]
