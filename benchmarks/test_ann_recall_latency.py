"""Benchmark gate: the ANN backends on seed-corpus embeddings.

The acceptance criterion for the ANN subsystem: both ``"ivf"`` and
``"ivfpq"`` must reach **recall@10 >= 0.9** against the bruteforce oracle at
**>= 5x lower query latency**, on representations of the seed corpus served
at a scale where index structure matters.

The corpus is built the way the serving path would see it: pre-train a small
START on the synthetic-porto seed dataset, bulk-encode every trajectory
through the facade, then grow the embedding set to ~20k rows by replicating
it with small deterministic jitter (the standard ANN-bench device for
scaling a real corpus while preserving its geometry — trajectory embeddings
cluster by route/length structure, and the replicas emulate the continuous
arrivals the streaming layer would ingest).  Queries are jittered corpus
points, i.e. near-duplicate trips, the similarity workload of the paper.

Speedup floors are env-overridable for noisy shared runners
(``REPRO_ANN_MIN_SPEEDUP``, default 5.0), mirroring the serving-throughput
benchmark; the recall floor is hard.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.api import Engine, EngineConfig
from repro.core import tiny_config
from repro.eval.similarity import recall_against_exact
from repro.experiments.datasets import experiment_dataset

TARGET_ROWS = 20_000
NUM_QUERIES = 200
K = 10
JITTER = 0.05
REPEATS = 3
MIN_RECALL = 0.9
MIN_SPEEDUP = float(os.environ.get("REPRO_ANN_MIN_SPEEDUP", "5.0"))

#: The knobs the gate certifies (also the documented starting points in
#: docs/ARCHITECTURE.md — keep them in sync).
ANN_SETTINGS = {
    "ivf": {"nlist": 128, "nprobe": 8},
    "ivfpq": {"nlist": 128, "nprobe": 16, "pq_m": 8, "pq_bits": 6, "rerank": 64},
}


def best_of(function, repeats: int = REPEATS):
    best = float("inf")
    output = None
    for _ in range(repeats):
        started = time.perf_counter()
        output = function()
        best = min(best, time.perf_counter() - started)
    return best, output


def seed_corpus_embeddings() -> np.ndarray:
    """Encode the seed dataset through the facade, then jitter-replicate."""
    dataset = experiment_dataset("synthetic-porto", scale=0.3)
    engine = Engine.from_dataset(
        dataset, EngineConfig(start=tiny_config(batch_size=16), pretrain_epochs=1)
    )
    engine.pretrain(dataset.train_trajectories(), epochs=1)
    encoded = engine.encode(dataset.trajectories)
    rng = np.random.default_rng(23)
    replicas = -(-TARGET_ROWS // len(encoded))  # ceil division
    scale = JITTER * float(encoded.std())
    grown = np.concatenate(
        [
            encoded + scale * rng.standard_normal(encoded.shape).astype(np.float32)
            for _ in range(replicas)
        ]
    )[:TARGET_ROWS]
    return np.ascontiguousarray(grown, dtype=np.float32)


def test_ann_recall_and_speedup_vs_bruteforce(benchmark, once):
    corpus = seed_corpus_embeddings()
    rng = np.random.default_rng(29)
    picks = rng.choice(len(corpus), size=NUM_QUERIES, replace=False)
    queries = corpus[picks] + (JITTER / 2) * float(corpus.std()) * rng.standard_normal(
        (NUM_QUERIES, corpus.shape[1])
    ).astype(np.float32)

    reference = Engine(lambda batch: None, EngineConfig(backend="bruteforce"))
    reference.ingest_vectors(corpus)
    brute_seconds, exact = best_of(lambda: reference.backend.top_k(queries, K))

    results = {}
    for name, params in ANN_SETTINGS.items():
        engine = Engine(lambda batch: None, EngineConfig(backend=name, backend_params=params))
        engine.ingest_vectors(corpus)
        engine.backend.top_k(queries[:1], K)  # build the structure once
        seconds, approx = best_of(lambda: engine.backend.top_k(queries, K))
        recall = recall_against_exact(exact.indices, approx.indices)
        speedup = brute_seconds / seconds
        results[name] = (recall, speedup, seconds)
        assert recall >= MIN_RECALL, (
            f"{name} recall@{K} {recall:.3f} < {MIN_RECALL} on the seed corpus "
            f"({len(corpus)} rows, params {params})"
        )
        assert speedup >= MIN_SPEEDUP, (
            f"{name} query path {seconds * 1e3:.1f}ms vs bruteforce "
            f"{brute_seconds * 1e3:.1f}ms ({speedup:.1f}x; expected >= {MIN_SPEEDUP}x)"
        )

    # Record the IVF timed run under pytest-benchmark as well.
    ivf_engine = Engine(
        lambda batch: None, EngineConfig(backend="ivf", backend_params=ANN_SETTINGS["ivf"])
    )
    ivf_engine.ingest_vectors(corpus)
    ivf_engine.backend.top_k(queries[:1], K)
    once(benchmark, lambda: ivf_engine.backend.top_k(queries, K))
    benchmark.extra_info["corpus_rows"] = int(len(corpus))
    benchmark.extra_info["bruteforce_seconds"] = float(brute_seconds)
    for name, (recall, speedup, seconds) in results.items():
        benchmark.extra_info[f"{name}_recall_at_{K}"] = float(recall)
        benchmark.extra_info[f"{name}_speedup"] = float(speedup)
        benchmark.extra_info[f"{name}_seconds"] = float(seconds)
