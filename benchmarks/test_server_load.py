"""Load gates for the serving runtime: batching speedup and metrics overhead.

The serving claim of PR 6 measured at a serving-ish scale (20k rows, 64-d,
production ``chunked`` backend): coalescing concurrent single-row queries
into fused batches must sustain **at least 2x** the QPS of the same
requests issued one by one by a single caller through ``Engine.query``.
PR 9 adds the observability claim: turning the metrics registry **on**
must cost at most a few percent of that QPS.

Four phases, all over the same 512 unique queries (more than the 128-entry
query cache holds, so every query phase is all-miss and comparisons are
fair):

1. **Sequential baseline** — one caller, one ``Engine.query`` per request;
   best of ``ROUNDS`` passes.
2. **Batched, metrics off** — a :class:`ServingRuntime` built with
   ``metrics=NULL_REGISTRY`` (1 worker: this gate must hold on a single
   core, where the win comes from batch amortisation, not parallelism)
   with pipelined callers; best of ``ROUNDS`` passes.  Gated:
   ``batched_qps >= REPRO_SERVER_MIN_SPEEDUP (2.0) * sequential_qps``.
3. **Batched, metrics on** — the identical load against a runtime with the
   default live registry (queue-wait/service histograms, shared engine
   cache/backend instruments, the lot).  Gated: the instrumented runtime
   keeps at least ``1 - REPRO_OBS_MAX_OVERHEAD (0.05)`` of the
   uninstrumented QPS.
4. **Mixed traffic** — the same query load on the instrumented runtime
   with concurrent ingest waves arriving through ``submit_ingest``
   (background compaction/publication included, forcing mid-run replica
   refreshes).  Gated much softer: ``REPRO_SERVER_MIN_MIXED_SPEEDUP
   (0.5)`` — on one core every mid-run publish snapshots the whole index,
   so this gate guards against collapse/deadlock under writes, not for a
   speedup.  Afterwards ``runtime.metrics()`` must report the live load:
   non-zero QPS, batch occupancy, cache hit rate, per-backend latency
   counts and a non-zero ingest-lag peak.

QPS plus p50/p99 caller latency of every phase land in
``benchmark.extra_info`` (the pytest-benchmark JSON artefact in CI), which
the session-level trajectory hook folds into ``BENCH_pr9.json``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.api import Engine, EngineConfig, QueryRequest
from repro.obs import NULL_REGISTRY
from repro.server import ServerConfig, ServingRuntime
from repro.trajectory import Trajectory

ROWS = 20_000
DIM = 64
NUM_QUERIES = 512
K = 10
ROUNDS = 3
MAX_BATCH = 64
CALLERS = 2          # few submitters, deep pipelines: single-core friendly
PIPELINE_DEPTH = 64  # in-flight futures per caller (an async frontend's window)
INGEST_WAVES = 4
WAVE_SIZE = 64


def hashing_encode(batch: list[Trajectory]) -> np.ndarray:
    """Deterministic per-trajectory vectors (independent of batch layout)."""
    out = np.empty((len(batch), DIM), dtype=np.float32)
    for row, trajectory in enumerate(batch):
        out[row] = np.random.default_rng(trajectory.trajectory_id).standard_normal(DIM)
    return out


def make_trajectory(trajectory_id: int) -> Trajectory:
    return Trajectory(
        roads=[1, 2, 3],
        timestamps=[1.0, 2.0, 3.0],
        trajectory_id=trajectory_id,
    )


def run_callers(runtime: ServingRuntime, requests) -> tuple[float, np.ndarray]:
    """Drive ``requests`` through pipelined callers; returns (wall, latencies)."""
    chunks = [requests[i::CALLERS] for i in range(CALLERS)]

    def caller(chunk):
        latencies = []
        for start in range(0, len(chunk), PIPELINE_DEPTH):
            window = chunk[start : start + PIPELINE_DEPTH]
            futures = [(time.perf_counter(), runtime.submit(r)) for r in window]
            for submitted, future in futures:
                future.result(timeout=120)
                latencies.append(time.perf_counter() - submitted)
        return latencies

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CALLERS) as pool:
        latencies = [l for chunk_lat in pool.map(caller, chunks) for l in chunk_lat]
    return time.perf_counter() - started, np.asarray(latencies)


def percentiles_ms(latencies: np.ndarray) -> tuple[float, float]:
    return (
        float(np.percentile(latencies, 50) * 1e3),
        float(np.percentile(latencies, 99) * 1e3),
    )


def test_server_load_batched_vs_sequential(benchmark, once):
    rng = np.random.default_rng(2023)
    engine = Engine(hashing_encode, EngineConfig(backend="chunked"))
    engine.ingest_vectors(rng.standard_normal((ROWS, DIM)).astype(np.float32))
    queries = rng.standard_normal((NUM_QUERIES, DIM)).astype(np.float32)
    requests = [QueryRequest(queries=queries[i : i + 1], k=K) for i in range(NUM_QUERIES)]

    # --- Phase 1: the sequential single-caller baseline. -------------------
    sequential_seconds = np.inf
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for request in requests:
            engine.query(request)
        sequential_seconds = min(sequential_seconds, time.perf_counter() - started)
    sequential_qps = NUM_QUERIES / sequential_seconds

    config = ServerConfig(
        max_batch=MAX_BATCH,
        linger=0.001,
        num_workers=1,
        coalesce="fused",
        ingest_group_size=WAVE_SIZE,
        publish_every_groups=1,
        poll_interval=0.01,
    )

    def warm_up(runtime: ServingRuntime, shift: float) -> None:
        # Force the worker's first replica restore (a one-off snapshot-load)
        # out of every timed window; shifted queries stay out of the cache.
        warmup = [
            runtime.submit(QueryRequest(queries=queries[i : i + 1] + shift, k=K))
            for i in range(MAX_BATCH)
        ]
        for future in warmup:
            future.result(timeout=120)

    def best_of_rounds(runtime: ServingRuntime) -> tuple[float, np.ndarray]:
        best_seconds, best_latencies = np.inf, None
        for _ in range(ROUNDS):
            wall, latencies = run_callers(runtime, requests)
            if wall < best_seconds:
                best_seconds, best_latencies = wall, latencies
        return best_seconds, best_latencies

    # --- Phase 2 (the batching gate): metrics off. -------------------------
    with ServingRuntime(engine, config, metrics=NULL_REGISTRY) as runtime:
        warm_up(runtime, shift=100.0)
        batched_seconds, batched_latencies = best_of_rounds(runtime)
    batched_qps = NUM_QUERIES / batched_seconds

    # --- Phase 3 (the overhead gate): the same load, metrics on. -----------
    runtime = ServingRuntime(engine, config)
    with runtime:
        warm_up(runtime, shift=200.0)
        instrumented_seconds, _ = best_of_rounds(runtime)
        instrumented_qps = NUM_QUERIES / instrumented_seconds

        # --- Phase 4: mixed ingest+query traffic (still instrumented). -----
        def ingest_traffic():
            for wave in range(INGEST_WAVES):
                runtime.submit_ingest(
                    [make_trajectory(10_000_000 + wave * WAVE_SIZE + i) for i in range(WAVE_SIZE)]
                )
                time.sleep(0.02)  # a drip-feed producer, not a flood

        with ThreadPoolExecutor(max_workers=1) as producer:
            ingest_job = producer.submit(ingest_traffic)
            mixed_seconds, mixed_latencies = run_callers(runtime, requests)
            ingest_job.result(timeout=120)
        mixed_qps = NUM_QUERIES / mixed_seconds
        # A short hot pass so the snapshot shows the cache doing its job.
        hot = QueryRequest(queries=queries[:1], k=K)
        for _ in range(32):
            runtime.query(hot, timeout=120)
        runtime.flush_ingest()  # every submitted wave lands before we assert
        stats = runtime.stats()
        metrics_snapshot = runtime.metrics()

    # The serving promise: batching amortises per-query overhead >= 2x even
    # on one core (override the floor via REPRO_SERVER_MIN_SPEEDUP).
    speedup = batched_qps / sequential_qps
    floor = float(os.environ.get("REPRO_SERVER_MIN_SPEEDUP", "2.0"))
    assert speedup >= floor, (
        f"batched {batched_qps:.0f} qps is only {speedup:.2f}x the sequential "
        f"{sequential_qps:.0f} qps (floor {floor}x)"
    )
    # The observability promise: a live registry on the hot path costs at
    # most REPRO_OBS_MAX_OVERHEAD (5%) of the uninstrumented QPS.
    max_overhead = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "0.05"))
    overhead = 1.0 - instrumented_qps / batched_qps
    assert instrumented_qps >= (1.0 - max_overhead) * batched_qps, (
        f"instrumented {instrumented_qps:.0f} qps loses {overhead:.1%} vs the "
        f"uninstrumented {batched_qps:.0f} qps (budget {max_overhead:.0%})"
    )
    # Softer floor: queries must keep flowing while publishes snapshot the
    # index mid-run, but on one core that write work is real lost QPS.
    mixed_speedup = mixed_qps / sequential_qps
    mixed_floor = float(os.environ.get("REPRO_SERVER_MIN_MIXED_SPEEDUP", "0.5"))
    assert mixed_speedup >= mixed_floor, (
        f"mixed-traffic {mixed_qps:.0f} qps is only {mixed_speedup:.2f}x the "
        f"sequential {sequential_qps:.0f} qps (floor {mixed_floor}x)"
    )
    # The ingest side of the mixed phase actually happened and landed.
    assert stats["ingested_waves"] == INGEST_WAVES
    assert len(engine) == ROWS + INGEST_WAVES * WAVE_SIZE
    assert stats["publishes"] >= 2  # fresh generations were published mid-run

    # The snapshot reports the load it just served (the PR 9 acceptance bar).
    slo = metrics_snapshot["slo"]
    families = metrics_snapshot["metrics"]
    assert slo["qps"] > 0
    assert slo["mean_batch_occupancy"] > 0
    assert slo["cache_hit_rate"] > 0  # the hot pass hit the query cache
    backend_series = [
        series
        for series in families["engine_query_seconds"]["series"]
        if series["labels"]["backend"] == "chunked" and series["count"] > 0
    ]
    assert backend_series, "per-backend latency histogram recorded no scans"
    assert slo["ingest_lag_records_peak"] > 0  # waves were seen queued mid-run
    assert families["server_ingested_records_total"]["series"][0]["value"] == (
        INGEST_WAVES * WAVE_SIZE
    )

    p50, p99 = percentiles_ms(batched_latencies)
    mixed_p50, mixed_p99 = percentiles_ms(mixed_latencies)
    print(
        f"\nserver load @ {ROWS} rows x {DIM}d, {NUM_QUERIES} queries, k={K}\n"
        f"  sequential   : {sequential_qps:8.0f} qps\n"
        f"  batched (off): {batched_qps:8.0f} qps  ({speedup:.2f}x)  "
        f"p50={p50:.1f}ms p99={p99:.1f}ms\n"
        f"  batched (on) : {instrumented_qps:8.0f} qps  "
        f"(obs overhead {overhead:+.1%}, budget {max_overhead:.0%})\n"
        f"  mixed        : {mixed_qps:8.0f} qps  ({mixed_speedup:.2f}x)  "
        f"p50={mixed_p50:.1f}ms p99={mixed_p99:.1f}ms  "
        f"(+{INGEST_WAVES * WAVE_SIZE} rows, {stats['publishes']} publishes)\n"
        f"  slo          : qps={slo['qps']:.0f} "
        f"hit_rate={slo['cache_hit_rate']:.2f} "
        f"queue_p99={slo['queue_wait_p99_ms']:.1f}ms "
        f"lag_peak={slo['ingest_lag_records_peak']:.0f} records"
    )

    once(benchmark, lambda: engine.query_many(requests, coalesce="fused"))
    benchmark.extra_info["rows"] = ROWS
    benchmark.extra_info["num_queries"] = NUM_QUERIES
    benchmark.extra_info["sequential_qps"] = sequential_qps
    benchmark.extra_info["batched_qps"] = batched_qps
    benchmark.extra_info["batched_speedup"] = speedup
    benchmark.extra_info["batched_p50_ms"] = p50
    benchmark.extra_info["batched_p99_ms"] = p99
    benchmark.extra_info["mixed_qps"] = mixed_qps
    benchmark.extra_info["mixed_speedup"] = mixed_speedup
    benchmark.extra_info["mixed_p50_ms"] = mixed_p50
    benchmark.extra_info["mixed_p99_ms"] = mixed_p99
    benchmark.extra_info["publishes"] = stats["publishes"]
    benchmark.extra_info["mean_batch_occupancy"] = stats["mean_occupancy"]
    benchmark.extra_info["instrumented_qps"] = instrumented_qps
    benchmark.extra_info["obs_overhead_frac"] = overhead
    benchmark.extra_info["obs_qps"] = slo["qps"]
    benchmark.extra_info["obs_cache_hit_rate"] = slo["cache_hit_rate"]
    benchmark.extra_info["obs_queue_wait_p99_ms"] = slo["queue_wait_p99_ms"]
    benchmark.extra_info["obs_ingest_lag_records_peak"] = slo["ingest_lag_records_peak"]
