"""Micro-benchmark: SimilarityIndex vs. the brute-force search path.

Unlike the figure/table benchmarks this one times the *serving* hot path in
isolation, on the acceptance-criterion workload: 1 000 queries against a
5 000-trajectory database of 64-d representations.  The brute-force
reference is the seed implementation — a float64 ``(Q, D)`` distance matrix
followed by a stable full argsort per query — and the index must return the
identical neighbour lists at least 3x faster.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.serving.index import SimilarityIndex

NUM_QUERIES = 1_000
DATABASE_SIZE = 5_000
DIM = 64
K = 5
REPEATS = 3
# ~12x locally; overridable for noisy shared runners where BLAS contention
# can compress the gap (set to 1.0 to keep only the exactness check hard).
MIN_SPEEDUP = float(os.environ.get("REPRO_SERVING_MIN_SPEEDUP", "3.0"))


def bruteforce_topk(queries: np.ndarray, database: np.ndarray, k: int) -> np.ndarray:
    """The seed search path: float64 full matrix + stable full argsort."""
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float64)
    q_norm = (queries**2).sum(axis=1)[:, None]
    d_norm = (database**2).sum(axis=1)[None, :]
    distances = np.sqrt(np.maximum(q_norm + d_norm - 2.0 * queries @ database.T, 0.0))
    return np.argsort(distances, axis=1, kind="stable")[:, :k]


def best_of(function, repeats: int = REPEATS) -> tuple[float, np.ndarray]:
    best = float("inf")
    output = None
    for _ in range(repeats):
        started = time.perf_counter()
        output = function()
        best = min(best, time.perf_counter() - started)
    return best, output


def test_serving_topk_speedup_over_bruteforce(benchmark, once):
    rng = np.random.default_rng(17)
    database = rng.standard_normal((DATABASE_SIZE, DIM)).astype(np.float32)
    queries = rng.standard_normal((NUM_QUERIES, DIM)).astype(np.float32)
    index = SimilarityIndex(database)

    brute_seconds, brute_indices = best_of(lambda: bruteforce_topk(queries, database, K))
    index_seconds, result = best_of(lambda: index.topk(queries, K))
    # Identical neighbour lists, not just overlapping sets.
    np.testing.assert_array_equal(result.indices, brute_indices)

    speedup = brute_seconds / index_seconds
    # Acceptance criterion: >= 3x lower query latency than full-argsort search.
    assert speedup >= MIN_SPEEDUP, (
        f"index path {index_seconds*1e3:.1f}ms vs brute force {brute_seconds*1e3:.1f}ms "
        f"({speedup:.1f}x; expected >= {MIN_SPEEDUP}x)"
    )

    # Record the timed run under pytest-benchmark as well.
    once(benchmark, lambda: index.topk(queries, K))
    benchmark.extra_info["bruteforce_seconds"] = brute_seconds
    benchmark.extra_info["index_seconds"] = index_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["queries_per_second"] = NUM_QUERIES / index_seconds
