"""Benchmark: regenerate Figure 3 (MAPE by departure time and trajectory hops)."""

from __future__ import annotations

import numpy as np

from repro.experiments import Figure3Settings, format_figure3, run_figure3


def test_figure3_mape_under_scenarios(benchmark, once, capsys):
    settings = Figure3Settings(scale=0.3, pretrain_epochs=3, finetune_epochs=3)
    result = once(benchmark, run_figure3, settings)
    with capsys.disabled():
        print()
        print(format_figure3(result))

    series = result["series"]
    assert set(series) == {"START", "w/o Temporal", "Trembr"}
    for name, data in series.items():
        assert np.isfinite(data["overall"])
        assert len(data["weekday_by_hour"]) == len(result["hour_buckets"])
        assert len(data["by_hops"]) == len(result["hop_buckets"])

    # Paper shape: START (with temporal modules) beats at least one of the two
    # temporal-blind competitors overall (generous margin at smoke scale).
    competitors = [series["w/o Temporal"]["overall"], series["Trembr"]["overall"]]
    assert series["START"]["overall"] <= max(competitors) + 5.0
    benchmark.extra_info["start_overall_mape"] = series["START"]["overall"]
    benchmark.extra_info["wo_temporal_overall_mape"] = series["w/o Temporal"]["overall"]
    benchmark.extra_info["trembr_overall_mape"] = series["Trembr"]["overall"]
