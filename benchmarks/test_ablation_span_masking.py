"""Extra ablation bench: span masking vs. token-level masking.

DESIGN.md calls out the span-masking design choice: because consecutive roads
are adjacent in the network, single-token masking is trivially solvable from
the neighbours, so the paper masks *spans*.  This benchmark trains START with
span length 2 (the paper's l_m) and with span length 1 (token-level masking)
and compares the masked-recovery difficulty and downstream travel time error.
"""

from __future__ import annotations

import numpy as np

from repro.core import Pretrainer, small_config
from repro.eval import TaskSettings, run_travel_time_task
from repro.experiments import build_start, experiment_dataset


def _train_variant(mask_length: int) -> dict:
    config = small_config(mask_length=mask_length, use_contrastive_loss=False)
    dataset = experiment_dataset("synthetic-porto", scale=0.3)
    model = build_start(dataset, config)
    history = Pretrainer(model, config).pretrain(dataset.train_trajectories(), epochs=3)
    eta = run_travel_time_task(model, dataset, config, TaskSettings(finetune_epochs=3))
    return {"final_mask_loss": history.mask[-1], "eta_mape": eta["MAPE"]}


def test_span_vs_token_masking(benchmark, once, capsys):
    def run() -> dict:
        return {"span": _train_variant(mask_length=2), "token": _train_variant(mask_length=1)}

    result = once(benchmark, run)
    with capsys.disabled():
        print()
        print("Span-masking ablation (mask-only pre-training):")
        for name, stats in result.items():
            print(
                f"  {name:5s} masking: final mask loss = {stats['final_mask_loss']:.3f}, "
                f"ETA MAPE = {stats['eta_mape']:.2f}"
            )

    # Token-level masking is the easier pre-training task (adjacent roads give
    # the answer away), so its final recovery loss should not exceed the
    # span-masking loss by much.
    assert np.isfinite(result["span"]["final_mask_loss"])
    assert result["token"]["final_mask_loss"] <= result["span"]["final_mask_loss"] * 1.5 + 0.5
    benchmark.extra_info["span_mask_loss"] = result["span"]["final_mask_loss"]
    benchmark.extra_info["token_mask_loss"] = result["token"]["final_mask_loss"]
    benchmark.extra_info["span_eta_mape"] = result["span"]["eta_mape"]
    benchmark.extra_info["token_eta_mape"] = result["token"]["eta_mape"]
