"""Benchmark: regenerate Figure 7 (ablation study of every START sub-module)."""

from __future__ import annotations

import numpy as np

from repro.experiments import ABLATION_VARIANTS, Figure7Settings, format_figure7, run_figure7


def test_figure7_ablations(benchmark, once, capsys):
    settings = Figure7Settings(
        scale=0.3, pretrain_epochs=2, finetune_epochs=3, num_queries=12, num_negatives=36
    )
    rows = once(benchmark, run_figure7, "synthetic-porto", settings)
    with capsys.disabled():
        print()
        print(format_figure7(rows))

    assert len(rows) == len(ABLATION_VARIANTS)
    by_variant = {row["Variant"]: row for row in rows}
    for row in rows:
        assert np.isfinite(row["MAPE"]) and row["MR"] >= 1.0

    # Paper shape: the full model should not be the single worst configuration
    # on the headline travel-time metric.
    mape_values = sorted(row["MAPE"] for row in rows)
    assert by_variant["START"]["MAPE"] <= mape_values[-1]
    mr_rank = sorted(rows, key=lambda r: r["MR"]).index(by_variant["START"]) + 1
    benchmark.extra_info["start_mape"] = by_variant["START"]["MAPE"]
    benchmark.extra_info["worst_mape"] = mape_values[-1]
    benchmark.extra_info["start_mr_rank"] = mr_rank
