"""Benchmark: regenerate Table III (cross-dataset transfer to synthetic-Geolife)."""

from __future__ import annotations

import numpy as np

from repro.experiments import Table3Settings, format_table3, run_table3


def test_table3_transfer_across_datasets(benchmark, once, capsys):
    settings = Table3Settings(scale=0.25, geolife_scale=0.4, pretrain_epochs=2, finetune_epochs=3)
    rows = once(benchmark, run_table3, settings)
    with capsys.disabled():
        print()
        print(format_table3(rows))

    by_model = {row["Model"]: row for row in rows}
    assert set(by_model) == {
        "No Pre-train Geolife",
        "Pre-train Geolife",
        "Porto-START",
        "BJ-START",
        "Porto-Trembr",
        "BJ-Trembr",
    }
    for row in rows:
        assert np.isfinite(row["ETA MAE"]) and np.isfinite(row["CLS Micro-F1"])

    # Paper shape: transferring a pre-trained START should not be worse than
    # training from scratch on the small target dataset (classification side).
    transferred_best = max(by_model["BJ-START"]["CLS Micro-F1"], by_model["Porto-START"]["CLS Micro-F1"])
    assert transferred_best >= by_model["No Pre-train Geolife"]["CLS Micro-F1"] - 0.2
    benchmark.extra_info["bj_start_micro_f1"] = by_model["BJ-START"]["CLS Micro-F1"]
    benchmark.extra_info["no_pretrain_micro_f1"] = by_model["No Pre-train Geolife"]["CLS Micro-F1"]
