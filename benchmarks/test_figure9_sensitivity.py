"""Benchmark: regenerate Figure 9 (parameter sensitivity of START)."""

from __future__ import annotations

import numpy as np

from repro.experiments import Figure9Settings, format_figure9, run_figure9


def test_figure9_parameter_sensitivity(benchmark, once, capsys):
    settings = Figure9Settings(
        scale=0.3,
        pretrain_epochs=2,
        finetune_epochs=2,
        encoder_layers=(1, 2, 3),
        embedding_sizes=(16, 32, 64),
        batch_sizes=(8, 16, 32),
    )
    result = once(benchmark, run_figure9, "synthetic-porto", settings)
    with capsys.disabled():
        print()
        print(format_figure9(result))

    for key in ("encoder_layers", "embedding_size", "batch_size"):
        scores = np.array(result[key]["scores"])
        assert len(scores) == 3
        assert np.isfinite(scores).all()
        assert (scores >= 0).all() and (scores <= 1).all()
    benchmark.extra_info["encoder_layer_scores"] = result["encoder_layers"]["scores"]
    benchmark.extra_info["embedding_size_scores"] = result["embedding_size"]["scores"]
    benchmark.extra_info["batch_size_scores"] = result["batch_size"]["scores"]
