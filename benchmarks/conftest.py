"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a reduced
scale, prints the formatted artefact (captured into ``bench_output.txt`` by
the top-level command) and records headline numbers in
``benchmark.extra_info`` so they appear in the pytest-benchmark JSON output.

Benchmarks run exactly once per session (``rounds=1``): they are experiment
regenerations, not micro-benchmarks, and some take minutes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.seeding import seed_everything


@pytest.fixture(autouse=True)
def _seed_benchmarks():
    seed_everything(2023)
    yield


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once():
    return run_once
