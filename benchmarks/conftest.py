"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a reduced
scale, prints the formatted artefact (captured into ``bench_output.txt`` by
the top-level command) and records headline numbers in
``benchmark.extra_info`` so they appear in the pytest-benchmark JSON output.

Benchmarks run exactly once per session (``rounds=1``): they are experiment
regenerations, not micro-benchmarks, and some take minutes.

At session end every gate measurement is folded into a small **performance
trajectory artefact** (``BENCH_pr9.json`` by default, override with
``REPRO_BENCH_TRAJECTORY``): name, group, extra_info and timing stats per
benchmark, written atomically so a killed run never leaves a torn file.
CI uploads it next to the raw pytest-benchmark JSON.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.obs.metrics import dump_metrics
from repro.utils.seeding import seed_everything

#: Timing fields copied from pytest-benchmark's Stats into the trajectory.
_STAT_FIELDS = ("min", "max", "mean", "stddev", "rounds", "iterations")


@pytest.fixture(autouse=True)
def _seed_benchmarks():
    seed_everything(2023)
    yield


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once():
    return run_once


def pytest_sessionfinish(session, exitstatus):
    """Fold this session's gate measurements into the trajectory artefact."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None) if bench_session else None
    if not benchmarks:
        return
    entries = []
    for bench in benchmarks:
        stats = getattr(bench, "stats", None)
        timing = {}
        if stats is not None:
            source = getattr(stats, "stats", stats)  # Metadata.stats nests a Stats
            for field in _STAT_FIELDS:
                value = getattr(source, field, None)
                if isinstance(value, (int, float)):
                    timing[field] = value
        entries.append(
            {
                "name": getattr(bench, "name", "?"),
                "group": getattr(bench, "group", None),
                "extra_info": dict(getattr(bench, "extra_info", {}) or {}),
                "stats": timing,
            }
        )
    payload = {
        "schema_version": 1,
        "trajectory": "pr9",
        "benchmarks": entries,
    }
    dump_metrics(os.environ.get("REPRO_BENCH_TRAJECTORY", "BENCH_pr9.json"), payload)
