"""Benchmark: regenerate Figure 1 (temporal regularities and travel semantics)."""

from __future__ import annotations

import numpy as np

from repro.experiments import format_figure1, run_figure1


def test_figure1_motivating_statistics(benchmark, once, capsys):
    result = once(benchmark, run_figure1, scale=0.3, dataset_name="synthetic-bj")
    with capsys.disabled():
        print()
        print(format_figure1(result))

    # (a) travel semantics: road visit frequencies are far from uniform.
    assert result["visit_frequencies"]["gini"] > 0.2
    # (b) periodic pattern: weekday rush hours dominate the small hours.
    weekday = np.array(result["weekday_hourly_counts"], dtype=float)
    assert weekday[7:10].sum() + weekday[17:20].sum() > 2 * weekday[0:5].sum()
    # (c) irregular intervals: non-trivial spread between consecutive roads.
    assert result["interval_distribution"]["std_s"] > 1.0
    benchmark.extra_info["visit_gini"] = result["visit_frequencies"]["gini"]
    benchmark.extra_info["interval_std_s"] = result["interval_distribution"]["std_s"]
