"""Benchmark: regenerate Figure 10 (efficiency and scalability)."""

from __future__ import annotations

import numpy as np

from repro.experiments import Figure10Settings, format_figure10, run_figure10


def test_figure10_efficiency_and_scalability(benchmark, once, capsys):
    settings = Figure10Settings(
        scale=0.3,
        pretrain_epochs=1,
        encode_sizes=(20, 40, 80),
        query_sizes=(5, 10, 20),
        deep_models=("Trembr", "Toast", "START"),
        classical_measures=("DTW", "LCSS", "Frechet", "EDR"),
    )
    result = once(benchmark, run_figure10, "synthetic-porto", settings)
    with capsys.disabled():
        print()
        print(format_figure10(result))

    inference = result["inference"]
    # Panel (a): encoding time grows (roughly linearly) with the dataset size.
    for name, series in inference["seconds"].items():
        assert series[-1] >= series[0] * 0.5  # monotone up to timing noise

    similarity = result["similarity"]
    assert similarity["query_sizes"], "no similarity benchmark points were produced"
    deep_time = np.mean(
        [np.mean(similarity["query_time"][name]) for name in ("Trembr", "Toast", "START")]
    )
    classical_time = np.mean(
        [np.mean(similarity["query_time"][name]) for name in ("DTW", "LCSS", "Frechet", "EDR")]
    )
    # Paper shape: representation-based search is much faster than pairwise
    # classical measures (an order of magnitude in the paper; we require 3x).
    assert deep_time * 3.0 < classical_time
    # Paper shape: START's mean rank stays in the same ballpark as the best
    # classical measure (the paper shows it is better; smoke scale is noisy).
    start_mr = np.mean(similarity["mean_rank"]["START"])
    classical_mr = min(np.mean(similarity["mean_rank"][m]) for m in ("DTW", "LCSS", "Frechet", "EDR"))
    assert start_mr <= classical_mr * 5.0 + 10.0
    benchmark.extra_info["deep_query_seconds"] = float(deep_time)
    benchmark.extra_info["classical_query_seconds"] = float(classical_time)
    benchmark.extra_info["start_mean_rank"] = float(start_mr)
