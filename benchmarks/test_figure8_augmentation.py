"""Benchmark: regenerate Figure 8 (MAPE for each contrastive augmentation pair)."""

from __future__ import annotations

import numpy as np

from repro.experiments import Figure8Settings, best_pair, format_figure8, run_figure8


def test_figure8_augmentation_grid(benchmark, once, capsys):
    settings = Figure8Settings(scale=0.3, pretrain_epochs=2, finetune_epochs=2)
    result = once(benchmark, run_figure8, "synthetic-porto", settings)
    with capsys.disabled():
        print()
        print(format_figure8(result))
        print("best pair:", best_pair(result))

    names = result["augmentations"]
    assert set(names) == {"trim", "shift", "mask", "dropout"}
    # All 10 unordered pairs (plus symmetric duplicates) must be present and finite.
    for i, first in enumerate(names):
        for second in names[i:]:
            value = result["mape_grid"][(first, second)]
            assert np.isfinite(value)
            assert result["mape_grid"][(second, first)] == value
    benchmark.extra_info["best_pair"] = list(best_pair(result))
    benchmark.extra_info["grid"] = {f"{a}+{b}": v for (a, b), v in result["mape_grid"].items()}
