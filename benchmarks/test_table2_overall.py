"""Benchmark: regenerate Table II (overall comparison on three downstream tasks).

All nine models (eight baselines + START) are pre-trained and evaluated on
synthetic-Porto; a representative subset is additionally run on synthetic-BJ
to keep the total benchmark time reasonable.  The assertion checks the
paper's headline claim in a noise-tolerant way: START must rank among the top
models for travel time and for similarity search.
"""

from __future__ import annotations

from repro.experiments import Table2Settings, format_table2, run_table2, summarize_winners


def _rank_of(rows: list[dict], model: str, key: str, lower_is_better: bool) -> int:
    ordered = sorted(rows, key=lambda row: row[key], reverse=not lower_is_better)
    return [row["Model"] for row in ordered].index(model) + 1


def test_table2_synthetic_porto_all_models(benchmark, once, capsys):
    # 8 pre-training epochs (up from the seed's 3): the fused/no-grad hot
    # path bought back more wall-clock than the extra epochs spend, and the
    # contrastive objective needs the extra steps to shape [CLS].
    settings = Table2Settings(scale=0.3, pretrain_epochs=8, finetune_epochs=3, num_queries=15, num_negatives=45)
    rows = once(benchmark, run_table2, "synthetic-porto", settings)
    with capsys.disabled():
        print()
        print(format_table2(rows))
        print("winners:", summarize_winners(rows))

    assert len(rows) == 9
    eta_rank = _rank_of(rows, "START", "ETA MAPE", lower_is_better=True)
    sim_rank = _rank_of(rows, "START", "SIM MR", lower_is_better=True)
    # Paper shape: START leads travel time and similarity search.  The smoke
    # scale is noisy, so the hard assertion only requires START to sit in the
    # upper half of the table on both metrics; EXPERIMENTS.md records the
    # actual ranks of the checked-in run.
    assert eta_rank <= 5, f"START ranked {eta_rank} on ETA MAPE"
    assert sim_rank <= 5, f"START ranked {sim_rank} on similarity MR"
    benchmark.extra_info["start_eta_rank"] = eta_rank
    benchmark.extra_info["start_sim_rank"] = sim_rank
    benchmark.extra_info["start_mape"] = next(r["ETA MAPE"] for r in rows if r["Model"] == "START")


def test_table2_synthetic_bj_subset(benchmark, once, capsys):
    settings = Table2Settings(
        scale=0.2,
        pretrain_epochs=12,
        finetune_epochs=3,
        num_queries=12,
        num_negatives=36,
        models=("Trembr", "Toast", "START"),
    )
    rows = once(benchmark, run_table2, "synthetic-bj", settings)
    with capsys.disabled():
        print()
        print(format_table2(rows))
    assert len(rows) == 3
    sim_rank = _rank_of(rows, "START", "SIM MR", lower_is_better=True)
    assert sim_rank <= 2
    benchmark.extra_info["start_sim_rank"] = sim_rank
