"""Gate for the streaming subsystem: incremental ingest + sharded serving.

Two hard promises are checked at a serving-ish scale (6k rows, 64-d):

1. **Incremental appends never re-encode existing shards** — the corpus
   arrives in waves through a tailed JSONL file, every trajectory is encoded
   exactly once across all waves, and the shard objects sealed by earlier
   waves are untouched by later ones.
2. **Sharding does not change answers** — after all waves, the sharded
   fan-out returns bit-identical neighbour ids and distances to a monolithic
   :class:`SimilarityIndex` over the same vectors, at several shard counts.

Timings for the ingest loop and the sharded query path land in
``benchmark.extra_info``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.serving.index import SimilarityIndex
from repro.streaming.reader import TrajectoryStreamReader
from repro.streaming.service import IngestService
from repro.streaming.shards import ShardedIndex
from repro.trajectory import Trajectory, append_trajectories

TOTAL_ROWS = 6_000
WAVES = 4
DIM = 64
NUM_QUERIES = 200
K = 10
CHUNK = 512
SHARD_CAPACITY = 1_024  # 2 x CHUNK: aligned, 6 shards at full fill


def make_trajectory(trajectory_id: int, rng: np.random.Generator) -> Trajectory:
    length = int(rng.integers(4, 40))
    return Trajectory(
        roads=list(range(length)),
        timestamps=[float(1000 + 15 * i) for i in range(length)],
        trajectory_id=trajectory_id,
    )


def hashing_encode(batch: list[Trajectory]) -> np.ndarray:
    """Deterministic per-trajectory vectors (independent of batch layout)."""
    out = np.empty((len(batch), DIM), dtype=np.float32)
    for row, trajectory in enumerate(batch):
        out[row] = np.random.default_rng(trajectory.trajectory_id).standard_normal(DIM)
    return out


def test_streaming_ingest_and_sharded_query_exactness(benchmark, once, tmp_path):
    rng = np.random.default_rng(41)
    path = tmp_path / "arrivals.jsonl"
    reader = TrajectoryStreamReader(path)

    encoded_ids: list[int] = []

    def counting_encode(batch):
        encoded_ids.extend(t.trajectory_id for t in batch)
        return hashing_encode(batch)

    service = IngestService(
        counting_encode,
        index=ShardedIndex(shard_capacity=SHARD_CAPACITY, database_chunk_size=CHUNK),
        batch_size=256,
    )

    # --- Waves of arrivals: append to the JSONL, drain, repeat. ------------
    wave_size = TOTAL_ROWS // WAVES
    sealed_before_last_wave: tuple = ()
    ingest_started = time.perf_counter()
    for wave in range(WAVES):
        ids = range(wave * wave_size, (wave + 1) * wave_size)
        append_trajectories(path, [make_trajectory(i, rng) for i in ids])
        if wave == WAVES - 1:
            sealed_before_last_wave = tuple(
                shard for shard in service.index.shards if shard.is_full
            )
        ingested = service.drain(reader)
        assert ingested == wave_size
    ingest_seconds = time.perf_counter() - ingest_started

    # Promise 1: every trajectory encoded exactly once, and the shards that
    # were sealed before the last wave are the same untouched objects after.
    assert sorted(encoded_ids) == list(range(TOTAL_ROWS))
    assert len(service) == TOTAL_ROWS
    for shard in sealed_before_last_wave:
        assert shard in service.index.shards
    assert service.index.num_shards == -(-TOTAL_ROWS // SHARD_CAPACITY)

    # --- Promise 2: sharded == monolithic, bit for bit. --------------------
    # The service assigns row ids in encode-completion order; rebuild the
    # monolithic reference in that same order via the id -> vector map.
    vectors = np.concatenate([shard.vectors for shard in service.index.shards])
    queries = rng.standard_normal((NUM_QUERIES, DIM)).astype(np.float32)
    mono = SimilarityIndex(vectors, database_chunk_size=CHUNK).topk(queries, K)

    query_started = time.perf_counter()
    result = service.top_k(queries, K)
    query_seconds = time.perf_counter() - query_started
    np.testing.assert_array_equal(result.indices, mono.indices)
    assert (result.distances.view(np.uint32) == mono.distances.view(np.uint32)).all()

    # Same answer at other (aligned) shard geometries.
    for capacity in (CHUNK, 3 * CHUNK):
        other = ShardedIndex.from_vectors(
            vectors, shard_capacity=capacity, database_chunk_size=CHUNK
        ).top_k(queries, K)
        np.testing.assert_array_equal(other.indices, mono.indices)
        assert (other.distances.view(np.uint32) == mono.distances.view(np.uint32)).all()

    once(benchmark, lambda: service.index.top_k(queries, K))
    benchmark.extra_info["rows"] = TOTAL_ROWS
    benchmark.extra_info["shards"] = service.index.num_shards
    benchmark.extra_info["ingest_seconds"] = ingest_seconds
    benchmark.extra_info["rows_per_second_ingest"] = TOTAL_ROWS / ingest_seconds
    benchmark.extra_info["query_seconds"] = query_seconds
    benchmark.extra_info["queries_per_second"] = NUM_QUERIES / query_seconds
