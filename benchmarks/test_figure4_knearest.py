"""Benchmark: regenerate Figure 4 (k-nearest precision vs. detour proportion)."""

from __future__ import annotations

import numpy as np

from repro.experiments import Figure4Settings, format_figure4, run_figure4


def test_figure4_knearest_precision(benchmark, once, capsys):
    settings = Figure4Settings(
        scale=0.3,
        pretrain_epochs=3,
        proportions=(0.1, 0.2, 0.3, 0.4, 0.5),
        num_queries=12,
        database_size=50,
        models=("Trembr", "Transformer", "Toast", "START"),
    )
    result = once(benchmark, run_figure4, "synthetic-porto", settings)
    with capsys.disabled():
        print()
        print(format_figure4(result))

    assert set(result["precision"]) == set(settings.models)
    for name, series in result["precision"].items():
        assert len(series) == len(settings.proportions)
        assert all(0.0 <= value <= 1.0 for value in series)

    # Paper shape: precision does not improve as the detour grows (it should
    # decay); at smoke scale we only assert the weak direction of the trend
    # and record the full series for EXPERIMENTS.md.
    start_series = np.array(result["precision"]["START"])
    assert start_series[:2].mean() >= start_series[-2:].mean() - 0.15
    benchmark.extra_info["start_precision_series"] = [float(x) for x in start_series]
    benchmark.extra_info["per_model_final_precision"] = {
        name: float(series[-1]) for name, series in result["precision"].items()
    }
