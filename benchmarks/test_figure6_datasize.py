"""Benchmark: regenerate Figure 6 (pre-training vs. labelled-data size)."""

from __future__ import annotations

import numpy as np

from repro.experiments import Figure6Settings, format_figure6, run_figure6


def test_figure6_pretraining_vs_train_size(benchmark, once, capsys):
    settings = Figure6Settings(scale=0.3, fractions=(0.5, 1.0), pretrain_epochs=3, finetune_epochs=3)
    result = once(benchmark, run_figure6, "synthetic-bj", settings)
    with capsys.disabled():
        print()
        print(format_figure6(result))

    assert len(result["train_sizes"]) == 2
    pretrain_mape = np.array(result["eta_mape"]["Pre-train"])
    scratch_mape = np.array(result["eta_mape"]["No Pre-train"])
    assert np.isfinite(pretrain_mape).all() and np.isfinite(scratch_mape).all()

    # Paper shape: pre-training helps on average across training-set sizes
    # (generous tolerance at smoke scale; see EXPERIMENTS.md for the numbers).
    assert pretrain_mape.mean() <= scratch_mape.mean() + 8.0
    benchmark.extra_info["pretrain_mape"] = pretrain_mape.tolist()
    benchmark.extra_info["no_pretrain_mape"] = scratch_mape.tolist()
    benchmark.extra_info["pretrain_cls"] = result["classification"]["Pre-train"]
    benchmark.extra_info["no_pretrain_cls"] = result["classification"]["No Pre-train"]
