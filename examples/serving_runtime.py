#!/usr/bin/env python
"""Serving runtime demo: concurrent queries, live ingest, clean SIGTERM exit.

Runs the :class:`repro.server.ServingRuntime` the way a deployment would —
minus the model training, which :mod:`examples/quickstart.py` already walks
through (a deterministic hashing encoder stands in for START so this demo
finishes in seconds):

1. index a 5k-trajectory corpus behind an :class:`repro.api.Engine`;
2. serve 256 concurrent similarity queries from 4 caller threads while an
   ingest wave of 256 new trajectories arrives in the background — the
   runtime batches the queries (one index scan per batch), publishes fresh
   bit-stable replica generations as the ingest lands, and reports
   throughput plus p50/p99 caller latency;
3. checkpoint to disk, then shut down via a real ``SIGTERM`` — the signal
   handler drains every in-flight query and commits a final checkpoint, so
   a restart (shown last) resumes from exactly the pre-kill state;
4. print the :meth:`~repro.server.ServingRuntime.metrics` snapshot the
   runtime collected while serving (QPS, cache hit rate, queue-wait
   percentiles, ingest lag) and dump it as JSON — to
   ``$REPRO_METRICS_SNAPSHOT`` when set, else into the demo workdir.

Run:  python examples/serving_runtime.py
"""

from __future__ import annotations

import os
import signal
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.api import Engine, EngineConfig, QueryRequest
from repro.obs import format_snapshot
from repro.server import ServerConfig, ServingRuntime
from repro.trajectory import Trajectory
from repro.utils.seeding import seed_everything

DIM = 32
CORPUS = 5_000
QUERIES = 256
CALLERS = 4
WAVE = 256
K = 5


def hashing_encode(batch: list[Trajectory]) -> np.ndarray:
    """Deterministic per-trajectory embedding (the stand-in for START)."""
    out = np.empty((len(batch), DIM), dtype=np.float32)
    for row, trajectory in enumerate(batch):
        out[row] = np.random.default_rng(trajectory.trajectory_id).standard_normal(DIM)
    return out


def make_trajectory(trajectory_id: int) -> Trajectory:
    length = 3 + trajectory_id % 5
    return Trajectory(
        roads=list(range(length)),
        timestamps=[float(60 * i) for i in range(length)],
        trajectory_id=trajectory_id,
    )


def main() -> None:
    seed_everything(7)
    workdir = Path(tempfile.mkdtemp(prefix="repro-serving-demo-"))

    # ------------------------------------------------------------------ #
    # 1. A corpus behind the engine facade.
    # ------------------------------------------------------------------ #
    engine = Engine(hashing_encode, EngineConfig(backend="chunked"))
    engine.ingest([make_trajectory(i) for i in range(CORPUS)])
    print(f"indexed {len(engine)} trajectories ({DIM}-d, chunked backend)")

    config = ServerConfig(
        max_batch=64,
        linger=0.002,
        num_workers=1,
        coalesce="fused",
        ingest_group_size=64,
        publish_every_groups=1,
        checkpoint_dir=workdir / "checkpoint",
    )
    runtime = ServingRuntime(engine, config)
    runtime.start()

    # A real SIGTERM (step 3) must drain in-flight work, checkpoint, and
    # only then let the process die — the handler just calls shutdown().
    def handle_sigterm(signum, frame):
        print("SIGTERM received: draining in-flight queries and checkpointing ...")
        runtime.shutdown()

    signal.signal(signal.SIGTERM, handle_sigterm)

    # ------------------------------------------------------------------ #
    # 2. Concurrent queries + a background ingest wave.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(11)
    queries = rng.standard_normal((QUERIES, DIM)).astype(np.float32)
    requests = [QueryRequest(queries=queries[i : i + 1], k=K) for i in range(QUERIES)]
    runtime.submit_ingest([make_trajectory(CORPUS + i) for i in range(WAVE)])

    def caller(chunk: list[QueryRequest]) -> list[float]:
        latencies = []
        for request in chunk:
            started = time.perf_counter()
            runtime.query(request, timeout=60)
            latencies.append(time.perf_counter() - started)
        return latencies

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CALLERS) as pool:
        chunks = [requests[i::CALLERS] for i in range(CALLERS)]
        latencies = [l for chunk_lat in pool.map(caller, chunks) for l in chunk_lat]
    wall = time.perf_counter() - started

    runtime.flush_ingest()  # make sure the whole wave has landed
    stats = runtime.stats()
    p50, p99 = (float(np.percentile(latencies, q) * 1e3) for q in (50, 99))
    print(
        f"served {stats['queries']} queries in {wall:.2f}s "
        f"({QUERIES / wall:.0f} qps, {stats['batches']} batches, "
        f"mean occupancy {stats['mean_occupancy']:.1f})"
    )
    print(f"caller latency: p50={p50:.1f}ms p99={p99:.1f}ms")
    print(
        f"ingested wave of {WAVE} -> {len(engine)} rows, "
        f"generation {stats['generation']} published"
    )

    # ------------------------------------------------------------------ #
    # 3. SIGTERM-clean shutdown, then a lossless restart.
    # ------------------------------------------------------------------ #
    os.kill(os.getpid(), signal.SIGTERM)
    print(f"runtime closed: {runtime.closed}")

    # ------------------------------------------------------------------ #
    # 4. What the runtime saw: the metrics snapshot it collected.
    # ------------------------------------------------------------------ #
    snapshot_path = Path(
        os.environ.get("REPRO_METRICS_SNAPSHOT", workdir / "metrics_snapshot.json")
    )
    runtime.dump_metrics(snapshot_path)
    print()
    print(format_snapshot(runtime.metrics()))
    print(f"metrics snapshot written to {snapshot_path}")

    probe = QueryRequest(queries=queries[:1], k=K)
    expected = engine.query(probe)
    restored = ServingRuntime.restore(config.checkpoint_dir, hashing_encode)
    with restored:
        response = restored.query(probe, timeout=60)
    identical = (
        np.array_equal(response.ids, expected.ids)
        and response.distances.tobytes() == expected.distances.tobytes()
    )
    print(f"restarted from checkpoint: {len(restored.primary)} rows, "
          f"probe answer bit-identical: {identical}")


if __name__ == "__main__":
    main()
