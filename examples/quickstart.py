#!/usr/bin/env python
"""Quickstart: build a synthetic city, pre-train START and use the representations.

This walks the full pipeline of the paper in a couple of minutes on a laptop:

1. generate a road network and a road-network constrained trajectory dataset
   (the offline stand-in for the BJ/Porto taxi data);
2. pre-train START with span-masked recovery + contrastive learning;
3. fine-tune the two supervised downstream tasks (travel time estimation and
   trajectory classification);
4. use the pre-trained representations directly for similarity search.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Pretrainer, STARTModel, TravelTimeEstimator, TrajectoryClassifier, small_config
from repro.eval import (
    TaskSettings,
    binary_classification_report,
    regression_report,
    run_similarity_task,
)
from repro.trajectory import build_dataset
from repro.utils.seeding import seed_everything


def main() -> None:
    seed_everything(7)

    # ------------------------------------------------------------------ #
    # 1. Data: synthetic-BJ (taxi trips with occupancy labels).
    # ------------------------------------------------------------------ #
    dataset = build_dataset("synthetic-bj", scale=0.3)
    stats = dataset.statistics()
    print(f"dataset: {stats['num_trajectories']} trajectories over {stats['num_roads']} roads "
          f"({stats['num_users']} drivers)")

    # ------------------------------------------------------------------ #
    # 2. Self-supervised pre-training.
    # ------------------------------------------------------------------ #
    config = small_config()
    model = STARTModel.from_dataset(dataset, config)
    print(f"START model with {model.num_parameters():,} parameters")
    history = Pretrainer(model, config).pretrain(dataset.train_trajectories(), epochs=4, verbose=True)
    print(f"pre-training loss: {history.total[0]:.3f} -> {history.total[-1]:.3f}")

    # ------------------------------------------------------------------ #
    # 3. Downstream task 1: travel time estimation.
    # ------------------------------------------------------------------ #
    estimator = TravelTimeEstimator(model, config)
    estimator.fit(dataset.train_trajectories(), epochs=4)
    test = dataset.test_trajectories()
    predictions = estimator.predict(test)
    truth = np.array([t.travel_time for t in test])
    print("travel time estimation:", regression_report(truth, predictions))

    # ------------------------------------------------------------------ #
    # 3b. Downstream task 2: does the taxi carry a passenger?
    # ------------------------------------------------------------------ #
    classifier = TrajectoryClassifier(model, num_classes=2, label_kind="occupied", config=config)
    classifier.fit(dataset.train_trajectories(), epochs=4)
    probabilities = classifier.predict_proba(test)
    report = binary_classification_report(
        classifier.labels_of(test), probabilities.argmax(axis=1), probabilities[:, 1]
    )
    print("occupancy classification:", report)

    # ------------------------------------------------------------------ #
    # 4. Downstream task 3: similarity search with the raw representations.
    # ------------------------------------------------------------------ #
    similarity = run_similarity_task(model, dataset, TaskSettings(num_queries=15, num_negatives=45))
    print("most-similar trajectory search:", similarity)


if __name__ == "__main__":
    main()
