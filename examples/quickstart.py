#!/usr/bin/env python
"""Quickstart: build a synthetic city, pre-train START and use the representations.

This walks the full pipeline of the paper through the one supported public
surface, the :class:`repro.api.Engine` facade, in a couple of minutes on a
laptop:

1. generate a road network and a road-network constrained trajectory dataset
   (the offline stand-in for the BJ/Porto taxi data);
2. pre-train START with span-masked recovery + contrastive learning
   (``Engine.pretrain``), then checkpoint and reload the model
   (``Engine.save`` / ``Engine.load``);
3. fine-tune the two supervised downstream tasks (travel time estimation and
   trajectory classification) on the engine's model;
4. serve similarity queries straight from the pre-trained representations
   (``Engine.ingest`` + ``Engine.query``), and run the paper's
   most-similar-search evaluation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.api import Engine, EngineConfig, QueryRequest
from repro.core import TravelTimeEstimator, TrajectoryClassifier, small_config
from repro.eval import (
    TaskSettings,
    binary_classification_report,
    regression_report,
    run_similarity_task,
)
from repro.trajectory import build_dataset
from repro.utils.seeding import seed_everything


def main() -> None:
    seed_everything(7)

    # ------------------------------------------------------------------ #
    # 1. Data: synthetic-BJ (taxi trips with occupancy labels).
    # ------------------------------------------------------------------ #
    dataset = build_dataset("synthetic-bj", scale=0.3)
    stats = dataset.statistics()
    print(f"dataset: {stats['num_trajectories']} trajectories over {stats['num_roads']} roads "
          f"({stats['num_users']} drivers)")

    # ------------------------------------------------------------------ #
    # 2. Self-supervised pre-training behind the facade.
    # ------------------------------------------------------------------ #
    config = EngineConfig(start=small_config(), backend="sharded")
    engine = Engine.from_dataset(dataset, config)
    print(f"START model with {engine.model.num_parameters():,} parameters")
    history = engine.pretrain(dataset.train_trajectories(), epochs=4, verbose=True)
    print(f"pre-training loss: {history.total[0]:.3f} -> {history.total[-1]:.3f}")

    # Model lifecycle: checkpoint the weights and reload them into a fresh
    # engine — a serving process never repeats the pre-training.
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = engine.save(Path(tmp) / "start_bj.npz")
        engine = Engine.load(checkpoint, dataset, config=config)
        print(f"checkpoint round trip: {checkpoint.name}")

    # ------------------------------------------------------------------ #
    # 3. Downstream task 1: travel time estimation.
    # ------------------------------------------------------------------ #
    estimator = TravelTimeEstimator(engine.model, engine.model.config)
    estimator.fit(dataset.train_trajectories(), epochs=4)
    test = dataset.test_trajectories()
    predictions = estimator.predict(test)
    truth = np.array([t.travel_time for t in test])
    print("travel time estimation:", regression_report(truth, predictions))

    # ------------------------------------------------------------------ #
    # 3b. Downstream task 2: does the taxi carry a passenger?
    # ------------------------------------------------------------------ #
    classifier = TrajectoryClassifier(
        engine.model, num_classes=2, label_kind="occupied", config=engine.model.config
    )
    classifier.fit(dataset.train_trajectories(), epochs=4)
    probabilities = classifier.predict_proba(test)
    report = binary_classification_report(
        classifier.labels_of(test), probabilities.argmax(axis=1), probabilities[:, 1]
    )
    print("occupancy classification:", report)

    # ------------------------------------------------------------------ #
    # 4. Downstream task 3: similarity search with the raw representations.
    # ------------------------------------------------------------------ #
    # Fine-tuning mutated the shared encoder in place, so drop the engine's
    # (empty) index state and serve from the current weights explicitly.
    engine.reset_index()
    engine.ingest(test)
    response = engine.query(QueryRequest(queries=test[:3], k=3))
    for row, hits in enumerate(response.hits):
        neighbours = ", ".join(f"id={h.trajectory_id} d={h.distance:.3f}" for h in hits)
        print(f"query {row}: {neighbours}")

    similarity = run_similarity_task(
        engine.model, dataset, TaskSettings(num_queries=15, num_negatives=45)
    )
    print("most-similar trajectory search:", similarity)


if __name__ == "__main__":
    main()
