#!/usr/bin/env python
"""Similarity search scenario: find detoured copies of trajectories.

This reproduces the setup behind Table II's last three columns and Figures 4
and 10: a fleet operator wants to find, for a query trip, the most similar
trip in a large historical database — for example to spot drivers taking
unnecessary detours or to identify popular routes.

The script walks the full serving path through the one supported public
surface, the :class:`repro.api.Engine` facade:

1. pre-train START and ingest the database once (length-bucketed batch
   encoding behind ``Engine.ingest``);
2. snapshot the index to disk and restore it — a serving replica never needs
   the model, only the snapshot directory — and verify the restored replica
   answers bit-identically;
3. answer most-similar queries through the sharded production backend and
   cross-check three registry backends (``"sharded"``, ``"chunked"``,
   ``"bruteforce"``) against each other: at aligned shard geometry the first
   two are bit-identical, and the brute-force reference agrees on the ids;
4. serve the same corpus through the ``"ivf"`` approximate backend and print
   its recall@10 and speedup against the exact sharded pass — the
   recall-vs-latency trade the ANN subsystem (``repro.ann``) exists for;
5. replay the same corpus as a *stream*: tail a ``trajectories.jsonl`` with
   a :class:`~repro.streaming.reader.TrajectoryStreamReader` and feed the
   engine incrementally (``Engine.drain``) — earlier waves are never
   re-encoded or re-indexed;
6. compare with the strongest learned baseline (Trembr) and with classical
   pairwise measures (DTW / Fréchet), which are accurate on raw geometry but
   orders of magnitude slower.

Run:  python examples/similarity_search.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.api import Engine, EngineConfig, QueryRequest
from repro.baselines import build_baseline
from repro.core import small_config
from repro.eval import (
    evaluate_classical_search,
    evaluate_representation_search,
    search_report_on_index,
)
from repro.streaming.reader import TrajectoryStreamReader
from repro.trajectory import append_trajectories, build_dataset, build_similarity_benchmark
from repro.utils.seeding import get_rng, seed_everything
from repro.utils.timer import Timer


def main() -> None:
    seed_everything(11)
    dataset = build_dataset("synthetic-porto", scale=0.4)
    config = small_config()
    print(f"dataset: {len(dataset)} trajectories on {dataset.network.num_roads} roads")

    # Detour-based ground truth (Section IV-D4 of the paper).
    benchmark = build_similarity_benchmark(
        dataset.network,
        dataset.test_trajectories() + dataset.validation_trajectories(),
        num_queries=20,
        num_negatives=80,
        rng=get_rng(1),
    )
    print(f"benchmark: {len(benchmark.queries)} queries, {len(benchmark.database)} database trajectories")

    # START behind the facade, used directly from pre-training (no fine-tuning).
    # Small shard/chunk sizes keep the geometry interesting at demo scale
    # while staying aligned (capacity % chunk == 0 -> bit-identical backends).
    engine = Engine.from_dataset(
        dataset,
        EngineConfig(
            start=config, backend="sharded", shard_capacity=32, database_chunk_size=16
        ),
    )
    engine.pretrain(dataset.train_trajectories(), epochs=5)

    # ----- Serving path: encode once, ingest, snapshot, restore, query. -----
    with Timer() as encode_timer:
        database_vectors = engine.encode(benchmark.database)
    engine.ingest_vectors(
        database_vectors, trajectory_ids=[t.trajectory_id for t in benchmark.database]
    )
    print(
        f"ingested {len(engine)} x {engine.dim} vectors, encoded in "
        f"{encode_timer.elapsed:.2f}s ({engine.encode_calls} encode batches)"
    )
    query_vectors = engine.encode(benchmark.queries)

    with Timer() as index_timer:
        top5 = engine.query(QueryRequest(queries=query_vectors, k=5))
        start_report = search_report_on_index(engine, query_vectors, benchmark.ground_truth)
    print(f"START/sharded    {start_report}  ({index_timer.elapsed*1000:.1f}ms)")

    # Snapshot/restore: a replica rebuilt from disk (no model!) answers
    # bit-identically to the engine that encoded the corpus.
    with tempfile.TemporaryDirectory() as tmp:
        info = engine.snapshot(Path(tmp) / "porto_index")
        replica = Engine.restore(info.path, engine.model)
        replica_top5 = replica.query(QueryRequest(queries=query_vectors, k=5))
        identical = bool(
            (replica_top5.ids == top5.ids).all()
            and (replica_top5.distances == top5.distances).all()
        )
        print(
            f"snapshot round trip: {info.segments} segments, {info.rows} rows, "
            f"restored replica bit-identical: {identical}"
        )

    # ----- Backend registry: the same corpus behind three implementations. -----
    # The vectors are already encoded, so cross-checks reuse them directly.
    chunked = Engine(engine.model, EngineConfig(backend="chunked", database_chunk_size=16))
    brute = Engine(engine.model, EngineConfig(backend="bruteforce"))
    chunked.ingest_vectors(database_vectors)
    brute.ingest_vectors(database_vectors)
    chunked_top5 = chunked.query(QueryRequest(queries=query_vectors, k=5))
    brute_top5 = brute.query(QueryRequest(queries=query_vectors, k=5))
    bit_identical = bool(
        (chunked_top5.ids == top5.ids).all()
        and (chunked_top5.distances == top5.distances).all()
    )
    ids_agree = bool((brute_top5.ids == top5.ids).all())
    print(f"sharded == chunked (aligned geometry): bit-identical {bit_identical}")
    print(f"bruteforce reference agrees on ids: {ids_agree}")

    # ----- ANN pass: the same corpus behind the IVF backend. -----
    # The coarse quantizer probes nprobe of nlist inverted lists per query
    # and exactly re-ranks every probed candidate, so queries trade a little
    # recall for scanning a fraction of the corpus.  At this demo scale the
    # python overhead eats most of the win — benchmarks/test_ann_recall_latency.py
    # gates >= 5x at 20k rows — but recall and the mechanics are the real thing.
    ann = Engine(
        engine.model,
        EngineConfig(backend="ivf", backend_params={"nlist": 16, "nprobe": 4}),
    )
    ann.ingest_vectors(database_vectors)
    k10 = min(10, len(benchmark.database))
    ann.backend.top_k(query_vectors, k10)  # build the index structure once
    exact_seconds, exact10 = float("inf"), None
    ann_seconds, ann10 = float("inf"), None
    for _ in range(3):  # best-of-3: demo corpora give sub-ms timings
        with Timer() as timer:
            exact10 = engine.backend.top_k(query_vectors, k10)
        exact_seconds = min(exact_seconds, timer.elapsed)
        with Timer() as timer:
            ann10 = ann.backend.top_k(query_vectors, k10)
        ann_seconds = min(ann_seconds, timer.elapsed)
    overlap = [
        len(set(map(int, exact10.indices[row])) & set(map(int, ann10.indices[row]))) / k10
        for row in range(len(benchmark.queries))
    ]
    print(
        f"ivf (nlist=16, nprobe=4): recall@{k10} {float(np.mean(overlap)):.2f}, "
        f"speedup vs exact sharded {exact_seconds / ann_seconds:.1f}x "
        f"({ann_seconds*1e3:.1f}ms vs {exact_seconds*1e3:.1f}ms)"
    )

    # ----- Streaming path: tail the corpus, ingest incrementally. -----
    # The same database arrives as a JSONL stream in two waves; the engine
    # encodes each wave once (length-bucketed) and appends to fresh shards —
    # wave 1's shards are never re-encoded or re-indexed when wave 2 lands.
    with tempfile.TemporaryDirectory() as tmp:
        stream_path = Path(tmp) / "arrivals.jsonl"
        reader = TrajectoryStreamReader(stream_path)
        streamer = Engine(engine.model, EngineConfig(backend="sharded", shard_capacity=32))
        split = len(benchmark.database) // 2
        append_trajectories(stream_path, benchmark.database[:split])
        streamer.drain(reader)
        batches_after_first = streamer.encode_calls
        append_trajectories(stream_path, benchmark.database[split:])
        streamer.drain(reader)
        print(
            f"streaming ingest: {len(streamer)} rows "
            f"({batches_after_first} + {streamer.encode_calls - batches_after_first} encode batches)"
        )
        streamed_top1 = streamer.query(QueryRequest(queries=query_vectors, k=1))
        query_rows = list(benchmark.ground_truth.keys())
        matched = streamed_top1.trajectory_ids[query_rows, 0]
        truth_ids = np.array(
            [
                benchmark.database[benchmark.ground_truth[row]].trajectory_id
                for row in query_rows
            ]
        )
        print(
            f"streamed HR@1 by trajectory id: "
            f"{float((matched == truth_ids).mean()):.2f} "
            f"(cache: {streamer.cache_stats})"
        )

    # Trembr, the strongest baseline in the paper, through the same harness.
    trembr = build_baseline("Trembr", dataset.network, config)
    trembr.pretrain(dataset.train_trajectories(), epochs=5)
    with Timer() as trembr_timer:
        trembr_report = evaluate_representation_search(trembr.encode, benchmark)
    print(f"Trembr           {trembr_report}  ({trembr_timer.elapsed:.2f}s)")

    # Classical measures on raw coordinates.
    for measure in ("DTW", "Frechet"):
        with Timer() as classical_timer:
            report = evaluate_classical_search(dataset.network, measure, benchmark)
        print(f"{measure:16s} {report}  ({classical_timer.elapsed:.2f}s)")


if __name__ == "__main__":
    main()
