#!/usr/bin/env python
"""Similarity search scenario: find detoured copies of trajectories.

This reproduces the setup behind Table II's last three columns and Figures 4
and 10: a fleet operator wants to find, for a query trip, the most similar
trip in a large historical database — for example to spot drivers taking
unnecessary detours or to identify popular routes.

The script compares three ways of answering the query:

* START representations + Euclidean distance (fast, learned);
* Trembr representations (the strongest baseline);
* classical pairwise measures (DTW / Fréchet), which are accurate on raw
  geometry but orders of magnitude slower.

Run:  python examples/similarity_search.py
"""

from __future__ import annotations

from repro.baselines import build_baseline
from repro.core import Pretrainer, STARTModel, small_config
from repro.eval import evaluate_classical_search, evaluate_representation_search
from repro.trajectory import build_dataset, build_similarity_benchmark
from repro.utils.seeding import get_rng, seed_everything
from repro.utils.timer import Timer


def main() -> None:
    seed_everything(11)
    dataset = build_dataset("synthetic-porto", scale=0.4)
    config = small_config()
    print(f"dataset: {len(dataset)} trajectories on {dataset.network.num_roads} roads")

    # Detour-based ground truth (Section IV-D4 of the paper).
    benchmark = build_similarity_benchmark(
        dataset.network,
        dataset.test_trajectories() + dataset.validation_trajectories(),
        num_queries=20,
        num_negatives=80,
        rng=get_rng(1),
    )
    print(f"benchmark: {len(benchmark.queries)} queries, {len(benchmark.database)} database trajectories")

    # START, used directly from pre-training (no fine-tuning).
    start = STARTModel.from_dataset(dataset, config)
    Pretrainer(start, config).pretrain(dataset.train_trajectories(), epochs=5, verbose=False)
    with Timer() as start_timer:
        start_report = evaluate_representation_search(start.encode, benchmark)
    print(f"START      {start_report}  ({start_timer.elapsed:.2f}s)")

    # Trembr, the strongest baseline in the paper.
    trembr = build_baseline("Trembr", dataset.network, config)
    trembr.pretrain(dataset.train_trajectories(), epochs=5)
    with Timer() as trembr_timer:
        trembr_report = evaluate_representation_search(trembr.encode, benchmark)
    print(f"Trembr     {trembr_report}  ({trembr_timer.elapsed:.2f}s)")

    # Classical measures on raw coordinates.
    for measure in ("DTW", "Frechet"):
        with Timer() as classical_timer:
            report = evaluate_classical_search(dataset.network, measure, benchmark)
        print(f"{measure:10s} {report}  ({classical_timer.elapsed:.2f}s)")


if __name__ == "__main__":
    main()
