#!/usr/bin/env python
"""Similarity search scenario: find detoured copies of trajectories.

This reproduces the setup behind Table II's last three columns and Figures 4
and 10: a fleet operator wants to find, for a query trip, the most similar
trip in a large historical database — for example to spot drivers taking
unnecessary detours or to identify popular routes.

The script walks the full serving path introduced in ``repro.serving``:

1. pre-train START and materialise the database into an
   :class:`~repro.serving.EmbeddingStore` (length-bucketed batch encoding);
2. persist the store to disk and load it back — a serving replica never
   needs the model, only the npz archive;
3. answer most-similar queries through a
   :class:`~repro.serving.SimilarityIndex` (chunked float32 distances +
   ``argpartition`` top-k) and cross-check against the brute-force
   full-distance-matrix path;
4. compare with the strongest learned baseline (Trembr) and with classical
   pairwise measures (DTW / Fréchet), which are accurate on raw geometry but
   orders of magnitude slower.

Run:  python examples/similarity_search.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.baselines import build_baseline
from repro.core import Pretrainer, STARTModel, small_config
from repro.eval import (
    euclidean_distance_matrix,
    evaluate_classical_search,
    evaluate_representation_search,
    most_similar_search_report,
    search_report_on_index,
)
from repro.serving import EmbeddingStore
from repro.trajectory import build_dataset, build_similarity_benchmark
from repro.utils.seeding import get_rng, seed_everything
from repro.utils.timer import Timer


def main() -> None:
    seed_everything(11)
    dataset = build_dataset("synthetic-porto", scale=0.4)
    config = small_config()
    print(f"dataset: {len(dataset)} trajectories on {dataset.network.num_roads} roads")

    # Detour-based ground truth (Section IV-D4 of the paper).
    benchmark = build_similarity_benchmark(
        dataset.network,
        dataset.test_trajectories() + dataset.validation_trajectories(),
        num_queries=20,
        num_negatives=80,
        rng=get_rng(1),
    )
    print(f"benchmark: {len(benchmark.queries)} queries, {len(benchmark.database)} database trajectories")

    # START, used directly from pre-training (no fine-tuning).
    start = STARTModel.from_dataset(dataset, config)
    Pretrainer(start, config).pretrain(dataset.train_trajectories(), epochs=5, verbose=False)

    # ----- Serving path: encode once, persist, reload, query the index. -----
    with Timer() as encode_timer:
        database_store = EmbeddingStore.build(
            start.encode, benchmark.database, metadata={"model": "START", "dataset": "synthetic-porto"}
        )
    print(
        f"embedding store: {len(database_store)} x {database_store.dim} vectors "
        f"encoded in {encode_timer.elapsed:.2f}s"
    )
    with tempfile.TemporaryDirectory() as tmp:
        saved_path = database_store.save(Path(tmp) / "porto_database.npz")
        database_store = EmbeddingStore.load(saved_path)
        print(f"store round trip: {saved_path.name}, metadata={database_store.metadata}")

    index = database_store.index()
    query_vectors = np.asarray(start.encode(benchmark.queries))

    with Timer() as index_timer:
        top5 = index.topk(query_vectors, k=5)
        start_report = search_report_on_index(index, query_vectors, benchmark.ground_truth)
    print(f"START/index  {start_report}  ({index_timer.elapsed*1000:.1f}ms)")

    # Brute-force cross-check: full distance matrix + full argsort per query.
    with Timer() as brute_timer:
        distances = euclidean_distance_matrix(query_vectors, database_store.vectors)
        brute_top5 = np.argsort(distances, axis=1, kind="stable")[:, :5]
        brute_report = most_similar_search_report(distances, benchmark.ground_truth)
    agrees = bool((brute_top5 == top5.indices).all())
    print(f"START/brute  {brute_report}  ({brute_timer.elapsed*1000:.1f}ms, top-5 agree: {agrees})")

    # Trembr, the strongest baseline in the paper, through the same harness.
    trembr = build_baseline("Trembr", dataset.network, config)
    trembr.pretrain(dataset.train_trajectories(), epochs=5)
    with Timer() as trembr_timer:
        trembr_report = evaluate_representation_search(trembr.encode, benchmark)
    print(f"Trembr       {trembr_report}  ({trembr_timer.elapsed:.2f}s)")

    # Classical measures on raw coordinates.
    for measure in ("DTW", "Frechet"):
        with Timer() as classical_timer:
            report = evaluate_classical_search(dataset.network, measure, benchmark)
        print(f"{measure:12s} {report}  ({classical_timer.elapsed:.2f}s)")


if __name__ == "__main__":
    main()
