#!/usr/bin/env python
"""Similarity search scenario: find detoured copies of trajectories.

This reproduces the setup behind Table II's last three columns and Figures 4
and 10: a fleet operator wants to find, for a query trip, the most similar
trip in a large historical database — for example to spot drivers taking
unnecessary detours or to identify popular routes.

The script walks the full serving path introduced in ``repro.serving``:

1. pre-train START and materialise the database into an
   :class:`~repro.serving.EmbeddingStore` (length-bucketed batch encoding);
2. persist the store to disk and load it back — a serving replica never
   needs the model, only the npz archive;
3. answer most-similar queries through a
   :class:`~repro.serving.SimilarityIndex` (chunked float32 distances +
   ``argpartition`` top-k) and cross-check against the brute-force
   full-distance-matrix path;
4. replay the same corpus through the *streaming* path
   (``repro.streaming``): tail a ``trajectories.jsonl`` with a
   :class:`~repro.streaming.TrajectoryStreamReader`, ingest incrementally
   into a sharded index via an :class:`~repro.streaming.IngestService`
   (micro-batched encoding, no re-encoding of earlier arrivals), and verify
   the sharded fan-out answers bit-identically to the monolithic index;
5. compare with the strongest learned baseline (Trembr) and with classical
   pairwise measures (DTW / Fréchet), which are accurate on raw geometry but
   orders of magnitude slower.

Run:  python examples/similarity_search.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.baselines import build_baseline
from repro.core import Pretrainer, STARTModel, small_config
from repro.eval import (
    euclidean_distance_matrix,
    evaluate_classical_search,
    evaluate_representation_search,
    most_similar_search_report,
    search_report_on_index,
)
from repro.serving import EmbeddingStore
from repro.streaming import IngestService, ShardedIndex, TrajectoryStreamReader
from repro.trajectory import append_trajectories, build_dataset, build_similarity_benchmark
from repro.utils.seeding import get_rng, seed_everything
from repro.utils.timer import Timer


def main() -> None:
    seed_everything(11)
    dataset = build_dataset("synthetic-porto", scale=0.4)
    config = small_config()
    print(f"dataset: {len(dataset)} trajectories on {dataset.network.num_roads} roads")

    # Detour-based ground truth (Section IV-D4 of the paper).
    benchmark = build_similarity_benchmark(
        dataset.network,
        dataset.test_trajectories() + dataset.validation_trajectories(),
        num_queries=20,
        num_negatives=80,
        rng=get_rng(1),
    )
    print(f"benchmark: {len(benchmark.queries)} queries, {len(benchmark.database)} database trajectories")

    # START, used directly from pre-training (no fine-tuning).
    start = STARTModel.from_dataset(dataset, config)
    Pretrainer(start, config).pretrain(dataset.train_trajectories(), epochs=5, verbose=False)

    # ----- Serving path: encode once, persist, reload, query the index. -----
    with Timer() as encode_timer:
        database_store = EmbeddingStore.build(
            start.encode, benchmark.database, metadata={"model": "START", "dataset": "synthetic-porto"}
        )
    print(
        f"embedding store: {len(database_store)} x {database_store.dim} vectors "
        f"encoded in {encode_timer.elapsed:.2f}s"
    )
    with tempfile.TemporaryDirectory() as tmp:
        saved_path = database_store.save(Path(tmp) / "porto_database.npz")
        database_store = EmbeddingStore.load(saved_path)
        print(f"store round trip: {saved_path.name}, metadata={database_store.metadata}")

    index = database_store.index()
    query_vectors = np.asarray(start.encode(benchmark.queries))

    with Timer() as index_timer:
        top5 = index.topk(query_vectors, k=5)
        start_report = search_report_on_index(index, query_vectors, benchmark.ground_truth)
    print(f"START/index  {start_report}  ({index_timer.elapsed*1000:.1f}ms)")

    # Brute-force cross-check: full distance matrix + full argsort per query.
    with Timer() as brute_timer:
        distances = euclidean_distance_matrix(query_vectors, database_store.vectors)
        brute_top5 = np.argsort(distances, axis=1, kind="stable")[:, :5]
        brute_report = most_similar_search_report(distances, benchmark.ground_truth)
    agrees = bool((brute_top5 == top5.indices).all())
    print(f"START/brute  {brute_report}  ({brute_timer.elapsed*1000:.1f}ms, top-5 agree: {agrees})")

    # ----- Streaming path: tail the corpus, ingest incrementally, shard. -----
    # The same database arrives as a JSONL stream in two waves; the service
    # encodes each wave once (micro-batched) and appends to fresh shards —
    # wave 1's shards are never re-encoded or re-indexed when wave 2 lands.
    with tempfile.TemporaryDirectory() as tmp:
        stream_path = Path(tmp) / "arrivals.jsonl"
        reader = TrajectoryStreamReader(stream_path)
        service = IngestService(start.encode, shard_capacity=32)
        split = len(benchmark.database) // 2
        append_trajectories(stream_path, benchmark.database[:split])
        service.drain(reader)
        batches_after_first = service.encoded_batches
        append_trajectories(stream_path, benchmark.database[split:])
        service.drain(reader)
        print(
            f"streaming ingest: {len(service)} rows across "
            f"{service.index.num_shards} shards "
            f"({batches_after_first} + {service.encoded_batches - batches_after_first} encode batches)"
        )
        streamed_top1 = service.top_k(query_vectors, k=1)
        query_rows = list(benchmark.ground_truth.keys())
        matched = service.trajectory_ids(streamed_top1.indices[query_rows, 0])
        truth_ids = np.array(
            [
                benchmark.database[benchmark.ground_truth[row]].trajectory_id
                for row in query_rows
            ]
        )
        print(
            f"streamed HR@1 by trajectory id: "
            f"{float((matched == truth_ids).mean()):.2f} "
            f"(cache: {service.cache_stats})"
        )

    # Sharded vs monolithic on the *same* vectors: with the shard capacity a
    # multiple of the chunk size, fan-out + merge is bit-identical to the
    # single-segment index (ids and distances), whatever the shard count.
    sharded = ShardedIndex.from_vectors(
        database_store.vectors, shard_capacity=32, database_chunk_size=16
    )
    aligned_top5 = database_store.index(database_chunk_size=16).topk(query_vectors, k=5)
    sharded_top5 = sharded.top_k(query_vectors, k=5)
    identical = bool(
        (sharded_top5.indices == aligned_top5.indices).all()
        and (sharded_top5.distances == aligned_top5.distances).all()
    )
    print(f"sharded ({sharded.num_shards} shards) == monolithic: {identical}")

    # Trembr, the strongest baseline in the paper, through the same harness.
    trembr = build_baseline("Trembr", dataset.network, config)
    trembr.pretrain(dataset.train_trajectories(), epochs=5)
    with Timer() as trembr_timer:
        trembr_report = evaluate_representation_search(trembr.encode, benchmark)
    print(f"Trembr       {trembr_report}  ({trembr_timer.elapsed:.2f}s)")

    # Classical measures on raw coordinates.
    for measure in ("DTW", "Frechet"):
        with Timer() as classical_timer:
            report = evaluate_classical_search(dataset.network, measure, benchmark)
        print(f"{measure:12s} {report}  ({classical_timer.elapsed:.2f}s)")


if __name__ == "__main__":
    main()
