#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

This is the example-script twin of the ``benchmarks/`` directory: it calls the
same experiment runners, prints every artefact and (optionally) writes them to
a results file.  Scale and training length can be increased from the command
line for higher-fidelity runs.

Run:  python examples/run_all_experiments.py [--scale 0.3] [--output results.txt]
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    Figure3Settings,
    Figure4Settings,
    Figure5Settings,
    Figure6Settings,
    Figure7Settings,
    Figure8Settings,
    Figure9Settings,
    Figure10Settings,
    Table2Settings,
    Table3Settings,
    format_figure1,
    format_figure3,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10,
    format_table1,
    format_table2,
    format_table3,
    run_figure1,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_table1,
    run_table2,
    run_table3,
    summarize_winners,
)
from repro.utils.seeding import seed_everything


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3, help="dataset scale multiplier")
    parser.add_argument("--pretrain-epochs", type=int, default=4)
    parser.add_argument("--finetune-epochs", type=int, default=4)
    parser.add_argument(
        "--backend",
        type=str,
        default="sharded",
        help="repro.api index backend serving the similarity-search tasks",
    )
    parser.add_argument("--output", type=str, default=None, help="also write the report to this file")
    parser.add_argument("--skip", nargs="*", default=[], help="artefact names to skip, e.g. table2 figure7")
    args = parser.parse_args(argv)

    seed_everything(2023)
    sections: list[str] = []

    def emit(name: str, text: str) -> None:
        print(text)
        print()
        sections.append(text)

    if "table1" not in args.skip:
        emit("table1", format_table1(run_table1(scale=args.scale)))
    if "figure1" not in args.skip:
        emit("figure1", format_figure1(run_figure1(scale=args.scale)))
    if "table2" not in args.skip:
        settings = Table2Settings(
            scale=args.scale,
            pretrain_epochs=args.pretrain_epochs,
            finetune_epochs=args.finetune_epochs,
            backend=args.backend,
        )
        rows = run_table2("synthetic-porto", settings)
        emit("table2", format_table2(rows) + "\nwinners: " + str(summarize_winners(rows)))
    if "table3" not in args.skip:
        emit("table3", format_table3(run_table3(Table3Settings(
            scale=args.scale, pretrain_epochs=args.pretrain_epochs, finetune_epochs=args.finetune_epochs))))
    if "figure3" not in args.skip:
        emit("figure3", format_figure3(run_figure3(Figure3Settings(
            scale=args.scale, pretrain_epochs=args.pretrain_epochs, finetune_epochs=args.finetune_epochs))))
    if "figure4" not in args.skip:
        emit("figure4", format_figure4(run_figure4("synthetic-porto", Figure4Settings(
            scale=args.scale, pretrain_epochs=args.pretrain_epochs, backend=args.backend))))
    if "figure5" not in args.skip:
        emit("figure5", format_figure5(run_figure5("synthetic-porto", Figure5Settings(
            scale=args.scale, pretrain_epochs=min(args.pretrain_epochs, 3)))))
    if "figure6" not in args.skip:
        emit("figure6", format_figure6(run_figure6("synthetic-bj", Figure6Settings(
            scale=args.scale, pretrain_epochs=args.pretrain_epochs, finetune_epochs=args.finetune_epochs))))
    if "figure7" not in args.skip:
        emit("figure7", format_figure7(run_figure7("synthetic-porto", Figure7Settings(
            scale=args.scale, pretrain_epochs=args.pretrain_epochs, finetune_epochs=args.finetune_epochs))))
    if "figure8" not in args.skip:
        emit("figure8", format_figure8(run_figure8("synthetic-porto", Figure8Settings(
            scale=args.scale, pretrain_epochs=min(args.pretrain_epochs, 3)))))
    if "figure9" not in args.skip:
        emit("figure9", format_figure9(run_figure9("synthetic-porto", Figure9Settings(
            scale=args.scale, pretrain_epochs=min(args.pretrain_epochs, 3)))))
    if "figure10" not in args.skip:
        emit("figure10", format_figure10(run_figure10("synthetic-porto", Figure10Settings(scale=args.scale))))

    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n\n".join(sections) + "\n")
        print(f"report written to {args.output}", file=sys.stderr)


if __name__ == "__main__":
    main()
