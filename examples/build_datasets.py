#!/usr/bin/env python
"""Build and persist the synthetic datasets (the Table I preprocessing step).

Writes each preset (network CSVs + trajectories JSONL) under ``data/`` so that
other scripts — or a user's own experiments — can load them with
``repro.trajectory.load_dataset`` without regenerating them.

Run:  python examples/build_datasets.py [--scale 0.3] [--out data]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import format_table1
from repro.trajectory import PRESET_NAMES, build_dataset, build_network, save_dataset
from repro.utils.seeding import seed_everything


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--out", type=str, default="data")
    args = parser.parse_args(argv)

    seed_everything(0)
    output_root = Path(args.out)
    rows = []
    bj_network = build_network("synthetic-bj")
    for name in PRESET_NAMES:
        network = bj_network if name in ("synthetic-bj", "synthetic-geolife") else None
        dataset = build_dataset(name, scale=args.scale, network=network)
        directory = save_dataset(dataset, output_root / name)
        stats = dataset.statistics()
        split = stats.pop("train/eval/test")
        rows.append(
            {
                "Dataset": name,
                "#Trajectory": stats["num_trajectories"],
                "#Usr": stats["num_users"],
                "#Road Segment": stats["num_roads"],
                "#Covered Roads": stats["num_covered_roads"],
                "Mean length": stats["mean_length"],
                "train/eval/test": f"{split[0]}/{split[1]}/{split[2]}",
            }
        )
        print(f"wrote {stats['num_trajectories']} trajectories to {directory}")
    print()
    print(format_table1(rows))


if __name__ == "__main__":
    main()
