#!/usr/bin/env python
"""Cross-dataset transfer scenario (the Table III experiment as an application).

A city has only a tiny labelled trajectory dataset (synthetic-Geolife: a few
hundred multi-modal trips).  We pre-train START on a large taxi corpus from
another source (synthetic-BJ), transfer the encoder, and fine-tune it on the
small dataset for transportation-mode classification — comparing against
training from scratch on the small dataset alone.

Run:  python examples/transfer_learning.py
"""

from __future__ import annotations

from repro.api import Engine
from repro.core import TrajectoryClassifier, small_config
from repro.eval import multiclass_classification_report
from repro.experiments import build_start
from repro.experiments.table3_transfer import _transfer_start
from repro.trajectory import build_dataset, build_network
from repro.utils.seeding import seed_everything


def evaluate(model, config, geolife) -> dict:
    classifier = TrajectoryClassifier(model, num_classes=4, label_kind="mode", config=config)
    classifier.fit(geolife.train_trajectories(), epochs=5)
    test = geolife.test_trajectories()
    probabilities = classifier.predict_proba(test)
    return multiclass_classification_report(
        classifier.labels_of(test), probabilities.argmax(axis=1), probabilities, k=2
    )


def main() -> None:
    seed_everything(3)
    config = small_config()

    # The small target dataset shares BJ's road network (as Geolife shares
    # Beijing's road network in the paper).
    bj_network = build_network("synthetic-bj")
    geolife = build_dataset("synthetic-geolife", scale=0.5, network=bj_network)
    bj = build_dataset("synthetic-bj", scale=0.3, network=bj_network)
    print(f"target dataset: {len(geolife)} trajectories; source dataset: {len(bj)} trajectories")

    # 1. Train on the small dataset only.
    scratch = build_start(geolife, config)
    print("from scratch:   ", evaluate(scratch, config, geolife))

    # 2. Pre-train on the small dataset itself (model lifecycle via the facade).
    self_pretrained = build_start(geolife, config)
    Engine(self_pretrained).pretrain(geolife.train_trajectories(), epochs=4)
    print("pre-train (self):", evaluate(self_pretrained, config, geolife))

    # 3. Pre-train on the large source corpus, transfer, then fine-tune.
    source = build_start(bj, config)
    Engine(source).pretrain(bj.train_trajectories(), epochs=4)
    transferred = _transfer_start(source, geolife, config)
    print("BJ -> Geolife:   ", evaluate(transferred, config, geolife))


if __name__ == "__main__":
    main()
