#!/usr/bin/env python
"""Raw-GPS ingestion scenario: map matching noisy GPS traces onto the road network.

The paper's datasets are raw GPS logs that are map matched (with FMM) before
representation learning.  This example exercises that part of the pipeline:

1. generate raw GPS traces (noisy points sampled along ground-truth routes);
2. run the HMM map matcher to recover road-network constrained trajectories;
3. measure how well the matcher recovers the true road sequences;
4. feed the matched trajectories into START pre-training.

Run:  python examples/map_matching_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Engine, EngineConfig
from repro.core import small_config
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    CongestionModel,
    DemandConfig,
    HMMMapMatcher,
    MatchingConfig,
    TrajectoryDataset,
    TrajectoryGenerator,
)
from repro.utils.seeding import seed_everything


def main() -> None:
    seed_everything(5)
    network = generate_city(CityConfig(grid_rows=8, grid_cols=8, seed=2))
    generator = TrajectoryGenerator(
        network,
        CongestionModel(network),
        DemandConfig(num_drivers=10, num_days=6, trips_per_driver_per_day=2.0, gps_noise_std=10.0, seed=2),
    )
    result = generator.generate(num_trajectories=80, emit_gps=True)
    print(f"generated {len(result.raw_trajectories)} raw GPS traces "
          f"({sum(len(r) for r in result.raw_trajectories)} points)")

    matcher = HMMMapMatcher(network, MatchingConfig(search_radius=70.0, gps_error_std=15.0))
    matched = matcher.match_many(result.raw_trajectories)
    print(f"map matched {len(matched)}/{len(result.raw_trajectories)} traces")

    overlaps = []
    for truth, recovered in zip(result.trajectories, matched):
        truth_roads = set(truth.roads)
        overlaps.append(len(truth_roads & set(recovered.roads)) / len(truth_roads))
    print(f"mean road-recovery overlap vs ground truth: {np.mean(overlaps):.2%}")

    dataset = TrajectoryDataset(network, matched, name="map-matched").preprocess()
    dataset.chronological_split()
    if len(dataset.train_trajectories()) >= 16:
        engine = Engine.from_dataset(dataset, EngineConfig(start=small_config()))
        history = engine.pretrain(dataset.train_trajectories(), epochs=2)
        print(f"pre-trained START on matched trajectories; loss {history.total[0]:.3f} -> {history.total[-1]:.3f}")
    else:
        print("not enough matched trajectories survived preprocessing to pre-train")


if __name__ == "__main__":
    main()
