"""Setuptools entry point.

The pinned environment for this reproduction has no ``wheel`` package and no
network access, so PEP 660 editable installs (which require building a wheel)
are unavailable.  Keeping a ``setup.py`` alongside ``pyproject.toml`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path, which
works offline.
"""

from setuptools import setup

setup()
