"""Mutable row storage shared by the ANN backends.

Both ANN backends keep the *raw* vectors next to their quantized structure:
the structure accelerates candidate generation, the raw rows provide exact
re-ranking, exact ``ranks_of`` and lossless ``segments()`` snapshots.  The
storage is insertion-ordered with O(1) tombstone removals (like the sharded
backend's segments) and amortised-doubling growth.

Determinism contract: the derived index structure must be a pure function of
``(stored rows in order, backend parameters, seed)`` — never of arrival
batching or query history.  ``Engine.restore`` replays a snapshot's rows in
the original order (tombstones re-applied afterwards), so a restored replica
rebuilds the identical structure and answers bit-identically.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.serving.index import (
    DEFAULT_DATABASE_CHUNK,
    DEFAULT_QUERY_CHUNK,
    SearchResult,
    as_float32_matrix,
    pairwise_squared_euclidean,
    scan_count_before,
    squared_norms,
)
from repro.streaming.shards import DEFAULT_SHARD_CAPACITY

#: Initial allocation of the growable row buffer.
_INITIAL_ALLOCATION = 256


class AnnBackendBase:
    """`IndexBackend` plumbing for the ANN indexes: storage, ids, tombstones.

    Subclasses implement :meth:`_rebuild_structure` (train the quantized
    index over the current rows) and :meth:`_search_block` (approximate
    top-k candidates for one query block).  Everything else — the mutation
    surface, exact ranks, snapshot segments, the exact-scan degenerate path —
    lives here.
    """

    name = "ann"
    supports_removal = True
    #: Conformance hint: top_k answers are approximate (recall may be < 1).
    #: Exact invariants still hold: returned distances are the true distances
    #: of the returned ids, ordering is (distance, id), ranks_of is exact.
    is_exact = False

    def __init__(
        self,
        dim: int | None = None,
        *,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        query_chunk_size: int = DEFAULT_QUERY_CHUNK,
        database_chunk_size: int = DEFAULT_DATABASE_CHUNK,
    ) -> None:
        if query_chunk_size < 1 or database_chunk_size < 1:
            raise ValueError("chunk sizes must be positive")
        self._dim = int(dim) if dim is not None else None
        self.shard_capacity = int(shard_capacity)  # geometry hint, unused
        self.query_chunk_size = int(query_chunk_size)
        self.database_chunk_size = int(database_chunk_size)
        self._vectors = np.empty((0, 0), dtype=np.float32)
        self._norms = np.empty(0, dtype=np.float32)
        self._ids = np.empty(0, dtype=np.int64)
        self._dead = np.zeros(0, dtype=bool)
        self._count = 0
        self._dead_count = 0
        self._rows_by_id: dict[int, int] = {}
        #: Ids of tombstoned rows still in storage: re-adding one would store
        #: two rows under the same id and corrupt snapshots, so `add` rejects
        #: them until `compact` physically reclaims the row.
        self._dead_ids: set[int] = set()
        self._next_id = 0
        self.generation = 0
        self._structure = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Alive (queryable) rows."""
        return self._count - self._dead_count

    @property
    def dim(self) -> int | None:
        return self._dim

    @property
    def next_id(self) -> int:
        return self._next_id

    @next_id.setter
    def next_id(self, value: int) -> None:
        if int(value) < self._next_id:
            raise ValueError("next_id may only move forward")
        self._next_id = int(value)

    @property
    def stored_count(self) -> int:
        """Stored rows, tombstoned included."""
        return self._count

    @property
    def tombstone_count(self) -> int:
        return self._dead_count

    def __contains__(self, row_id: int) -> bool:
        return int(row_id) in self._rows_by_id

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _grow_to(self, needed: int) -> None:
        allocated = self._vectors.shape[0]
        if needed <= allocated and self._vectors.shape[1] == self._dim:
            return
        new_size = max(allocated, _INITIAL_ALLOCATION)
        while new_size < needed:
            new_size *= 2
        fresh_vectors = np.empty((new_size, self._dim), dtype=np.float32)
        fresh_norms = np.empty(new_size, dtype=np.float32)
        fresh_ids = np.empty(new_size, dtype=np.int64)
        fresh_dead = np.zeros(new_size, dtype=bool)
        if self._count:
            fresh_vectors[: self._count] = self._vectors[: self._count]
            fresh_norms[: self._count] = self._norms[: self._count]
            fresh_ids[: self._count] = self._ids[: self._count]
            fresh_dead[: self._count] = self._dead[: self._count]
        self._vectors, self._norms = fresh_vectors, fresh_norms
        self._ids, self._dead = fresh_ids, fresh_dead

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        vectors = as_float32_matrix(vectors)
        if self._dim is None:
            self._dim = vectors.shape[1]
        elif vectors.shape[1] != self._dim:
            raise ValueError(f"vector dimension {vectors.shape[1]} != index dimension {self._dim}")
        count = vectors.shape[0]
        if ids is None:
            ids = np.arange(self._next_id, self._next_id + count, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (count,):
                raise ValueError("ids must have exactly one entry per vector row")
            if len(np.unique(ids)) != count:
                raise ValueError("ids must be unique")
            for row_id in ids:
                if int(row_id) in self._rows_by_id:
                    raise ValueError(f"row id {int(row_id)} already present")
                if int(row_id) in self._dead_ids:
                    raise ValueError(
                        f"row id {int(row_id)} is tombstoned but still stored; "
                        "compact() before reusing it"
                    )
        if count == 0:
            return ids
        self._grow_to(self._count + count)
        start, stop = self._count, self._count + count
        self._vectors[start:stop] = vectors
        # Row-wise einsum norms: bit-identical to the exact backends' cache.
        self._norms[start:stop] = squared_norms(vectors)
        self._ids[start:stop] = ids
        self._dead[start:stop] = False
        for row in range(start, stop):
            self._rows_by_id[int(self._ids[row])] = row
        self._count = stop
        self._next_id = max(self._next_id, int(ids.max()) + 1)
        self.generation += 1
        self._structure = None  # stored rows changed: retrain lazily
        return ids

    def remove(self, ids) -> int:
        """Tombstone rows by global id; returns how many were alive.

        Tombstones do **not** invalidate the trained structure (the structure
        is a function of *stored* rows; dead rows are masked at query time),
        so removals stay O(1) like the sharded backend's.
        """
        removed = 0
        for row_id in np.atleast_1d(np.asarray(ids, dtype=np.int64)):
            row = self._rows_by_id.pop(int(row_id), None)
            if row is not None and not self._dead[row]:
                self._dead[row] = True
                self._dead_ids.add(int(row_id))
                self._dead_count += 1
                removed += 1
        if removed:
            self.generation += 1
        return removed

    def compact(self, *, min_tombstones: int = 1) -> bool:
        """Drop tombstoned rows from storage (order preserved), retrain lazily."""
        if self._dead_count < min_tombstones:
            return False
        alive = ~self._dead[: self._count]
        self._vectors = np.ascontiguousarray(self._vectors[: self._count][alive])
        self._norms = self._norms[: self._count][alive].copy()
        self._ids = self._ids[: self._count][alive].copy()
        self._count = self._vectors.shape[0]
        self._dead = np.zeros(self._count, dtype=bool)
        self._dead_count = 0
        self._dead_ids = set()
        self._rows_by_id = {int(row_id): row for row, row_id in enumerate(self._ids)}
        self.generation += 1
        self._structure = None
        self._on_compact()
        return True

    def _on_compact(self) -> None:
        """Hook: compaction changes the storage prefix (caches keyed on it die)."""

    def segments(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        if self._count:
            yield (
                self._vectors[: self._count],
                self._ids[: self._count],
                self._dead[: self._count],
            )

    # ------------------------------------------------------------------ #
    # Structure lifecycle (subclass responsibility)
    # ------------------------------------------------------------------ #
    def _rebuild_structure(self):
        raise NotImplementedError

    def _ensure_structure(self):
        if self._structure is None:
            self._structure = self._rebuild_structure()
        return self._structure

    def _search_block(
        self, structure, block: np.ndarray, block_norms: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate ``(ids, distances)`` top-k for one query block."""
        raise NotImplementedError

    def _probe_everything(self, structure) -> bool:
        """Whether the configured probing covers every inverted list."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = as_float32_matrix(queries, "queries")
        if self._dim is not None and queries.shape[1] != self._dim:
            raise ValueError(
                f"query dimension {queries.shape[1]} does not match index dimension {self._dim}"
            )
        return queries

    def _exact_top_k(self, queries: np.ndarray, k: int) -> SearchResult:
        """Exact scan with arithmetic identical to the bruteforce backend.

        When probing covers every list the candidate set is the whole corpus,
        so the scan runs the *same* full-matrix GEMM + ``(distance, id)``
        lexsort as ``BruteforceBackend`` — the result is bit-identical to the
        oracle (BLAS results are not shape-invariant, so matching shapes is
        the only way to guarantee that; the nprobe=nlist hypothesis property
        in ``tests/test_ann.py`` pins it).
        """
        stored = self._vectors[: self._count]
        squared = pairwise_squared_euclidean(
            queries,
            stored,
            query_norms=squared_norms(queries),
            database_norms=self._norms[: self._count],
        )
        if self._dead_count:
            squared[:, self._dead[: self._count]] = np.inf
        id_row = np.broadcast_to(self._ids[: self._count], squared.shape)
        order = np.lexsort((id_row, squared), axis=-1)[:, :k]
        return SearchResult(
            indices=np.take_along_axis(id_row, order, axis=1),
            distances=np.sqrt(np.take_along_axis(squared, order, axis=1)),
        )

    def top_k(self, queries: np.ndarray, k: int) -> SearchResult:
        """The ``k`` nearest *probed* alive rows per query (approximate).

        Candidates come from the probed inverted lists only; every returned
        distance is the candidate's exact Euclidean distance (probed
        candidates are exactly re-ranked).  Per query, lists are probed in
        ascending coarse-distance order and the probe count is expanded past
        ``nprobe`` when the probed lists hold fewer than ``k`` alive rows, so
        the result always has ``min(k, len(self))`` columns like the exact
        backends.  ``k < 1`` raises, matching every other backend.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = self._check_queries(queries)
        num_queries = queries.shape[0]
        k = min(k, len(self))
        if num_queries == 0 or k == 0:
            return SearchResult(
                indices=np.empty((num_queries, k), dtype=np.int64),
                distances=np.empty((num_queries, k), dtype=np.float32),
            )
        structure = self._ensure_structure()
        if self._probe_everything(structure):
            return self._exact_top_k(queries, k)
        indices = np.empty((num_queries, k), dtype=np.int64)
        distances = np.empty((num_queries, k), dtype=np.float32)
        for row in range(0, num_queries, self.query_chunk_size):
            block = queries[row : row + self.query_chunk_size]
            block_norms = squared_norms(block)
            block_ids, block_distances = self._search_block(structure, block, block_norms, k)
            indices[row : row + block.shape[0]] = block_ids
            distances[row : row + block.shape[0]] = block_distances
        return SearchResult(indices=indices, distances=distances)

    def most_similar(self, queries: np.ndarray) -> SearchResult:
        return self.top_k(queries, k=1)

    def ranks_of(self, queries: np.ndarray, truth_ids: np.ndarray) -> np.ndarray:
        """1-based rank of ``truth_ids[i]`` among **all** alive rows — exact.

        Rank evaluation is a ground-truth metric, not a serving path, so the
        ANN backends compute it with the same full counting scan as the exact
        backends (smaller distance, or equal distance and smaller id, sorts
        before).  Approximation shows up in ``top_k`` recall, never in ranks.
        """
        queries = self._check_queries(queries)
        truth = np.asarray(truth_ids, dtype=np.int64)
        if truth.shape != (queries.shape[0],):
            raise ValueError("truth_ids must have one entry per query row")
        if self._count == 0:
            raise ValueError("the index is empty; no truth rows exist")
        truth_rows = np.empty(truth.shape, dtype=np.int64)
        for i, row_id in enumerate(truth):
            row = self._rows_by_id.get(int(row_id))
            if row is None:
                raise ValueError(f"truth id {int(row_id)} is not an alive row of the index")
            truth_rows[i] = row
        stored = self._vectors[: self._count]
        dead = self._dead[: self._count] if self._dead_count else None
        ranks = np.empty(truth.shape, dtype=np.int64)
        for row in range(0, queries.shape[0], self.query_chunk_size):
            block = queries[row : row + self.query_chunk_size]
            block_norms = squared_norms(block)
            block_truth_rows = truth_rows[row : row + block.shape[0]]
            gathered = stored[block_truth_rows]
            truth_d = (
                block_norms
                + self._norms[block_truth_rows]
                - np.float32(2.0) * np.einsum("ij,ij->i", block, gathered)
            )
            np.maximum(truth_d, 0.0, out=truth_d)
            before = scan_count_before(
                block,
                block_norms,
                stored,
                self._norms[: self._count],
                truth_d,
                truth[row : row + block.shape[0]],
                self.database_chunk_size,
                row_ids=self._ids[: self._count],
                exclude=dead,
            )
            ranks[row : row + block.shape[0]] = before + 1
        return ranks
