"""Product quantization: compact codes + ADC lookup-table distances.

A :class:`ProductQuantizer` splits a ``d``-dimensional vector into ``m``
contiguous sub-vectors and replaces each with the index of its nearest
centroid in a per-subspace codebook of ``2**bits`` entries, so one vector
costs ``m`` small integers instead of ``d`` floats.  Queries never decode:
asymmetric distance computation (ADC) precomputes, per query, the squared
distance from each query sub-vector to every codebook entry — an
``(m, 2**bits)`` lookup table — and a candidate's approximate squared
distance is the sum of ``m`` table cells selected by its code.

Used by :class:`repro.ann.ivfpq.IVFPQBackend` on *residuals* (vector minus
its coarse centroid), the classic IVF-PQ layout.  Training is deterministic
(seeded k-means per subspace), which keeps index rebuilds and
snapshot/restore bit-stable.
"""

from __future__ import annotations

import numpy as np

from repro.ann.kmeans import assign_to_centroids, kmeans
from repro.serving.index import as_float32_matrix

#: Cap on ``bits`` — codes are stored as uint16.
_MAX_BITS = 16


def largest_divisor_at_most(dim: int, m: int) -> int:
    """The largest divisor of ``dim`` that is ``<= m`` (at least 1)."""
    for candidate in range(min(m, dim), 0, -1):
        if dim % candidate == 0:
            return candidate
    return 1


class ProductQuantizer:
    """Per-subspace codebooks over ``m`` contiguous slices of the input dim.

    ``m`` is clamped to the largest divisor of ``dim`` not exceeding the
    request (so any geometry quantizes; ``m=1`` degenerates to plain vector
    quantization), and the per-subspace codebook size is ``2**bits`` clamped
    to the number of training rows.
    """

    def __init__(self, dim: int, m: int = 8, bits: int = 8, *, seed: int = 0) -> None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if m < 1:
            raise ValueError("m must be >= 1")
        if not 1 <= bits <= _MAX_BITS:
            raise ValueError(f"bits must be in [1, {_MAX_BITS}]")
        self.dim = int(dim)
        self.m = largest_divisor_at_most(self.dim, int(m))
        self.subdim = self.dim // self.m
        self.bits = int(bits)
        self.seed = int(seed)
        self.codebooks: np.ndarray | None = None  # (m, ks, subdim) once trained

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    @property
    def codebook_size(self) -> int:
        """Entries per subspace codebook (``ks``); 0 before training."""
        return 0 if self.codebooks is None else self.codebooks.shape[1]

    def _split(self, vectors: np.ndarray) -> np.ndarray:
        vectors = as_float32_matrix(vectors)
        if vectors.shape[1] != self.dim:
            raise ValueError(f"vector dimension {vectors.shape[1]} != PQ dimension {self.dim}")
        return vectors.reshape(vectors.shape[0], self.m, self.subdim)

    def train(self, vectors: np.ndarray) -> "ProductQuantizer":
        """Fit one seeded k-means codebook per subspace; returns ``self``."""
        split = self._split(vectors)
        if split.shape[0] < 1:
            raise ValueError("PQ training needs at least one vector")
        ks = min(2**self.bits, split.shape[0])
        self.codebooks = np.stack(
            [
                kmeans(np.ascontiguousarray(split[:, j]), ks, seed=self.seed + j)
                for j in range(self.m)
            ]
        )
        return self

    def _require_trained(self) -> np.ndarray:
        if self.codebooks is None:
            raise RuntimeError("ProductQuantizer is untrained; call train() first")
        return self.codebooks

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize to ``(N, m)`` uint16 codebook indices."""
        codebooks = self._require_trained()
        split = self._split(vectors)
        codes = np.empty((split.shape[0], self.m), dtype=np.uint16)
        for j in range(self.m):
            assignments, _ = assign_to_centroids(
                np.ascontiguousarray(split[:, j]), codebooks[j]
            )
            codes[:, j] = assignments
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct ``(N, dim)`` float32 vectors from codes."""
        codebooks = self._require_trained()
        codes = np.asarray(codes)
        gathered = codebooks[np.arange(self.m)[None, :], codes.astype(np.int64)]
        return gathered.reshape(codes.shape[0], self.dim)

    def lookup_tables(self, queries: np.ndarray) -> np.ndarray:
        """ADC tables: ``tables[q, j, c]`` = squared distance from query ``q``'s
        ``j``-th sub-vector to codebook entry ``c`` — shape ``(Q, m, ks)``."""
        codebooks = self._require_trained()
        split = self._split(queries)  # (Q, m, subdim)
        diff = split[:, :, None, :] - codebooks[None, :, :, :]
        return np.einsum("qjcd,qjcd->qjc", diff, diff)

    def dot_tables(self, queries: np.ndarray) -> np.ndarray:
        """Inner-product tables: ``tables[q, j, c] = q_sub_j . codebook[j, c]``.

        The cheap half of the ADC expansion ``|q - r|^2 = |q|^2 + |r|^2 -
        2 q.r``: combined with precomputed candidate norms these order
        candidates identically to :meth:`lookup_tables` (the ``|q|^2`` term
        is constant per query), at one table build per query *block* instead
        of per (query, probed-list) pair.
        """
        codebooks = self._require_trained()
        split = self._split(queries)
        return np.einsum("qjd,jcd->qjc", split, codebooks)

    def gather_sum(self, tables: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Sum each candidate's ``m`` table cells: ``(Q, m, ks) x (N, m) ->
        (Q, N)`` — the shared gather behind both ADC table flavours."""
        codes = np.asarray(codes, dtype=np.int64)
        # Index arrays broadcast to (m, N), giving (Q, m, N) before the sum.
        gathered = tables[:, np.arange(self.m)[:, None], codes.T]
        return gathered.sum(axis=1)

    def adc(self, tables: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances ``(Q, N)`` from ADC ``tables`` and
        candidate ``codes`` — ``m`` table lookups summed per pair, no decode."""
        return self.gather_sum(tables, codes)
