"""IVF-PQ: inverted lists scanned with product-quantized residual distances.

Extends :class:`~repro.ann.ivf.IVFBackend` with the classic second stage:
each stored row's *residual* (vector minus its coarse centroid) is encoded to
an ``m``-byte PQ code, and probed lists are scanned with ADC lookup-table
distances instead of raw-vector GEMMs — O(m) table adds per candidate
instead of O(d) multiply-adds, independent of the stored precision.

Because ADC distances are approximate, the scan keeps a per-query candidate
pool of ``max(k, rerank)`` best ADC rows, then re-ranks that pool with exact
distances against the raw stored vectors, so the *returned* distances are
always exact (the approximation only decides which candidates reach the
pool).  ``nprobe >= nlist`` skips quantization entirely and takes the same
bruteforce-identical exact path as IVF.

Knobs: ``pq_m`` sub-quantizers (clamped to the largest divisor of ``dim``),
``pq_bits`` per code (codebook size ``2**pq_bits``, clamped to the training
rows), ``rerank`` pool size, plus everything IVF has.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.ivf import _IVFStructure, IVFBackend
from repro.ann.pq import ProductQuantizer
from repro.serving.index import (
    DEFAULT_DATABASE_CHUNK,
    DEFAULT_QUERY_CHUNK,
    merge_topk_candidates,
)
from repro.streaming.shards import DEFAULT_SHARD_CAPACITY

#: Default number of PQ sub-quantizers (clamped to a divisor of dim).
DEFAULT_PQ_M = 8
#: Default bits per PQ code (codebook size 2**bits).
DEFAULT_PQ_BITS = 8
#: Default exact re-rank pool per query (clamped up to k).
DEFAULT_RERANK = 32


@dataclass
class _IVFPQStructure(_IVFStructure):
    """IVF layout + trained PQ + per-row residual codes (grouped by list)."""

    pq: ProductQuantizer = None  # type: ignore[assignment]
    codes: np.ndarray = None  # type: ignore[assignment]  # (N, m) uint16
    #: |centroid + decode(code)|^2 per row — the candidate half of the ADC
    #: expansion, precomputed at build so the scan never touches sub-vectors.
    recon_norms: np.ndarray = None  # type: ignore[assignment]  # (N,)


class IVFPQBackend(IVFBackend):
    """``"ivfpq"``: IVF probing + ADC candidate scan + exact re-rank."""

    name = "ivfpq"

    def __init__(
        self,
        dim: int | None = None,
        *,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        query_chunk_size: int = DEFAULT_QUERY_CHUNK,
        database_chunk_size: int = DEFAULT_DATABASE_CHUNK,
        nlist: int = 64,
        nprobe: int = 8,
        train_size: int = 4096,
        seed: int = 0,
        pq_m: int = DEFAULT_PQ_M,
        pq_bits: int = DEFAULT_PQ_BITS,
        rerank: int = DEFAULT_RERANK,
    ) -> None:
        super().__init__(
            dim,
            shard_capacity=shard_capacity,
            query_chunk_size=query_chunk_size,
            database_chunk_size=database_chunk_size,
            nlist=nlist,
            nprobe=nprobe,
            train_size=train_size,
            seed=seed,
        )
        if pq_m < 1:
            raise ValueError("pq_m must be >= 1")
        if not 1 <= pq_bits <= 16:
            raise ValueError("pq_bits must be in [1, 16]")
        if rerank < 1:
            raise ValueError("rerank must be >= 1")
        self.pq_m = int(pq_m)
        self.pq_bits = int(pq_bits)
        self.rerank = int(rerank)

    # ------------------------------------------------------------------ #
    # Training / structure
    # ------------------------------------------------------------------ #
    def _rebuild_structure(self) -> _IVFPQStructure:
        base = super()._rebuild_structure()
        # Residuals in grouped order: row minus its owning coarse centroid.
        residuals = base.vectors - base.centroids[base.list_of_position]
        train_rows = min(self.train_size, residuals.shape[0])
        # The training subset is the residuals of the first `train_rows`
        # *storage* rows — a pure function of the stored prefix, like the
        # coarse centroids, so rebuilds and restores train identically.
        train_mask = base.order < train_rows
        pq = ProductQuantizer(
            residuals.shape[1], self.pq_m, self.pq_bits, seed=self.seed + 1
        ).train(residuals[train_mask])
        codes = pq.encode(residuals)
        reconstruction = base.centroids[base.list_of_position] + pq.decode(codes)
        return _IVFPQStructure(
            **{field: getattr(base, field) for field in _IVFStructure.__dataclass_fields__},
            pq=pq,
            codes=codes,
            recon_norms=np.einsum("ij,ij->i", reconstruction, reconstruction),
        )

    # ------------------------------------------------------------------ #
    # Search: ADC candidate scan, then exact re-rank of the pool
    # ------------------------------------------------------------------ #
    def _search_block(
        self, structure: _IVFPQStructure, block: np.ndarray, block_norms: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        pool = max(k, self.rerank)
        list_order, probe_counts = self._probe_lists(structure, block, block_norms, k)
        dead_grouped = (
            self._dead[: self._count][structure.order] if self._dead_count else None
        )
        # ADC via the inner-product expansion: |q - r|^2 = |q|^2 + |r|^2 -
        # 2 q.r with r = centroid + decode(code).  |r|^2 is precomputed per
        # row, q.centroid is one block GEMM, q.decode(code) is m gathers from
        # one per-block dot table — and the per-query |q|^2 constant is
        # dropped entirely (it cannot change any candidate ordering), so the
        # scan never rebuilds tables per (query, list) pair.
        dot_tables = structure.pq.dot_tables(block)  # (B, m, ks)
        centroid_dots = block @ structure.centroids.T  # (B, nlist)

        def scan_one_list(query_rows, start, stop, best):
            lst = int(structure.list_of_position[start])
            code_dots = structure.pq.gather_sum(
                dot_tables[query_rows], structure.codes[start:stop]
            )
            approx = structure.recon_norms[start:stop][None, :] - 2.0 * (
                centroid_dots[query_rows, lst][:, None] + code_dots
            )
            if dead_grouped is not None:
                dead = np.nonzero(dead_grouped[start:stop])[0]
                if dead.size:
                    approx[:, dead] = np.inf
            positions = np.broadcast_to(
                np.arange(start, stop, dtype=np.int64), approx.shape
            )
            return merge_topk_candidates(best[0], best[1], approx, positions, pool)

        pool_d, pool_rows = self._scan_probed(
            structure, block, block_norms, list_order, probe_counts, pool, scan_one_list
        )
        return self._rerank_pool(structure, block, block_norms, pool_rows, k)

    def _rerank_pool(
        self,
        structure: _IVFPQStructure,
        block: np.ndarray,
        block_norms: np.ndarray,
        pool_rows: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact ``(ids, distances)`` top-k from the ADC candidate pool.

        ``pool_rows`` holds grouped-storage positions (``-1`` placeholders
        where a query's probed lists had fewer than ``pool`` candidates).
        Distances are recomputed exactly from the raw vectors; placeholders
        and tombstones are forced to ``+inf`` with an id beyond any real one,
        so they sort last and can never enter the top-k (probe expansion
        guarantees ``>= k`` alive candidates).
        """
        valid = pool_rows >= 0
        rows = np.where(valid, pool_rows, 0)
        candidates = structure.vectors[rows]  # (Q, P, d)
        exact = (
            block_norms[:, None]
            + structure.norms[rows]
            - np.float32(2.0) * np.einsum("qd,qpd->qp", block, candidates)
        )
        np.maximum(exact, 0.0, out=exact)
        candidate_ids = structure.ids[rows]
        dead_mask = ~valid
        if self._dead_count:
            dead_mask = dead_mask | self._dead[: self._count][structure.order][rows]
        exact[dead_mask] = np.inf
        candidate_ids = np.where(dead_mask, np.iinfo(np.int64).max, candidate_ids)
        order = np.lexsort((candidate_ids, exact), axis=-1)[:, :k]
        return (
            np.take_along_axis(candidate_ids, order, axis=1),
            np.sqrt(np.take_along_axis(exact, order, axis=1)).astype(np.float32),
        )
