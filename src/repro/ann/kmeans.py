"""Deterministic Lloyd k-means for the ANN coarse quantizer and PQ codebooks.

Training an index structure must be a *pure function* of the stored rows
(plus a seed), or snapshot/restore could not be bit-stable: a restored
replica re-trains from the same rows in the same order and must land on the
same centroids.  Everything here is therefore seeded through
``np.random.default_rng`` and free of data-dependent randomness — k-means++
seeding, a fixed iteration cap, deterministic empty-cluster repair.

Distances reuse :func:`repro.serving.index.pairwise_squared_euclidean`, the
same float32 GEMM kernel every exact backend scans with.
"""

from __future__ import annotations

import numpy as np

from repro.serving.index import as_float32_matrix, pairwise_squared_euclidean, squared_norms

#: Default Lloyd iterations; training quality plateaus quickly on the small
#: train subsets ANN indexes use, and a fixed cap keeps rebuilds predictable.
DEFAULT_KMEANS_ITERS = 10

#: Database rows scored per block during assignment (bounds peak memory).
_ASSIGN_CHUNK = 4096


def assign_to_centroids(
    data: np.ndarray, centroids: np.ndarray, *, chunk_size: int = _ASSIGN_CHUNK
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest centroid per row: ``(assignments, squared_distances)``.

    Computed one ``chunk_size`` block of rows at a time so assignment never
    materialises the full ``(N, k)`` distance matrix for large corpora.
    Ties go to the smaller centroid index (``argmin`` semantics).
    """
    data = as_float32_matrix(data, "data")
    centroids = as_float32_matrix(centroids, "centroids")
    centroid_norms = squared_norms(centroids)
    assignments = np.empty(data.shape[0], dtype=np.int64)
    best = np.empty(data.shape[0], dtype=np.float32)
    for start in range(0, data.shape[0], chunk_size):
        stop = min(start + chunk_size, data.shape[0])
        block = data[start:stop]
        distances = pairwise_squared_euclidean(
            block, centroids, database_norms=centroid_norms
        )
        assignments[start:stop] = np.argmin(distances, axis=1)
        best[start:stop] = np.take_along_axis(
            distances, assignments[start:stop, None], axis=1
        )[:, 0]
    return assignments, best


def _plusplus_init(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared-distance weight."""
    count = data.shape[0]
    chosen = np.empty(k, dtype=np.int64)
    chosen[0] = int(rng.integers(count))
    closest = pairwise_squared_euclidean(data, data[chosen[:1]])[:, 0]
    for i in range(1, k):
        total = float(closest.sum())
        if total <= 0.0:
            # All remaining mass sits on already-chosen points (duplicates):
            # fall back to a uniform draw; empty-cluster repair sorts it out.
            chosen[i] = int(rng.integers(count))
        else:
            chosen[i] = int(rng.choice(count, p=closest / total))
        new_d = pairwise_squared_euclidean(data, data[chosen[i : i + 1]])[:, 0]
        np.minimum(closest, new_d, out=closest)
    return data[chosen].copy()


def kmeans(
    data: np.ndarray,
    k: int,
    *,
    iters: int = DEFAULT_KMEANS_ITERS,
    seed: int = 0,
) -> np.ndarray:
    """Train ``k`` float32 centroids on ``data`` with seeded Lloyd iterations.

    ``k`` must satisfy ``1 <= k <= len(data)``.  Empty clusters are repaired
    deterministically by re-seeding them on the rows currently farthest from
    their centroid, so the returned shape is always exactly ``(k, dim)``.
    """
    data = as_float32_matrix(data, "data")
    if not 1 <= k <= data.shape[0]:
        raise ValueError(f"k must be in [1, {data.shape[0]}], got {k}")
    if iters < 1:
        raise ValueError("iters must be >= 1")
    rng = np.random.default_rng(seed)
    centroids = _plusplus_init(data, k, rng)
    previous = None
    for _ in range(iters):
        assignments, distances = assign_to_centroids(data, centroids)
        counts = np.bincount(assignments, minlength=k)
        empty = np.nonzero(counts == 0)[0]
        if empty.size:
            # Deterministic repair: hand each empty cluster the worst-served
            # row whose donor cluster keeps at least one member (stealing
            # from a singleton would just move the hole).  Pigeonhole
            # guarantees a >= 2 donor exists while any cluster is empty.
            worst = np.argsort(distances, kind="stable")[::-1]
            for slot in empty:
                for row in worst:
                    donor = assignments[row]
                    if counts[donor] >= 2:
                        assignments[row] = slot
                        counts[donor] -= 1
                        counts[slot] += 1
                        break
        # float64 accumulator on purpose: summing many float32 rows in
        # float32 loses mass on large clusters; cast back after the divide.
        sums = np.zeros((k, data.shape[1]), dtype=np.float64)  # repro: allow[dtype-float64-cast]
        np.add.at(sums, assignments, data)
        centroids = (sums / counts[:, None]).astype(np.float32)
        if previous is not None and np.array_equal(previous, assignments):
            break
        previous = assignments
    return centroids
