"""repro.ann — approximate-nearest-neighbour index structures.

The exact backends (``"bruteforce"``, ``"chunked"``, ``"sharded"``) scan
every stored row per query, so latency grows linearly with the corpus.  This
package trades a bounded recall loss for order-of-magnitude speedups with the
two classic ANN structures the related literature popularised:

* :class:`~repro.ann.ivf.IVFBackend` (``"ivf"``) — a k-means coarse quantizer
  partitions the corpus into ``nlist`` inverted lists; queries probe only the
  ``nprobe`` nearest lists and every probed candidate is re-ranked with its
  *exact* distance.
* :class:`~repro.ann.ivfpq.IVFPQBackend` (``"ivfpq"``) — IVF plus
  product-quantized residuals: probed lists are scanned with ADC lookup-table
  distances over compact PQ codes, and only the best ``rerank`` candidates per
  query are exactly re-ranked.

Both implement the full :class:`repro.api.backends.IndexBackend` contract
(add / tombstone remove / compact, snapshot via ``segments()``, exact
``ranks_of``) and are registered in the :mod:`repro.api` backend registry —
select them with ``EngineConfig(backend="ivf", backend_params={...})``.

This package sits *below* :mod:`repro.api` in the layer stack: it builds on
the shared serving kernels (:mod:`repro.serving.index`) and the streaming
layer's geometry defaults, never on the facade; registration happens in
:mod:`repro.api.backends`.
"""

from repro.ann.ivf import IVFBackend
from repro.ann.ivfpq import IVFPQBackend
from repro.ann.kmeans import assign_to_centroids, kmeans
from repro.ann.pq import ProductQuantizer

__all__ = [
    "IVFBackend",
    "IVFPQBackend",
    "ProductQuantizer",
    "assign_to_centroids",
    "kmeans",
]
