"""IVF: inverted-file index with a k-means coarse quantizer.

Layout (built lazily, a pure function of the stored rows + params + seed):

* **centroids** — k-means over the first ``min(train_size, N)`` stored rows,
  ``nlist`` clamped to the row count;
* **inverted lists** — every stored row is assigned to its nearest centroid;
  rows are kept *grouped by list* in one contiguous reordered copy (vectors,
  cached norms, global ids, storage rows), so probing a list is one
  contiguous block scan.

Query flow: coarse-score the query block against the centroids (one small
GEMM), pick each query's ``nprobe`` nearest lists (expanded per query until
the probed lists hold at least ``k`` alive rows), then scan only those lists
with the *same* chunked argpartition kernel the exact backends use
(:func:`repro.serving.index.scan_topk_candidates`) — every probed candidate
is re-ranked by its exact distance, so approximation error is purely "the
true neighbour's list was not probed", never a distance estimate.

``nprobe >= nlist`` probes everything; the scan then degenerates to the
bruteforce backend's exact full-matrix path, bit-identically (see
:meth:`repro.ann.base.AnnBackendBase._exact_top_k`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.base import AnnBackendBase
from repro.ann.kmeans import assign_to_centroids, kmeans
from repro.serving.index import (
    DEFAULT_DATABASE_CHUNK,
    DEFAULT_QUERY_CHUNK,
    finalize_topk,
    pairwise_squared_euclidean,
    scan_topk_candidates,
    squared_norms,
)
from repro.streaming.shards import DEFAULT_SHARD_CAPACITY

#: Default number of inverted lists (clamped to the corpus size).
DEFAULT_NLIST = 64
#: Default number of lists probed per query.
DEFAULT_NPROBE = 8
#: Default training-subset size for the coarse quantizer.
DEFAULT_TRAIN_SIZE = 4096


@dataclass
class _IVFStructure:
    """The trained coarse quantizer + list-grouped row storage."""

    centroids: np.ndarray  # (nlist_eff, d)
    centroid_norms: np.ndarray  # (nlist_eff,)
    order: np.ndarray  # storage rows, grouped by list (stable within a list)
    offsets: np.ndarray  # (nlist_eff + 1,) list boundaries in the grouped order
    vectors: np.ndarray  # (N, d) storage vectors permuted by `order`
    norms: np.ndarray  # (N,) cached norms permuted by `order`
    ids: np.ndarray  # (N,) global ids permuted by `order`
    list_of_position: np.ndarray  # (N,) owning list per grouped position

    @property
    def nlist(self) -> int:
        return self.centroids.shape[0]


class IVFBackend(AnnBackendBase):
    """``"ivf"``: coarse k-means partitioning + exact re-ranked probing."""

    name = "ivf"

    def __init__(
        self,
        dim: int | None = None,
        *,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        query_chunk_size: int = DEFAULT_QUERY_CHUNK,
        database_chunk_size: int = DEFAULT_DATABASE_CHUNK,
        nlist: int = DEFAULT_NLIST,
        nprobe: int = DEFAULT_NPROBE,
        train_size: int = DEFAULT_TRAIN_SIZE,
        seed: int = 0,
    ) -> None:
        super().__init__(
            dim,
            shard_capacity=shard_capacity,
            query_chunk_size=query_chunk_size,
            database_chunk_size=database_chunk_size,
        )
        if nlist < 1:
            raise ValueError("nlist must be >= 1")
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if train_size < 1:
            raise ValueError("train_size must be >= 1")
        self.nlist = int(nlist)
        self.nprobe = int(nprobe)
        self.train_size = int(train_size)
        self.seed = int(seed)
        # Centroids are a function of the first min(train_size, N) rows only;
        # cache them across appends so steady-state ingest never re-trains
        # (the prefix of an append-only store is immutable).
        self._centroid_cache: tuple[int, np.ndarray] | None = None

    def _on_compact(self) -> None:
        self._centroid_cache = None  # compaction rewrites the storage prefix

    # ------------------------------------------------------------------ #
    # Training / structure
    # ------------------------------------------------------------------ #
    def _train_centroids(self) -> np.ndarray:
        train_rows = min(self.train_size, self._count)
        nlist_eff = min(self.nlist, train_rows)
        if self._centroid_cache is not None:
            cached_rows, cached = self._centroid_cache
            if cached_rows == train_rows and cached.shape[0] == nlist_eff:
                return cached
        centroids = kmeans(self._vectors[:train_rows], nlist_eff, seed=self.seed)
        self._centroid_cache = (train_rows, centroids)
        return centroids

    def _rebuild_structure(self) -> _IVFStructure:
        centroids = self._train_centroids()
        stored = self._vectors[: self._count]
        assignments, _ = assign_to_centroids(stored, centroids)
        order = np.argsort(assignments, kind="stable")
        counts = np.bincount(assignments, minlength=centroids.shape[0])
        offsets = np.zeros(centroids.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return _IVFStructure(
            centroids=centroids,
            centroid_norms=squared_norms(centroids),
            order=order,
            offsets=offsets,
            vectors=np.ascontiguousarray(stored[order]),
            norms=self._norms[: self._count][order].copy(),
            ids=self._ids[: self._count][order].copy(),
            list_of_position=np.repeat(
                np.arange(centroids.shape[0], dtype=np.int64), counts
            ),
        )

    def _probe_everything(self, structure: _IVFStructure) -> bool:
        return self.nprobe >= structure.nlist

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #
    def _probe_lists(
        self, structure: _IVFStructure, block: np.ndarray, block_norms: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-query probe plan: ``(list_order, probe_counts)``.

        ``list_order[i]`` ranks all lists by coarse distance for query ``i``;
        ``probe_counts[i]`` is how many of them to probe — at least
        ``nprobe``, expanded until the probed lists hold ``>= k`` alive rows
        (the caller guarantees ``k <= len(self)``, so expansion always
        terminates).  Probed lists are always a prefix of ``list_order``,
        which is what makes recall monotone non-decreasing in ``nprobe``.
        """
        coarse = pairwise_squared_euclidean(
            block,
            structure.centroids,
            query_norms=block_norms,
            database_norms=structure.centroid_norms,
        )
        list_order = np.argsort(coarse, axis=1, kind="stable")
        alive_per_list = np.diff(structure.offsets)
        if self._dead_count:
            dead_grouped = self._dead[: self._count][structure.order]
            alive_per_list = alive_per_list - np.bincount(
                structure.list_of_position[dead_grouped], minlength=structure.nlist
            )
        cumulative = np.cumsum(alive_per_list[list_order], axis=1)
        needed = (cumulative < k).sum(axis=1) + 1
        probe_counts = np.minimum(
            np.maximum(needed, min(self.nprobe, structure.nlist)), structure.nlist
        )
        return list_order, probe_counts

    def _scan_probed(
        self,
        structure: _IVFStructure,
        block: np.ndarray,
        block_norms: np.ndarray,
        list_order: np.ndarray,
        probe_counts: np.ndarray,
        width: int,
        scan_one_list,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Iterate probed lists list-major, merging per-query candidates.

        ``scan_one_list(query_rows, start, stop, best)`` scans one contiguous
        list segment for the subset of queries probing it and returns the
        merged ``(distances, candidates)`` arrays of width ``width``
        (candidates are global ids for IVF, grouped positions for IVF-PQ).
        Placeholder ``(+inf, -1)`` seeds can only survive when a query's
        probed candidates number fewer than ``width`` — never inside the
        final top-k (probing is expanded until ``>= k`` alive candidates are
        covered).
        """
        num_queries = block.shape[0]
        best_d = np.full((num_queries, width), np.inf, dtype=np.float32)
        best_i = np.full((num_queries, width), -1, dtype=np.int64)
        probed = np.zeros((num_queries, structure.nlist), dtype=bool)
        position = np.arange(structure.nlist)[None, :] < probe_counts[:, None]
        query_index, rank = np.nonzero(position)
        probed[query_index, list_order[query_index, rank]] = True
        for lst in range(structure.nlist):
            start, stop = int(structure.offsets[lst]), int(structure.offsets[lst + 1])
            if stop == start:
                continue
            query_rows = np.nonzero(probed[:, lst])[0]
            if not query_rows.size:
                continue
            merged_d, merged_i = scan_one_list(query_rows, start, stop, (best_d[query_rows], best_i[query_rows]))
            best_d[query_rows] = merged_d
            best_i[query_rows] = merged_i
        return best_d, best_i

    def _search_block(
        self, structure: _IVFStructure, block: np.ndarray, block_norms: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        list_order, probe_counts = self._probe_lists(structure, block, block_norms, k)
        dead_grouped = (
            self._dead[: self._count][structure.order] if self._dead_count else None
        )

        def scan_one_list(query_rows, start, stop, best):
            return scan_topk_candidates(
                block[query_rows],
                block_norms[query_rows],
                structure.vectors[start:stop],
                structure.norms[start:stop],
                k,
                self.database_chunk_size,
                row_ids=structure.ids[start:stop],
                exclude=dead_grouped[start:stop] if dead_grouped is not None else None,
                best=best,
            )

        best_d, best_i = self._scan_probed(
            structure, block, block_norms, list_order, probe_counts, k, scan_one_list
        )
        return finalize_topk(best_d, best_i)
