"""Downstream-task runners: the glue between models, datasets and metrics.

Each runner fine-tunes (or directly evaluates) one model on one task and
returns the metric dictionary used by the experiment tables.  The runners
only rely on the shared encoder interface, so START and every learned
baseline go through exactly the same code path — as in the paper, the only
difference between rows of Table II is the encoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import StartConfig
from repro.core.finetuning import TravelTimeEstimator, TrajectoryClassifier
from repro.eval.metrics import (
    binary_classification_report,
    multiclass_classification_report,
    regression_report,
)
from repro.eval.similarity import evaluate_representation_search
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.detour import DetourConfig, build_similarity_benchmark
from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng


@dataclass
class TaskSettings:
    """Sizes and knobs of a downstream evaluation round."""

    finetune_epochs: int = 3
    num_queries: int = 20
    num_negatives: int = 60
    detour: DetourConfig | None = None
    classification_k: int = 2  # Recall@k for the multi-class report
    encode_batch_size: int | None = None  # None -> the engine's default
    backend: str = "sharded"  # repro.api index backend for similarity search


def run_travel_time_task(
    model,
    dataset: TrajectoryDataset,
    config: StartConfig,
    settings: TaskSettings | None = None,
    train_trajectories: list[Trajectory] | None = None,
    test_trajectories: list[Trajectory] | None = None,
) -> dict[str, float]:
    """Fine-tune for ETA and report MAE / MAPE / RMSE on the test split."""
    settings = settings or TaskSettings()
    train = train_trajectories if train_trajectories is not None else dataset.train_trajectories()
    test = test_trajectories if test_trajectories is not None else dataset.test_trajectories()
    estimator = TravelTimeEstimator(model, config)
    estimator.fit(train, epochs=settings.finetune_epochs)
    predictions = estimator.predict(test)
    truth = np.array([t.travel_time for t in test], dtype=np.float64)
    return regression_report(truth, predictions)


def run_classification_task(
    model,
    dataset: TrajectoryDataset,
    config: StartConfig,
    label_kind: str,
    num_classes: int,
    settings: TaskSettings | None = None,
    train_trajectories: list[Trajectory] | None = None,
    test_trajectories: list[Trajectory] | None = None,
) -> dict[str, float]:
    """Fine-tune for classification; binary or multi-class report by ``num_classes``."""
    settings = settings or TaskSettings()
    train = train_trajectories if train_trajectories is not None else dataset.train_trajectories()
    test = test_trajectories if test_trajectories is not None else dataset.test_trajectories()
    classifier = TrajectoryClassifier(model, num_classes=num_classes, label_kind=label_kind, config=config)
    classifier.fit(train, epochs=settings.finetune_epochs)
    probabilities = classifier.predict_proba(test)
    predictions = probabilities.argmax(axis=1)
    truth = classifier.labels_of(test)
    if num_classes == 2:
        return binary_classification_report(truth, predictions, probabilities[:, 1])
    return multiclass_classification_report(
        truth, predictions, probabilities, k=settings.classification_k
    )


def run_similarity_task(
    model,
    dataset: TrajectoryDataset,
    settings: TaskSettings | None = None,
    seed: int = 0,
) -> dict[str, float]:
    """Most-similar search without fine-tuning (pre-trained representations only)."""
    settings = settings or TaskSettings()
    benchmark = build_similarity_benchmark(
        dataset.network,
        dataset.test_trajectories(),
        num_queries=settings.num_queries,
        num_negatives=settings.num_negatives,
        config=settings.detour,
        rng=get_rng(seed),
    )
    if not benchmark.queries:
        raise RuntimeError("could not build any similarity queries; dataset too small")
    return evaluate_representation_search(
        model.encode,
        benchmark,
        encode_batch_size=settings.encode_batch_size,
        backend=settings.backend,
    )


def number_of_classes(dataset: TrajectoryDataset, label_kind: str) -> int:
    """How many classes the classification task has on this dataset."""
    if label_kind == "occupied":
        return 2
    if label_kind == "driver":
        return int(max(t.user_id for t in dataset.trajectories)) + 1
    if label_kind == "mode":
        return 4
    raise ValueError(f"unknown label_kind '{label_kind}'")
