"""Similarity-search evaluation harness (most-similar and k-nearest search).

Representation-based models compare trajectories by the Euclidean distance of
their representation vectors (Section IV-D4); classical measures compare raw
coordinate sequences.  Both are evaluated against the detour-based ground
truth produced by :mod:`repro.trajectory.detour`.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.classical import ClassicalSimilarity
from repro.eval.metrics import precision_at_k, ranking_report
from repro.roadnet.network import RoadNetwork
from repro.trajectory.detour import SimilarityBenchmark
from repro.trajectory.types import Trajectory


def euclidean_distance_matrix(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    """``(Q, D)`` pairwise Euclidean distances between representation vectors."""
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float64)
    q_norm = (queries**2).sum(axis=1)[:, None]
    d_norm = (database**2).sum(axis=1)[None, :]
    squared = np.maximum(q_norm + d_norm - 2.0 * queries @ database.T, 0.0)
    return np.sqrt(squared)


def ranks_of_ground_truth(distances: np.ndarray, ground_truth: dict[int, int]) -> np.ndarray:
    """1-based rank of each query's ground-truth database item."""
    ranks = []
    for query_index, truth_index in ground_truth.items():
        order = np.argsort(distances[query_index], kind="stable")
        rank = int(np.where(order == truth_index)[0][0]) + 1
        ranks.append(rank)
    return np.array(ranks, dtype=np.int64)


def most_similar_search_report(distances: np.ndarray, ground_truth: dict[int, int]) -> dict[str, float]:
    """MR / HR@1 / HR@5 for the most-similar-trajectory search task."""
    return ranking_report(ranks_of_ground_truth(distances, ground_truth))


def evaluate_representation_search(
    encode,
    benchmark: SimilarityBenchmark,
) -> dict[str, float]:
    """Evaluate a representation model on the most-similar search task.

    ``encode`` is any callable mapping a list of trajectories to ``(N, d)``
    vectors (``STARTModel.encode`` and every baseline's ``encode`` qualify).
    """
    query_vectors = encode(benchmark.queries)
    database_vectors = encode(benchmark.database)
    distances = euclidean_distance_matrix(query_vectors, database_vectors)
    return most_similar_search_report(distances, benchmark.ground_truth)


def evaluate_classical_search(
    network: RoadNetwork,
    measure: str,
    benchmark: SimilarityBenchmark,
) -> dict[str, float]:
    """Evaluate a classical pairwise measure on the most-similar search task."""
    similarity = ClassicalSimilarity(network, measure)
    distances = np.zeros((len(benchmark.queries), len(benchmark.database)))
    for row, query in enumerate(benchmark.queries):
        distances[row] = similarity.distances_to_database(query, benchmark.database)
    return most_similar_search_report(distances, benchmark.ground_truth)


def top_k_indices(distances: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k smallest distances per row (ties broken stably)."""
    k = min(k, distances.shape[1])
    return np.argsort(distances, axis=1, kind="stable")[:, :k]


def knearest_precision(
    original_distances: np.ndarray,
    detour_distances: np.ndarray,
    k: int = 5,
) -> float:
    """Precision of k-nearest search under detour perturbation.

    The ground truth for each query is its own k-nearest set computed from the
    *original* trajectory; the prediction is the k-nearest set of the
    *detoured* query.  Both distance matrices are ``(Q, D)``.
    """
    relevant = top_k_indices(original_distances, k)
    retrieved = top_k_indices(detour_distances, k)
    return precision_at_k(retrieved, relevant)


def evaluate_representation_knearest(
    encode,
    original_queries: list[Trajectory],
    detoured_queries: list[Trajectory],
    database: list[Trajectory],
    k: int = 5,
) -> float:
    """k-nearest precision for a representation model."""
    database_vectors = encode(database)
    original_distances = euclidean_distance_matrix(encode(original_queries), database_vectors)
    detour_distances = euclidean_distance_matrix(encode(detoured_queries), database_vectors)
    return knearest_precision(original_distances, detour_distances, k=k)
