"""Similarity-search evaluation harness (most-similar and k-nearest search).

Representation-based models compare trajectories by the Euclidean distance of
their representation vectors (Section IV-D4); classical measures compare raw
coordinate sequences.  Both are evaluated against the detour-based ground
truth produced by :mod:`repro.trajectory.detour`.

Representation search runs entirely through the :class:`repro.api.Engine`
facade: the database is bulk-encoded and indexed behind a configurable
backend (``"sharded"`` by default — the production query path, bit-identical
to the monolithic index at the default geometry), and ranks come from the
backend's chunked counting kernel, so evaluation exercises exactly the code
path production queries take.  The matrix-based helpers below are kept for
the classical measures (whose pairwise distances cannot be factored through
an embedding) and for small-scale analysis.
"""

from __future__ import annotations

import numpy as np

from repro.api import Engine, EngineConfig, QueryRequest
from repro.baselines.classical import ClassicalSimilarity
from repro.eval.metrics import precision_at_k, ranking_report
from repro.roadnet.network import RoadNetwork
from repro.serving.index import (
    DEFAULT_DATABASE_CHUNK,
    pairwise_squared_euclidean,
    squared_norms,
)
from repro.trajectory.detour import SimilarityBenchmark
from repro.trajectory.types import Trajectory


def euclidean_distance_matrix(
    queries: np.ndarray,
    database: np.ndarray,
    chunk_size: int = DEFAULT_DATABASE_CHUNK,
) -> np.ndarray:
    """``(Q, D)`` pairwise Euclidean distances between representation vectors.

    Computed one float32 database chunk at a time — the old implementation
    up-cast both sides to float64, which doubled memory bandwidth for inputs
    that are float32 representations to begin with.  Only the ``(Q, D)``
    output is materialised.
    """
    queries = np.ascontiguousarray(np.asarray(queries), dtype=np.float32)
    database = np.ascontiguousarray(np.asarray(database), dtype=np.float32)
    query_norms = squared_norms(queries)
    out = np.empty((queries.shape[0], database.shape[0]), dtype=np.float32)
    for start in range(0, database.shape[0], chunk_size):
        stop = min(start + chunk_size, database.shape[0])
        out[:, start:stop] = pairwise_squared_euclidean(
            queries, database[start:stop], query_norms=query_norms
        )
    np.sqrt(out, out=out)
    return out


def ranks_of_ground_truth(
    distances: np.ndarray,
    ground_truth: dict[int, int],
    threshold: int | None = None,
) -> np.ndarray:
    """1-based rank of each query's ground-truth database item.

    With ``threshold=None`` ranks are exact, computed by counting the items
    that sort strictly before the truth (smaller distance, or equal distance
    and smaller index — the stable-argsort order) in ``O(D)`` per query
    instead of a full ``O(D log D)`` sort.

    With a ``threshold`` the rank is only resolved up to that value: items
    outside the ``argpartition`` top-``threshold`` are reported as
    ``threshold + 1``.  That is sufficient (and much cheaper on large
    databases) when the caller only needs hit ratios at ``k <= threshold``.
    When exact-equal distances straddle the partition boundary the truth may
    land on either side of it, so ranks at exactly ``threshold`` are only
    reliable on distance-distinct data — use the exact path if that matters.
    """
    distances = np.asarray(distances)
    query_rows = np.fromiter(ground_truth.keys(), dtype=np.int64, count=len(ground_truth))
    truth_cols = np.fromiter(ground_truth.values(), dtype=np.int64, count=len(ground_truth))
    rows = distances[query_rows]
    truth_values = rows[np.arange(rows.shape[0]), truth_cols]
    if threshold is None:
        strictly_closer = rows < truth_values[:, None]
        column_index = np.arange(rows.shape[1], dtype=np.int64)
        ties_before = (rows == truth_values[:, None]) & (column_index[None, :] < truth_cols[:, None])
        # The truth column matches neither mask (not < itself, not an earlier tie).
        return (strictly_closer | ties_before).sum(axis=1).astype(np.int64) + 1

    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    threshold = min(threshold, rows.shape[1])
    top = np.argpartition(rows, threshold - 1, axis=1)[:, :threshold]
    top_values = np.take_along_axis(rows, top, axis=1)
    order = np.lexsort((top, top_values), axis=-1)
    top_sorted = np.take_along_axis(top, order, axis=1)
    ranks = np.full(rows.shape[0], threshold + 1, dtype=np.int64)
    hit_row, hit_position = np.nonzero(top_sorted == truth_cols[:, None])
    ranks[hit_row] = hit_position + 1
    return ranks


def most_similar_search_report(distances: np.ndarray, ground_truth: dict[int, int]) -> dict[str, float]:
    """MR / HR@1 / HR@5 for the most-similar-trajectory search task."""
    return ranking_report(ranks_of_ground_truth(distances, ground_truth))


def search_report_on_index(
    index,
    query_vectors: np.ndarray,
    ground_truth: dict[int, int],
) -> dict[str, float]:
    """MR / HR@1 / HR@5 computed through a serving index or engine.

    ``index`` is anything with the ``ranks_of`` contract — a
    :class:`repro.api.Engine`, an index backend, or one of the underlying
    index classes — whose row ids are insertion-order numbers.
    ``ground_truth`` maps row indices of ``query_vectors`` to database rows;
    ranks come from the chunked counting path, so no full distance matrix is
    ever materialised.
    """
    query_rows = np.fromiter(ground_truth.keys(), dtype=np.int64, count=len(ground_truth))
    truth_cols = np.fromiter(ground_truth.values(), dtype=np.int64, count=len(ground_truth))
    ranks = index.ranks_of(np.asarray(query_vectors)[query_rows], truth_cols)
    return ranking_report(ranks)


def evaluate_representation_search(
    encode,
    benchmark: SimilarityBenchmark,
    encode_batch_size: int | None = None,
    *,
    shard_capacity: int | None = None,
    backend: str = "sharded",
    backend_params: dict | None = None,
) -> dict[str, float]:
    """Evaluate a representation model on the most-similar search task.

    ``encode`` is any callable mapping a list of trajectories to ``(N, d)``
    vectors (``STARTModel.encode`` and every baseline's ``encode`` qualify).
    The benchmark database is ingested into a :class:`repro.api.Engine`
    whose index ``backend`` defaults to ``"sharded"`` — the production
    sharded query path, bit-identical to the monolithic index at the default
    geometry.  ``shard_capacity`` overrides the shard size and
    ``backend_params`` passes backend-specific knobs (``nlist``/``nprobe``/…
    for the ANN backends; their MR/HR numbers are unchanged because ranks
    are computed exactly by every backend — use
    :func:`sweep_search_backends` to measure what approximation *does*
    change, top-k recall and query latency).
    """
    config = EngineConfig(
        backend=backend, encode_batch_size=encode_batch_size, backend_params=backend_params
    )
    if shard_capacity is not None:
        config = config.variant(shard_capacity=shard_capacity)
    engine = Engine(encode, config)
    engine.ingest(benchmark.database)
    query_vectors = engine.encode(benchmark.queries)
    return search_report_on_index(engine, query_vectors, benchmark.ground_truth)


def recall_against_exact(exact_ids: np.ndarray, candidate_ids: np.ndarray) -> float:
    """Mean per-query overlap between a backend's top-k ids and the exact ones."""
    if exact_ids.shape != candidate_ids.shape:
        raise ValueError("exact and candidate id arrays must have the same shape")
    if exact_ids.size == 0:
        return 1.0
    hits = [
        len(set(map(int, exact_ids[row])) & set(map(int, candidate_ids[row])))
        for row in range(exact_ids.shape[0])
    ]
    return float(np.mean(hits)) / exact_ids.shape[1]


def sweep_search_backends(
    encode,
    benchmark: SimilarityBenchmark,
    backends: tuple[str, ...] = ("sharded", "ivf", "ivfpq"),
    *,
    k: int = 10,
    backend_params: dict[str, dict] | None = None,
    encode_batch_size: int | None = None,
    timer_repeats: int = 3,
) -> dict[str, dict[str, float]]:
    """Serve one benchmark corpus through several index backends.

    The database and queries are encoded **once** and the same vectors feed
    every backend, so the sweep isolates the index from the model.  Per
    backend the report carries the ranking metrics (MR / HR — exact for
    every backend), ``recall@k`` of its top-k ids against the bruteforce
    reference, and the best-of-``timer_repeats`` query wall time (measured at
    the backend, below the engine's query cache).  ``backend_params`` maps a
    backend name to its knob dict, e.g. ``{"ivf": {"nlist": 128}}``.
    """
    from repro.utils.timer import Timer

    if timer_repeats < 1:
        raise ValueError("timer_repeats must be >= 1")
    params = backend_params or {}
    shared = Engine(encode, EngineConfig(encode_batch_size=encode_batch_size))
    database_vectors = shared.encode(benchmark.database)
    query_vectors = shared.encode(benchmark.queries)
    reference = Engine(encode, EngineConfig(backend="bruteforce"))
    reference.ingest_vectors(database_vectors)
    exact_ids = reference.backend.top_k(query_vectors, k).indices

    sweep: dict[str, dict[str, float]] = {}
    for name in backends:
        engine = Engine(
            encode, EngineConfig(backend=name, backend_params=params.get(name))
        )
        engine.ingest_vectors(database_vectors)
        engine.backend.top_k(query_vectors, k)  # warm-up: lazy (re)builds
        best = float("inf")
        for _ in range(timer_repeats):
            with Timer() as timer:
                result = engine.backend.top_k(query_vectors, k)
            best = min(best, timer.elapsed)
        report = search_report_on_index(engine, query_vectors, benchmark.ground_truth)
        report["recall@k"] = recall_against_exact(exact_ids, result.indices)
        report["query_seconds"] = best
        sweep[name] = report
    return sweep


def evaluate_classical_search(
    network: RoadNetwork,
    measure: str,
    benchmark: SimilarityBenchmark,
) -> dict[str, float]:
    """Evaluate a classical pairwise measure on the most-similar search task."""
    similarity = ClassicalSimilarity(network, measure)
    distances = np.zeros((len(benchmark.queries), len(benchmark.database)))
    for row, query in enumerate(benchmark.queries):
        distances[row] = similarity.distances_to_database(query, benchmark.database)
    return most_similar_search_report(distances, benchmark.ground_truth)


def top_k_indices(distances: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k smallest distances per row (ties broken by index).

    Uses ``argpartition`` plus a sort of only the ``k`` survivors.  When ties
    straddle the k-boundary the selected *set* may differ from a full stable
    argsort (either choice is a correct top-k); within the selection, ordering
    matches the stable order.
    """
    distances = np.asarray(distances)
    k = min(k, distances.shape[1])
    if k == distances.shape[1]:
        top = np.broadcast_to(
            np.arange(distances.shape[1], dtype=np.int64), distances.shape
        )
    else:
        top = np.argpartition(distances, k - 1, axis=1)[:, :k]
    top_values = np.take_along_axis(distances, top, axis=1)
    order = np.lexsort((top, top_values), axis=-1)
    return np.take_along_axis(top, order, axis=1)


def knearest_precision(
    original_distances: np.ndarray,
    detour_distances: np.ndarray,
    k: int = 5,
) -> float:
    """Precision of k-nearest search under detour perturbation.

    The ground truth for each query is its own k-nearest set computed from the
    *original* trajectory; the prediction is the k-nearest set of the
    *detoured* query.  Both distance matrices are ``(Q, D)``.
    """
    relevant = top_k_indices(original_distances, k)
    retrieved = top_k_indices(detour_distances, k)
    return precision_at_k(retrieved, relevant)


def evaluate_representation_knearest(
    encode,
    original_queries: list[Trajectory],
    detoured_queries: list[Trajectory],
    database: list[Trajectory],
    k: int = 5,
    *,
    engine: Engine | None = None,
    relevant_ids: np.ndarray | None = None,
) -> float:
    """k-nearest precision for a representation model (served via the facade).

    Callers evaluating many detour variants against the same database (e.g.
    the Figure 4 runner) can pass a prebuilt ``engine`` (already fed the
    database) and the precomputed ``relevant_ids`` of the original queries
    to skip re-encoding and re-indexing them.
    """
    if engine is None:
        engine = Engine(encode)
        engine.ingest(database)
    if relevant_ids is None:
        relevant_ids = engine.query(QueryRequest(queries=original_queries, k=k)).ids
    retrieved = engine.query(QueryRequest(queries=detoured_queries, k=k)).ids
    return precision_at_k(retrieved, relevant_ids)
