"""Evaluation metrics for the three downstream tasks (Section IV-C3).

* Travel time estimation: MAE, MAPE, RMSE.
* Trajectory classification: Accuracy, F1, AUC (binary) and Micro-F1,
  Macro-F1, Recall@k (multi-class).
* Similarity search: Mean Rank, Hit Ratio@k and Precision@k.
"""

from __future__ import annotations

import numpy as np


# --------------------------------------------------------------------------- #
# Regression metrics
# --------------------------------------------------------------------------- #
def mean_absolute_error(truth: np.ndarray, predictions: np.ndarray) -> float:
    truth, predictions = _check_same_shape(truth, predictions)
    return float(np.abs(truth - predictions).mean())


def mean_absolute_percentage_error(truth: np.ndarray, predictions: np.ndarray, eps: float = 1e-6) -> float:
    """MAPE in percent, guarding against zero ground-truth values."""
    truth, predictions = _check_same_shape(truth, predictions)
    denominator = np.maximum(np.abs(truth), eps)
    return float((np.abs(truth - predictions) / denominator).mean() * 100.0)


def root_mean_squared_error(truth: np.ndarray, predictions: np.ndarray) -> float:
    truth, predictions = _check_same_shape(truth, predictions)
    return float(np.sqrt(((truth - predictions) ** 2).mean()))


def regression_report(truth: np.ndarray, predictions: np.ndarray) -> dict[str, float]:
    """MAE / MAPE / RMSE in one dictionary (the Table II row layout)."""
    return {
        "MAE": mean_absolute_error(truth, predictions),
        "MAPE": mean_absolute_percentage_error(truth, predictions),
        "RMSE": root_mean_squared_error(truth, predictions),
    }


# --------------------------------------------------------------------------- #
# Classification metrics
# --------------------------------------------------------------------------- #
def accuracy(truth: np.ndarray, predictions: np.ndarray) -> float:
    truth, predictions = _check_same_shape(truth, predictions)
    if truth.size == 0:
        return 0.0
    return float((truth == predictions).mean())


def _binary_prf(truth: np.ndarray, predictions: np.ndarray, positive: int = 1) -> tuple[float, float, float]:
    tp = float(np.sum((predictions == positive) & (truth == positive)))
    fp = float(np.sum((predictions == positive) & (truth != positive)))
    fn = float(np.sum((predictions != positive) & (truth == positive)))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return precision, recall, f1


def f1_score(truth: np.ndarray, predictions: np.ndarray, positive: int = 1) -> float:
    """Binary F1 for the positive class."""
    truth, predictions = _check_same_shape(truth, predictions)
    return _binary_prf(truth, predictions, positive)[2]


def roc_auc(truth: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (binary labels)."""
    truth = np.asarray(truth)
    scores = np.asarray(scores, dtype=np.float64)
    positives = scores[truth == 1]
    negatives = scores[truth == 0]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    order = np.argsort(np.concatenate([negatives, positives]), kind="mergesort")
    ranks = np.empty(len(order), dtype=np.float64)
    ranks[order] = np.arange(1, len(order) + 1)
    # Average ranks over ties.
    merged = np.concatenate([negatives, positives])
    sorted_scores = merged[order]
    unique, inverse, counts = np.unique(sorted_scores, return_inverse=True, return_counts=True)
    cumulative = np.cumsum(counts)
    average_rank_of_value = cumulative - (counts - 1) / 2.0
    ranks[order] = average_rank_of_value[inverse]
    positive_ranks = ranks[len(negatives):]
    auc = (positive_ranks.sum() - len(positives) * (len(positives) + 1) / 2.0) / (
        len(positives) * len(negatives)
    )
    return float(auc)


def micro_f1(truth: np.ndarray, predictions: np.ndarray) -> float:
    """Micro-averaged F1 (equals accuracy for single-label classification)."""
    return accuracy(truth, predictions)


def macro_f1(truth: np.ndarray, predictions: np.ndarray, num_classes: int | None = None) -> float:
    """Macro-averaged F1 over all classes present in the ground truth."""
    truth, predictions = _check_same_shape(truth, predictions)
    classes = range(num_classes) if num_classes is not None else np.unique(truth)
    scores = [
        _binary_prf((truth == c).astype(int), (predictions == c).astype(int))[2] for c in classes
    ]
    return float(np.mean(scores)) if scores else 0.0


def recall_at_k(truth: np.ndarray, probabilities: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true class is in the top-k predicted classes."""
    truth = np.asarray(truth)
    probabilities = np.asarray(probabilities)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be (N, num_classes)")
    k = min(k, probabilities.shape[1])
    top_k = np.argsort(-probabilities, axis=1)[:, :k]
    hits = [truth[i] in top_k[i] for i in range(len(truth))]
    return float(np.mean(hits)) if hits else 0.0


def binary_classification_report(
    truth: np.ndarray, predictions: np.ndarray, scores: np.ndarray
) -> dict[str, float]:
    """ACC / F1 / AUC (the binary-classification columns of Table II)."""
    return {
        "ACC": accuracy(truth, predictions),
        "F1": f1_score(truth, predictions),
        "AUC": roc_auc(truth, scores),
    }


def multiclass_classification_report(
    truth: np.ndarray, predictions: np.ndarray, probabilities: np.ndarray, k: int = 5
) -> dict[str, float]:
    """Micro-F1 / Macro-F1 / Recall@k (the multi-class columns of Table II)."""
    return {
        "Micro-F1": micro_f1(truth, predictions),
        "Macro-F1": macro_f1(truth, predictions),
        f"Recall@{k}": recall_at_k(truth, probabilities, k=k),
    }


# --------------------------------------------------------------------------- #
# Ranking / retrieval metrics
# --------------------------------------------------------------------------- #
def mean_rank(ranks: np.ndarray) -> float:
    """Average 1-based rank of the ground-truth item."""
    ranks = np.asarray(ranks, dtype=np.float64)
    return float(ranks.mean()) if ranks.size else 0.0


def hit_ratio(ranks: np.ndarray, k: int) -> float:
    """Fraction of queries whose ground truth appears in the top-k."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return 0.0
    return float((ranks <= k).mean())


def ranking_report(ranks: np.ndarray) -> dict[str, float]:
    """MR / HR@1 / HR@5 (the similarity-search columns of Table II)."""
    return {
        "MR": mean_rank(ranks),
        "HR@1": hit_ratio(ranks, 1),
        "HR@5": hit_ratio(ranks, 5),
    }


def precision_at_k(retrieved: np.ndarray, relevant: np.ndarray) -> float:
    """Overlap between retrieved and relevant top-k sets, averaged over queries.

    Both arrays are ``(num_queries, k)`` index matrices.
    """
    retrieved = np.asarray(retrieved)
    relevant = np.asarray(relevant)
    if retrieved.shape != relevant.shape:
        raise ValueError("retrieved and relevant must have the same shape")
    if retrieved.size == 0:
        return 0.0
    scores = [
        len(set(retrieved[i]) & set(relevant[i])) / retrieved.shape[1]
        for i in range(retrieved.shape[0])
    ]
    return float(np.mean(scores))


def _check_same_shape(a, b) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b
