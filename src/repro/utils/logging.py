"""Logging configuration shared by trainers and experiment runners."""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger.

    Handlers are attached only once per logger name so repeated calls from
    notebooks or test runs do not duplicate output lines.
    """
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(level)
    return logger
