"""A tiny wall-clock timer used by the efficiency experiments (Figure 10)."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start

    def restart(self) -> None:
        """Reset the start time without clearing the last elapsed value."""
        self.start = time.perf_counter()

    def lap(self) -> float:
        """Return seconds since the last start/restart."""
        return time.perf_counter() - self.start
