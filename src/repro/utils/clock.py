"""Injectable time: the clock abstraction behind the serving runtime.

Concurrency code that sleeps is concurrency code that cannot be tested
deterministically — a timeout-flushed batch aggregator driven by
``time.monotonic()`` forces its tests to race real wall-clock timers and
turn flaky under load.  Everything in :mod:`repro.server` therefore takes a
*clock object* instead of calling :mod:`time` directly:

* :class:`SystemClock` is the production implementation —
  ``time.monotonic()`` plus plain :class:`threading.Event` waits;
* :class:`VirtualClock` is the test implementation — time only moves when
  the test calls :meth:`VirtualClock.advance`, and every waiter wakes
  exactly when virtual time crosses its deadline (or its event is set),
  with **no real sleeping anywhere**.

The one subtlety is waking waiters: a waiter blocked on a plain
:class:`threading.Event` cannot be woken by ``advance()``.  Clocks
therefore mint their own event objects (:meth:`Clock.make_event`) — the
system clock hands out real events, the virtual clock hands out condition
backed events that share the clock's internal lock, so ``set()`` and
``advance()`` both wake the same waiters.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class EventLike(Protocol):
    """The subset of :class:`threading.Event` the serving runtime uses."""

    def set(self) -> None: ...

    def clear(self) -> None: ...

    def is_set(self) -> bool: ...


@runtime_checkable
class Clock(Protocol):
    """Monotonic time plus interruptible waiting.

    ``wait(event, timeout)`` blocks until ``event`` is set or ``timeout``
    (clock) seconds elapse, returning ``event.is_set()`` — exactly the
    :meth:`threading.Event.wait` contract, but routed through the clock so a
    virtual implementation can satisfy it without real sleeping.  ``event``
    must have been minted by this clock's :meth:`make_event`.
    """

    def monotonic(self) -> float: ...

    def make_event(self) -> EventLike: ...

    def wait(self, event: EventLike, timeout: float | None = None) -> bool: ...


class SystemClock:
    """Real wall-clock time (the production default)."""

    def monotonic(self) -> float:
        return time.monotonic()

    def make_event(self) -> threading.Event:
        return threading.Event()

    def wait(self, event: threading.Event, timeout: float | None = None) -> bool:
        return event.wait(timeout)


class _ConditionEvent:
    """An event whose waiters are woken through a shared condition.

    Minted by :meth:`VirtualClock.make_event`; sharing the clock's condition
    means :meth:`VirtualClock.advance` and :meth:`set` wake the same waiters.
    """

    def __init__(self, condition: threading.Condition) -> None:
        self._condition = condition
        self._flag = False

    def set(self) -> None:
        with self._condition:
            self._flag = True
            self._condition.notify_all()

    def clear(self) -> None:
        with self._condition:
            self._flag = False

    def is_set(self) -> bool:
        with self._condition:
            return self._flag


class VirtualClock:
    """A clock that only moves when the test moves it.

    ``wait`` blocks the calling thread on a condition variable until either
    its event is set (by any thread) or :meth:`advance` pushes virtual time
    past the waiter's deadline.  No call ever sleeps on real time, so tests
    built on this clock are exactly as fast and as deterministic as their
    own ``advance`` schedule.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._condition = threading.Condition()
        self._now = float(start)
        self._waiters = 0

    def monotonic(self) -> float:
        with self._condition:
            return self._now

    def make_event(self) -> _ConditionEvent:
        return _ConditionEvent(self._condition)

    @property
    def waiters(self) -> int:
        """Threads currently blocked in :meth:`wait` (test synchronisation aid)."""
        with self._condition:
            return self._waiters

    def wait_for_waiters(self, count: int, timeout: float = 5.0) -> int:
        """Block until at least ``count`` threads are parked inside :meth:`wait`.

        The deterministic rendezvous of the test-kit: advance virtual time
        only once the thread under test is provably waiting on it, so the
        advance can never race the thread into missing its own deadline.
        ``timeout`` is *real* seconds and only bounds a failing test.
        """
        deadline = time.monotonic() + timeout
        with self._condition:
            while self._waiters < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{count} clock waiter(s) did not arrive within {timeout}s "
                        f"(currently {self._waiters})"
                    )
                self._condition.wait(remaining)
            return self._waiters

    def advance(self, seconds: float) -> float:
        """Move virtual time forward and wake every waiter; returns the new now."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        with self._condition:
            self._now += float(seconds)
            self._condition.notify_all()
            return self._now

    def wait(self, event: _ConditionEvent, timeout: float | None = None) -> bool:
        if not isinstance(event, _ConditionEvent) or event._condition is not self._condition:
            raise ValueError("event was not created by this VirtualClock's make_event()")
        with self._condition:
            deadline = None if timeout is None else self._now + float(timeout)
            self._waiters += 1
            self._condition.notify_all()  # unblock wait_for_waiters rendezvous
            try:
                while not event._flag and (deadline is None or self._now < deadline):
                    self._condition.wait()
            finally:
                self._waiters -= 1
            return event._flag
