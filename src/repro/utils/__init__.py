"""Small shared utilities: seeding, timing, clocks and lightweight logging."""

from repro.utils.clock import Clock, SystemClock, VirtualClock
from repro.utils.seeding import get_rng, seed_everything
from repro.utils.timer import Timer
from repro.utils.logging import get_logger

__all__ = [
    "seed_everything",
    "get_rng",
    "Timer",
    "get_logger",
    "Clock",
    "SystemClock",
    "VirtualClock",
]
