"""Deterministic seeding helpers.

Every stochastic component in the library (weight initialisation, dropout,
data generation, augmentation) draws randomness from a ``numpy.random.Generator``
so that experiments are reproducible end to end.
"""

from __future__ import annotations

import random

import numpy as np

_GLOBAL_SEED = 0


def seed_everything(seed: int) -> None:
    """Seed Python's ``random`` module and the legacy NumPy global RNG.

    The library itself prefers explicit :class:`numpy.random.Generator`
    objects (see :func:`get_rng`), but third-party helpers and quick scripts
    sometimes rely on the global state, so both are seeded.
    """
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))


def get_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    If ``seed`` is ``None``, the generator is derived from the last seed given
    to :func:`seed_everything` so that repeated calls in one process stay
    deterministic but independent.
    """
    if seed is None:
        seed = _GLOBAL_SEED
    return np.random.default_rng(seed)
