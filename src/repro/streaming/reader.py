"""Streaming trajectory ingestion: tail reader + length-bucketed batching.

The batch pipeline materialises a whole ``trajectories.jsonl`` before
encoding; under the ROADMAP's heavy-traffic goal trajectories *arrive
continuously*, so ingestion needs two different primitives:

* :class:`TrajectoryStreamReader` tails a JSONL file incrementally: it
  remembers its byte offset, consumes only complete (newline-terminated)
  lines, and picks up records appended since the last :meth:`poll` — a
  producer can keep writing while a consumer keeps reading, with no full
  materialisation on either side.
* :class:`MicroBatcher` groups arriving trajectories into encode batches by
  *length bucket*.  Padding work in the transformer is quadratic in the
  padded length, so batching a 5-road trip with a 100-road trip wastes ~400x
  on the short trip; the batch path solves this with a global length sort,
  which a stream cannot do — bucketing is the online approximation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.trajectory.io import parse_trajectory_record
from repro.trajectory.types import Trajectory

#: Default number of trajectories per encode batch.
DEFAULT_MICROBATCH_SIZE = 64
#: Default width (in roads) of one length bucket.
DEFAULT_BUCKET_WIDTH = 16

#: Sentinel: nothing further is readable (EOF or a partial trailing line).
_EXHAUSTED = object()


class TrajectoryStreamReader:
    """Incremental reader over a ``trajectories.jsonl`` file.

    The reader never loads the file wholesale: every :meth:`poll` seeks to
    the remembered byte offset, decodes the complete lines appended since,
    and leaves a trailing partial line (a producer mid-write) for the next
    poll.  Blank lines are skipped; corrupt records raise a
    :class:`ValueError` naming the file and line number.

    The file may not exist yet when the reader is constructed — a consumer
    can start before its producer; polls simply return nothing until the
    first record lands.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offset = 0
        self._line_number = 0
        self._records_read = 0

    @property
    def offset(self) -> int:
        """Byte offset of the next unread record (consumed lines only)."""
        return self._offset

    @property
    def records_read(self) -> int:
        """Number of non-blank records decoded so far."""
        return self._records_read

    @property
    def line_number(self) -> int:
        """Number of complete lines consumed so far (blank lines included)."""
        return self._line_number

    @property
    def state(self) -> dict[str, int]:
        """The resumable read position, as checkpointed by the serving runtime.

        ``offset`` is the byte the next poll seeks to; ``line_number`` and
        ``records_read`` restore the reader's error-message numbering and
        counters.  Feed the dict back through :meth:`seek` (possibly in a
        different process) and polling continues exactly where it left off.
        """
        return {
            "offset": self._offset,
            "line_number": self._line_number,
            "records_read": self._records_read,
        }

    def seek(self, offset: int, *, line_number: int = 0, records_read: int = 0) -> None:
        """Reposition the reader (crash-restart resumption from a checkpoint).

        ``offset`` must be a byte position previously reported by
        :attr:`offset`/:attr:`state` — i.e. a record boundary; seeking into
        the middle of a line would desynchronise the JSONL framing.  The
        caller owns that guarantee (checkpoints only ever record boundary
        offsets).
        """
        if offset < 0 or line_number < 0 or records_read < 0:
            raise ValueError("reader state fields must be non-negative")
        self._offset = int(offset)
        self._line_number = int(line_number)
        self._records_read = int(records_read)

    def poll(self, max_records: int | None = None) -> list[Trajectory]:
        """Decode records appended since the last poll (at most ``max_records``).

        Returns an empty list when nothing new (or only a partial line) has
        been written, or when the file does not exist yet.
        """
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1 when given")
        out: list[Trajectory] = []
        if not self.path.exists():
            return out
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            while max_records is None or len(out) < max_records:
                trajectory = self._next_record(handle)
                if trajectory is _EXHAUSTED:
                    break
                if trajectory is not None:
                    out.append(trajectory)
        return out

    def _next_record(self, handle) -> "Trajectory | None":
        """Consume one complete line from ``handle`` (positioned at offset).

        Returns the decoded trajectory, ``None`` for a blank line, or the
        ``_EXHAUSTED`` sentinel when only a partial trailing line (a producer
        mid-write) or EOF remains — the offset then stays before it so the
        next poll re-reads it whole.  State advances only after a successful
        parse: a corrupt record raises with the reader still positioned
        before it, so re-polling reports the same line deterministically.
        """
        line = handle.readline()
        if not line.endswith(b"\n"):
            return _EXHAUSTED
        line_number = self._line_number + 1
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValueError(
                f"corrupt JSONL trajectory record at {self.path}, "
                f"line {line_number}: {exc}"
            ) from None
        trajectory = parse_trajectory_record(
            text, source=str(self.path), line_number=line_number
        )
        self._line_number = line_number
        self._offset = handle.tell()
        if trajectory is not None:
            self._records_read += 1
        return trajectory

    def __iter__(self) -> Iterator[Trajectory]:
        """Stream every record currently readable, one at a time.

        One file handle serves the whole iteration (unlike per-record
        polling); the offset/partial-line semantics match :meth:`poll`.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            while True:
                trajectory = self._next_record(handle)
                if trajectory is _EXHAUSTED:
                    return
                if trajectory is not None:
                    yield trajectory


class MicroBatcher:
    """Group arriving trajectories into length-bucketed encode batches.

    Trajectories land in the bucket ``len(t) // bucket_width``; when a bucket
    reaches ``batch_size`` it is emitted as one encode batch.  :meth:`flush`
    drains the partial buckets (shortest lengths first) so every accepted
    trajectory is eventually emitted exactly once.
    """

    def __init__(
        self,
        batch_size: int = DEFAULT_MICROBATCH_SIZE,
        bucket_width: int = DEFAULT_BUCKET_WIDTH,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        self.batch_size = int(batch_size)
        self.bucket_width = int(bucket_width)
        self._buckets: dict[int, list[Trajectory]] = {}
        self._pending = 0

    @property
    def pending(self) -> int:
        """Trajectories accepted but not yet emitted in a batch."""
        return self._pending

    def add(self, trajectory: Trajectory) -> list[Trajectory] | None:
        """Accept one trajectory; returns a full batch if one just filled."""
        key = len(trajectory) // self.bucket_width
        bucket = self._buckets.setdefault(key, [])
        bucket.append(trajectory)
        self._pending += 1
        if len(bucket) >= self.batch_size:
            del self._buckets[key]
            self._pending -= len(bucket)
            return bucket
        return None

    def add_many(self, trajectories: Iterable[Trajectory]) -> Iterator[list[Trajectory]]:
        """Accept many trajectories, yielding each batch as it fills."""
        for trajectory in trajectories:
            batch = self.add(trajectory)
            if batch is not None:
                yield batch

    def flush(self) -> list[list[Trajectory]]:
        """Emit all partially-filled buckets (shortest lengths first)."""
        batches = [self._buckets[key] for key in sorted(self._buckets)]
        self._buckets = {}
        self._pending = 0
        return batches
