"""Sharded, incrementally-updatable similarity serving.

:class:`SimilarityIndex` (PR 1) freezes its database at construction — the
right trade for a batch evaluation, the wrong one for a service whose corpus
grows continuously.  This module decomposes the database into append-only
:class:`IndexShard` segments behind one :class:`ShardedIndex` router:

* **appends** go to the newest shard until it reaches capacity, then a fresh
  shard opens — existing shards (and their cached norms) are never touched,
  so ingesting new trajectories never re-encodes or re-indexes old ones;
* **removals** are tombstones: the row stays in storage but its distance is
  forced to ``+inf`` during scans, so deletes are O(1) and never reshuffle
  surviving ids;
* **compaction** rewrites the shard list without tombstoned rows, reclaiming
  their memory once enough garbage accumulates;
* **queries** fan out: each shard runs the *same* chunked
  ``argpartition`` kernel as the monolithic index
  (:func:`repro.serving.index.scan_topk_candidates`) over its own segment,
  and the per-shard top-k candidate lists are k-way merged by
  ``(distance, id)``.

**Bit-identity.**  When ``shard_capacity`` is a multiple of
``database_chunk_size`` (true for the defaults, 8192 and 4096), shard
boundaries land on the monolithic index's chunk grid: every GEMM the sharded
scan issues sees a bitwise-identical input block to one the monolithic scan
issues, so the merged ids *and* distances are **bit-identical** to
:meth:`SimilarityIndex.topk` over the same rows in the same order — sharding
changes layout, not answers.  Misaligned capacities change GEMM block
shapes, and BLAS reduction order is not shape-invariant, so distances may
then drift by one float32 ulp (the top-k is still exact for the arithmetic
performed; ids still agree on data without near-ulp ties).  The remaining
universal caveat: when exact-equal distances straddle the k boundary either
tie member is a correct answer and two layouts may keep different ones —
real float32 representations essentially never tie.

Row ids are global and stable: by default they number rows in insertion
order, so a ``ShardedIndex`` filled in database order reports the same ids a
:class:`SimilarityIndex` would report as row indices.
"""

from __future__ import annotations

import numpy as np

from repro.serving.index import (
    DEFAULT_DATABASE_CHUNK,
    DEFAULT_QUERY_CHUNK,
    SearchResult,
    as_float32_matrix,
    finalize_topk,
    merge_topk_candidates,
    scan_count_before,
    scan_topk_candidates,
    squared_norms,
)

#: Default number of rows one shard holds before a new shard opens.
DEFAULT_SHARD_CAPACITY = 8192
#: Initial allocation of a shard's growable buffer.
_INITIAL_SHARD_ALLOCATION = 256


class IndexShard:
    """One append-only segment of a :class:`ShardedIndex`.

    The shard owns a growable (doubling) float32 buffer of vectors, their
    cached squared norms, their global row ids and a tombstone mask.  It is
    append-only in the segment sense: rows are only ever added at the end
    (until ``capacity``) or tombstoned — never updated or reordered.
    """

    def __init__(self, dim: int, capacity: int, *, database_chunk_size: int = DEFAULT_DATABASE_CHUNK) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = int(dim)
        self.capacity = int(capacity)
        self.database_chunk_size = int(database_chunk_size)
        allocation = min(self.capacity, _INITIAL_SHARD_ALLOCATION)
        self._vectors = np.empty((allocation, self.dim), dtype=np.float32)
        self._norms = np.empty(allocation, dtype=np.float32)
        self._ids = np.empty(allocation, dtype=np.int64)
        self._dead = np.zeros(allocation, dtype=bool)
        self._count = 0
        self._dead_count = 0
        self._rows_by_id: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Stored rows, tombstoned included."""
        return self._count

    @property
    def alive_count(self) -> int:
        return self._count - self._dead_count

    @property
    def dead_count(self) -> int:
        return self._dead_count

    @property
    def is_full(self) -> bool:
        return self._count >= self.capacity

    @property
    def remaining(self) -> int:
        return self.capacity - self._count

    @property
    def vectors(self) -> np.ndarray:
        """The stored ``(len(self), dim)`` vectors (tombstoned rows included)."""
        return self._vectors[: self._count]

    @property
    def ids(self) -> np.ndarray:
        """Global row ids of the stored rows."""
        return self._ids[: self._count]

    @property
    def dead(self) -> np.ndarray:
        """Tombstone mask over the stored rows."""
        return self._dead[: self._count]

    def __contains__(self, row_id: int) -> bool:
        """Whether ``row_id`` is stored here and alive."""
        return int(row_id) in self._rows_by_id

    def row_of(self, row_id: int) -> int:
        """Local row index of an alive global id (KeyError when absent/dead)."""
        return self._rows_by_id[int(row_id)]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _grow_to(self, needed: int) -> None:
        allocated = self._vectors.shape[0]
        if needed <= allocated:
            return
        new_size = allocated
        while new_size < needed:
            new_size *= 2
        new_size = min(new_size, self.capacity)
        for name in ("_vectors", "_norms", "_ids", "_dead"):
            old = getattr(self, name)
            shape = (new_size,) + old.shape[1:]
            fresh = np.zeros(shape, dtype=old.dtype) if name == "_dead" else np.empty(shape, dtype=old.dtype)
            fresh[: self._count] = old[: self._count]
            setattr(self, name, fresh)

    def append(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        """Append rows (must fit: callers split across shards via ``remaining``)."""
        vectors = as_float32_matrix(vectors)
        if vectors.shape[1] != self.dim:
            raise ValueError(f"vector dimension {vectors.shape[1]} != shard dimension {self.dim}")
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape != (vectors.shape[0],):
            raise ValueError("ids must have exactly one entry per vector row")
        count = vectors.shape[0]
        if count > self.remaining:
            raise ValueError(f"appending {count} rows overflows shard capacity {self.capacity}")
        self._grow_to(self._count + count)
        start = self._count
        stop = start + count
        self._vectors[start:stop] = vectors
        # Norms use the same row-wise einsum as the monolithic index, so a
        # row's cached norm is bit-identical however it arrived.
        self._norms[start:stop] = squared_norms(vectors)
        self._ids[start:stop] = ids
        self._dead[start:stop] = False
        for row in range(start, stop):
            self._rows_by_id[int(self._ids[row])] = row
        self._count = stop

    def remove(self, row_id: int) -> bool:
        """Tombstone one row by global id; returns whether it was alive here."""
        row = self._rows_by_id.pop(int(row_id), None)
        if row is None:
            return False
        self._dead[row] = True
        self._dead_count += 1
        return True

    # ------------------------------------------------------------------ #
    # Queries (the PR 1 chunked kernel over this segment)
    # ------------------------------------------------------------------ #
    def scan_topk(
        self,
        block: np.ndarray,
        block_norms: np.ndarray,
        k: int,
        best: tuple[np.ndarray | None, np.ndarray | None] = (None, None),
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Merge this shard's rows into a running top-k candidate set."""
        if self._count == 0:
            return best
        return scan_topk_candidates(
            block,
            block_norms,
            self.vectors,
            self._norms[: self._count],
            k,
            self.database_chunk_size,
            row_ids=self.ids,
            exclude=self.dead if self._dead_count else None,
            best=best,
        )

    def count_before(
        self,
        block: np.ndarray,
        block_norms: np.ndarray,
        truth_d: np.ndarray,
        truth_ids: np.ndarray,
    ) -> np.ndarray:
        """Rows of this shard sorting strictly before each query's truth item."""
        if self._count == 0:
            return np.zeros(block.shape[0], dtype=np.int64)
        return scan_count_before(
            block,
            block_norms,
            self.vectors,
            self._norms[: self._count],
            truth_d,
            truth_ids,
            self.database_chunk_size,
            row_ids=self.ids,
            exclude=self.dead if self._dead_count else None,
        )

    def gather(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Stored vectors and cached norms at local ``rows``."""
        return self._vectors[rows], self._norms[rows]


class ShardedIndex:
    """A router over append-only :class:`IndexShard` segments.

    Supports ``add`` / ``remove`` / ``compact`` mutations and the same query
    surface as :class:`SimilarityIndex` (``top_k`` / ``most_similar`` /
    ``ranks_of``), with query-time fan-out across shards and a k-way merge of
    per-shard candidates by ``(distance, id)``.

    ``generation`` increments on every mutation; caches keyed on it (the
    ingest service's LRU) invalidate automatically.
    """

    def __init__(
        self,
        dim: int | None = None,
        *,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        query_chunk_size: int = DEFAULT_QUERY_CHUNK,
        database_chunk_size: int = DEFAULT_DATABASE_CHUNK,
    ) -> None:
        if shard_capacity < 1:
            raise ValueError("shard_capacity must be >= 1")
        if query_chunk_size < 1 or database_chunk_size < 1:
            raise ValueError("chunk sizes must be positive")
        self._dim = int(dim) if dim is not None else None
        self.shard_capacity = int(shard_capacity)
        self.query_chunk_size = int(query_chunk_size)
        self.database_chunk_size = int(database_chunk_size)
        self._shards: list[IndexShard] = []
        self._shard_by_id: dict[int, IndexShard] = {}
        #: Ids of tombstoned rows still stored in some shard: re-adding one
        #: would store two rows under the same id (and make snapshots
        #: unrestorable), so `add` rejects them until `compact`.
        self._dead_ids: set[int] = set()
        self._next_id = 0
        self.generation = 0

    @classmethod
    def from_vectors(cls, vectors: np.ndarray, ids: np.ndarray | None = None, **kwargs) -> "ShardedIndex":
        """Build an index holding ``vectors`` (ids default to row numbers)."""
        vectors = as_float32_matrix(vectors)
        index = cls(dim=vectors.shape[1], **kwargs)
        if vectors.shape[0]:
            index.add(vectors, ids=ids)
        return index

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Alive (queryable) rows across all shards."""
        return sum(shard.alive_count for shard in self._shards)

    @property
    def dim(self) -> int | None:
        """Representation dimensionality (``None`` until the first add)."""
        return self._dim

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[IndexShard, ...]:
        return tuple(self._shards)

    @property
    def next_id(self) -> int:
        """The id the next auto-assigned row will receive."""
        return self._next_id

    @next_id.setter
    def next_id(self, value: int) -> None:
        if int(value) < self._next_id:
            raise ValueError("next_id may only move forward")
        self._next_id = int(value)

    @property
    def tombstone_count(self) -> int:
        """Stored-but-dead rows awaiting :meth:`compact`."""
        return sum(shard.dead_count for shard in self._shards)

    def __contains__(self, row_id: int) -> bool:
        return int(row_id) in self._shard_by_id

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = as_float32_matrix(queries, "queries")
        if self._dim is not None and queries.shape[1] != self._dim:
            raise ValueError(
                f"query dimension {queries.shape[1]} does not match index dimension {self._dim}"
            )
        return queries

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Append rows, returning their global ids.

        Ids are assigned sequentially in insertion order unless given
        explicitly (snapshot restore); explicit ids must be fresh.  Rows
        stream into the newest shard until it fills, then further shards
        open — sealed shards are never touched.
        """
        vectors = as_float32_matrix(vectors)
        if self._dim is None:
            self._dim = vectors.shape[1]
        elif vectors.shape[1] != self._dim:
            raise ValueError(f"vector dimension {vectors.shape[1]} != index dimension {self._dim}")
        count = vectors.shape[0]
        if ids is None:
            ids = np.arange(self._next_id, self._next_id + count, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (count,):
                raise ValueError("ids must have exactly one entry per vector row")
            if len(np.unique(ids)) != count:
                raise ValueError("ids must be unique")
            for row_id in ids:
                if int(row_id) in self._shard_by_id:
                    raise ValueError(f"row id {int(row_id)} already present")
                if int(row_id) in self._dead_ids:
                    raise ValueError(
                        f"row id {int(row_id)} is tombstoned but still stored; "
                        "compact() before reusing it"
                    )
        if count == 0:
            return ids
        written = 0
        while written < count:
            if not self._shards or self._shards[-1].is_full:
                self._shards.append(
                    IndexShard(
                        self._dim,
                        self.shard_capacity,
                        database_chunk_size=self.database_chunk_size,
                    )
                )
            shard = self._shards[-1]
            take = min(shard.remaining, count - written)
            piece = ids[written : written + take]
            shard.append(vectors[written : written + take], piece)
            for row_id in piece:
                self._shard_by_id[int(row_id)] = shard
            written += take
        self._next_id = max(self._next_id, int(ids.max()) + 1)
        self.generation += 1
        return ids

    def remove(self, ids) -> int:
        """Tombstone rows by global id; returns how many were alive."""
        removed = 0
        for row_id in np.atleast_1d(np.asarray(ids, dtype=np.int64)):
            shard = self._shard_by_id.pop(int(row_id), None)
            if shard is not None and shard.remove(int(row_id)):
                self._dead_ids.add(int(row_id))
                removed += 1
        if removed:
            self.generation += 1
        return removed

    def compact(self, *, min_tombstones: int = 1) -> bool:
        """Rewrite shards without tombstoned rows, reclaiming their memory.

        Surviving rows keep their ids and relative order; shard boundaries
        are re-drawn at ``shard_capacity``.  No-op (returns ``False``) while
        fewer than ``min_tombstones`` rows are dead.
        """
        if self.tombstone_count < min_tombstones:
            return False
        survivors_v: list[np.ndarray] = []
        survivors_i: list[np.ndarray] = []
        for shard in self._shards:
            alive = ~shard.dead
            survivors_v.append(shard.vectors[alive])
            survivors_i.append(shard.ids[alive])
        self._shards = []
        self._shard_by_id = {}
        self._dead_ids = set()
        next_id = self._next_id
        generation = self.generation
        if survivors_v:
            vectors = np.concatenate(survivors_v, axis=0)
            ids = np.concatenate(survivors_i)
            if vectors.shape[0]:
                self.add(vectors, ids=ids)
        self._next_id = next_id
        self.generation = generation + 1
        return True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def top_k(self, queries: np.ndarray, k: int) -> SearchResult:
        """The ``k`` nearest alive rows for each query, merged across shards.

        Semantics match :meth:`SimilarityIndex.topk` exactly — on the same
        rows in the same insertion order the returned ids and distances are
        bit-identical whenever ``shard_capacity`` is a multiple of
        ``database_chunk_size`` (see the module docstring).  ``k`` is
        clamped to the alive row count.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = self._check_queries(queries)
        num_queries = queries.shape[0]
        k = min(k, len(self))
        indices = np.empty((num_queries, k), dtype=np.int64)
        distances = np.empty((num_queries, k), dtype=np.float32)
        if num_queries == 0 or k == 0:
            return SearchResult(indices=indices, distances=distances)

        for row in range(0, num_queries, self.query_chunk_size):
            block = queries[row : row + self.query_chunk_size]
            block_norms = squared_norms(block)
            # Fan-out: each shard reduces its segment to <= k candidates with
            # the shared chunked kernel ...
            per_shard = [
                shard.scan_topk(block, block_norms, k)
                for shard in self._shards
                if len(shard)
            ]
            # ... then the k-way merge selects the global k by (distance, id).
            best_d: np.ndarray | None = None
            best_i: np.ndarray | None = None
            for shard_d, shard_i in per_shard:
                best_d, best_i = merge_topk_candidates(best_d, best_i, shard_d, shard_i, k)
            block_indices, block_distances = finalize_topk(best_d, best_i)
            block_slice = slice(row, row + block.shape[0])
            indices[block_slice] = block_indices[:, :k]
            distances[block_slice] = block_distances[:, :k]
        return SearchResult(indices=indices, distances=distances)

    # The monolithic index spells it ``topk``; accept both.
    topk = top_k

    def most_similar(self, queries: np.ndarray) -> SearchResult:
        """The single nearest alive row per query (``top_k`` with k=1)."""
        return self.top_k(queries, k=1)

    def ranks_of(self, queries: np.ndarray, truth_ids: np.ndarray) -> np.ndarray:
        """1-based rank of ``truth_ids[i]`` among query ``i``'s neighbours.

        The counting semantics (and results) match
        :meth:`SimilarityIndex.ranks_of` with ids in place of row indices:
        rank = 1 + the number of alive rows sorting strictly before the truth
        row (smaller distance, or equal distance and smaller id).
        """
        queries = self._check_queries(queries)
        truth = np.asarray(truth_ids, dtype=np.int64)
        if truth.shape != (queries.shape[0],):
            raise ValueError("truth_ids must have one entry per query row")
        for row_id in truth:
            if int(row_id) not in self._shard_by_id:
                raise ValueError(f"truth id {int(row_id)} is not an alive row of the index")

        ranks = np.empty(truth.shape, dtype=np.int64)
        for row in range(0, queries.shape[0], self.query_chunk_size):
            block = queries[row : row + self.query_chunk_size]
            block_norms = squared_norms(block)
            block_truth = truth[row : row + block.shape[0]]
            # Pass 1: the truth rows' distances, with the same norms-minus-dot
            # arithmetic as the chunk kernel.
            gathered = np.empty((block.shape[0], self._dim), dtype=np.float32)
            gathered_norms = np.empty(block.shape[0], dtype=np.float32)
            for i, row_id in enumerate(block_truth):
                shard = self._shard_by_id[int(row_id)]
                vec, norm = shard.gather(np.array([shard.row_of(int(row_id))]))
                gathered[i] = vec[0]
                gathered_norms[i] = norm[0]
            truth_d = (
                block_norms
                + gathered_norms
                - 2.0 * np.einsum("ij,ij->i", block, gathered)
            )
            np.maximum(truth_d, 0.0, out=truth_d)
            # Pass 2: count rows sorting strictly before, summed over shards.
            before = np.zeros(block.shape[0], dtype=np.int64)
            for shard in self._shards:
                before += shard.count_before(block, block_norms, truth_d, block_truth)
            ranks[row : row + block.shape[0]] = before + 1
        return ranks
