"""`repro.streaming` — streaming ingestion + sharded similarity serving.

The layer between :mod:`repro.serving` (frozen store + monolithic index) and
a continuously-growing corpus:

* :class:`TrajectoryStreamReader` tails ``trajectories.jsonl`` incrementally
  and :class:`MicroBatcher` groups arrivals into length-bucketed encode
  batches (``reader``);
* :class:`ShardedIndex` routes queries across append-only
  :class:`IndexShard` segments — add/remove/compact mutations, fan-out +
  ``(distance, id)`` k-way merge queries, bit-identical to the monolithic
  :class:`~repro.serving.index.SimilarityIndex` on the same rows
  (``shards``);
* :class:`IngestService` ties reader → encoding → shards together with an
  LRU query cache and npz snapshot/restore (``service``).
"""

from repro.streaming.reader import (
    DEFAULT_BUCKET_WIDTH,
    DEFAULT_MICROBATCH_SIZE,
    MicroBatcher,
    TrajectoryStreamReader,
)
from repro.streaming.shards import (
    DEFAULT_SHARD_CAPACITY,
    IndexShard,
    ShardedIndex,
)
from repro.streaming.service import (
    DEFAULT_QUERY_CACHE_SIZE,
    SNAPSHOT_FORMAT_VERSION,
    IngestService,
)

__all__ = [
    "DEFAULT_BUCKET_WIDTH",
    "DEFAULT_MICROBATCH_SIZE",
    "DEFAULT_QUERY_CACHE_SIZE",
    "DEFAULT_SHARD_CAPACITY",
    "SNAPSHOT_FORMAT_VERSION",
    "IndexShard",
    "IngestService",
    "MicroBatcher",
    "ShardedIndex",
    "TrajectoryStreamReader",
]
