"""`repro.streaming` — streaming ingestion + sharded serving (facade internals).

The layer between :mod:`repro.serving` (frozen store + monolithic index) and
a continuously-growing corpus:

* :class:`TrajectoryStreamReader` tails ``trajectories.jsonl`` incrementally
  and :class:`MicroBatcher` groups arrivals into length-bucketed encode
  batches (``reader``);
* :class:`ShardedIndex` routes queries across append-only
  :class:`IndexShard` segments — add/remove/compact mutations, fan-out +
  ``(distance, id)`` k-way merge queries, bit-identical to the monolithic
  :class:`~repro.serving.index.SimilarityIndex` on the same rows
  (``shards``);
* :class:`IngestService` ties reader → encoding → shards together with an
  LRU query cache and npz snapshot/restore (``service``).

.. deprecated::
    Constructing :class:`ShardedIndex` / :class:`IngestService` directly is
    the *old* public path.  Application code should go through the
    :class:`repro.api.Engine` facade (``EngineConfig(backend="sharded")``
    selects the sharded machinery; ``Engine.drain``/``snapshot``/``restore``
    replace the ingest service).  These names remain importable for backward
    compatibility but accessing them from this package emits a
    ``DeprecationWarning``; facade internals import from the submodules,
    which stay warning-free.
"""

import warnings

from repro.streaming.reader import (
    DEFAULT_BUCKET_WIDTH,
    DEFAULT_MICROBATCH_SIZE,
    MicroBatcher,
    TrajectoryStreamReader,
)
from repro.streaming.shards import DEFAULT_SHARD_CAPACITY, IndexShard
from repro.streaming.service import DEFAULT_QUERY_CACHE_SIZE, SNAPSHOT_FORMAT_VERSION

#: Old public entry points, now deprecated at package level in favour of
#: ``repro.api.Engine``; resolved lazily so the warning fires on access.
_DEPRECATED = {
    "ShardedIndex": ("repro.streaming.shards", "ShardedIndex"),
    "IngestService": ("repro.streaming.service", "IngestService"),
}

__all__ = [
    "DEFAULT_BUCKET_WIDTH",
    "DEFAULT_MICROBATCH_SIZE",
    "DEFAULT_QUERY_CACHE_SIZE",
    "DEFAULT_SHARD_CAPACITY",
    "SNAPSHOT_FORMAT_VERSION",
    "IndexShard",
    "IngestService",
    "MicroBatcher",
    "ShardedIndex",
    "TrajectoryStreamReader",
]


def __getattr__(name: str):
    if name in _DEPRECATED:
        module_name, attribute = _DEPRECATED[name]
        warnings.warn(
            f"repro.streaming.{name} is deprecated as a public entry point; "
            f"drive streaming ingestion and sharded serving through "
            f"repro.api.Engine (EngineConfig(backend='sharded'), "
            f"Engine.drain/snapshot/restore). Library-internal code imports "
            f"from {module_name} directly.",
            DeprecationWarning,
            stacklevel=2,
        )
        from importlib import import_module

        return getattr(import_module(module_name), attribute)
    raise AttributeError(f"module 'repro.streaming' has no attribute '{name}'")
