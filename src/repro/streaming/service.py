"""The ingestion service: stream reader → micro-batched encoding → shards.

:class:`IngestService` is the piece that turns the streaming primitives into
a running system.  It owns

* an encoder callable (``STARTModel.encode`` or any baseline's ``encode``),
  run under :func:`repro.nn.no_grad` on length-bucketed micro-batches — which
  selects the pure-NumPy inference kernels of :mod:`repro.nn.kernels` and,
  for START, reuses the cached stage-one road table across micro-batches;
* a :class:`~repro.streaming.shards.ShardedIndex` that the encoded vectors
  append into — existing shards are never re-encoded or re-indexed;
* the row-id → ``trajectory_id`` mapping, so search results refer back to
  source trajectories after any number of appends and compactions;
* a small LRU cache of recent ``top_k`` answers, keyed on the query bytes
  *and the index generation* — any add/remove/compact bumps the generation,
  so stale answers can never be served and no explicit invalidation hook is
  needed;
* snapshot/restore on top of the :class:`~repro.serving.store.EmbeddingStore`
  versioned-npz format: one archive per shard plus a JSON manifest, so a
  serving replica can be rebuilt without the model or the raw trajectories.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.nn import no_grad
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS, NULL_REGISTRY
from repro.serving.index import SearchResult, as_float32_matrix
from repro.serving.store import EmbeddingStore
from repro.streaming.reader import (
    DEFAULT_BUCKET_WIDTH,
    DEFAULT_MICROBATCH_SIZE,
    MicroBatcher,
    TrajectoryStreamReader,
)
from repro.streaming.shards import DEFAULT_SHARD_CAPACITY, ShardedIndex

#: Bump when the snapshot layout changes; readers refuse newer formats.
SNAPSHOT_FORMAT_VERSION = 1

_MANIFEST_NAME = "manifest.json"

DEFAULT_QUERY_CACHE_SIZE = 128


class _LRUCache:  # thread: shared
    """A tiny ordered-dict LRU for query results.

    Thread-safe: the serving runtime hits one engine's cache from many
    worker threads at once, and even a *read* mutates an LRU
    (``move_to_end`` reorders the dict), so every operation — including the
    hit/miss counters, which lose increments under a data race — takes the
    internal lock.  Entries are immutable result objects shared by
    reference, so the lock never guards more than dict bookkeeping.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, SearchResult] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> SearchResult | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, value: SearchResult) -> None:
        with self._lock:
            if self.capacity < 1:
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)


class IngestService:
    """Continuous ingestion + serving over a :class:`ShardedIndex`.

    ``encode`` maps a list of trajectories to an ``(N, d)`` float32 array.
    Trajectories arrive through :meth:`ingest` (any iterable, including a
    :class:`TrajectoryStreamReader`) or :meth:`drain` (one poll of a reader);
    queries go through :meth:`top_k`, which consults the LRU cache first.
    """

    def __init__(
        self,
        encode: Callable,
        *,
        index: ShardedIndex | None = None,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        batch_size: int = DEFAULT_MICROBATCH_SIZE,
        bucket_width: int = DEFAULT_BUCKET_WIDTH,
        cache_size: int = DEFAULT_QUERY_CACHE_SIZE,
        metadata: dict | None = None,
        metrics=None,
    ) -> None:
        self.encode = encode
        self.index = index if index is not None else ShardedIndex(shard_capacity=shard_capacity)
        self.batcher = MicroBatcher(batch_size=batch_size, bucket_width=bucket_width)
        self.metadata = dict(metadata or {})
        self._trajectory_ids: dict[int, int] = {}
        self._cache = _LRUCache(cache_size)
        self._encoded_batches = 0
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_wave_size = self._metrics.histogram(
            "ingest_wave_size", "trajectories per ingest() call", buckets=DEFAULT_SIZE_BUCKETS
        )
        self._m_encode_batch = self._metrics.histogram(
            "ingest_encode_batch_size",
            "trajectories per emitted micro-batch",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_compactions = self._metrics.counter(
            "ingest_compactions_total", "compactions that rewrote at least one shard"
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Alive rows in the index (pending micro-batches not included)."""
        return len(self.index)

    @property
    def pending(self) -> int:
        """Trajectories accepted but still buffered in the micro-batcher."""
        return self.batcher.pending

    @property
    def encoded_batches(self) -> int:
        """Encode calls made so far (one per emitted micro-batch)."""
        return self._encoded_batches

    @property
    def cache_stats(self) -> dict[str, int]:
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "entries": len(self._cache),
        }

    def trajectory_ids(self, row_ids: np.ndarray) -> np.ndarray:
        """Map global row ids (as returned in results) to trajectory ids."""
        rows = np.asarray(row_ids, dtype=np.int64)
        return np.array(
            [self._trajectory_ids[int(r)] for r in rows.ravel()], dtype=np.int64
        ).reshape(rows.shape)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def _append_batch(self, batch: list) -> int:
        with no_grad():
            vectors = np.asarray(self.encode(batch), dtype=np.float32)
        if vectors.shape[0] != len(batch):
            raise ValueError(f"encode returned {vectors.shape[0]} rows for a batch of {len(batch)}")
        self._encoded_batches += 1
        self._m_encode_batch.observe(len(batch))
        row_ids = self.index.add(vectors)
        for row_id, trajectory in zip(row_ids, batch):
            self._trajectory_ids[int(row_id)] = int(
                getattr(trajectory, "trajectory_id", int(row_id))
            )
        return len(batch)

    def ingest(self, trajectories: Iterable, *, flush: bool = True) -> int:
        """Encode and index trajectories from any iterable; returns the count.

        Arrivals stream through the micro-batcher, so encode batches are
        length-bucketed; with ``flush=True`` (default) partial buckets are
        drained at the end, making every accepted trajectory queryable when
        the call returns.  ``flush=False`` leaves partial buckets pending for
        a caller that keeps feeding arrivals and wants full batches only.
        """
        ingested = 0
        for batch in self.batcher.add_many(trajectories):
            ingested += self._append_batch(batch)
        if flush:
            ingested += self.flush()
        self._m_wave_size.observe(ingested)
        return ingested

    def flush(self) -> int:
        """Drain partially-filled micro-batches into the index."""
        flushed = 0
        for batch in self.batcher.flush():
            flushed += self._append_batch(batch)
        return flushed

    def drain(self, reader: TrajectoryStreamReader, max_records: int | None = None) -> int:
        """Ingest one poll of a stream reader (new records since last time)."""
        return self.ingest(reader.poll(max_records=max_records))

    def remove(self, row_ids) -> int:
        """Tombstone rows by global id; returns how many were alive."""
        removed = self.index.remove(row_ids)
        for row_id in np.atleast_1d(np.asarray(row_ids, dtype=np.int64)):
            self._trajectory_ids.pop(int(row_id), None)
        return removed

    def compact(self, *, min_tombstones: int = 1) -> bool:
        """Compact the underlying index (see :meth:`ShardedIndex.compact`)."""
        compacted = self.index.compact(min_tombstones=min_tombstones)
        if compacted:
            self._m_compactions.inc()
        return compacted

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _cache_key(self, queries: np.ndarray, k: int) -> tuple:
        digest = hashlib.blake2b(queries.tobytes(), digest_size=16).hexdigest()
        return (self.index.generation, queries.shape, int(k), digest)

    def top_k(self, queries: np.ndarray, k: int) -> SearchResult:
        """Cached sharded top-k (see :meth:`ShardedIndex.top_k`).

        Result arrays are frozen (read-only): the same object may be served
        to later identical queries, so in-place mutation by one caller must
        not poison another's answer.  Copy before modifying.
        """
        queries = as_float32_matrix(queries, "queries")
        key = self._cache_key(queries, k)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self.index.top_k(queries, k)
        result.indices.flags.writeable = False
        result.distances.flags.writeable = False
        self._cache.put(key, result)
        return result

    def most_similar(self, queries: np.ndarray) -> SearchResult:
        return self.top_k(queries, k=1)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def snapshot(self, directory: str | Path) -> Path:
        """Write the index state under ``directory`` (one npz per shard).

        Each shard persists through the versioned
        :class:`~repro.serving.store.EmbeddingStore` format — vectors plus
        global row ids, with tombstoned ids and the trajectory-id mapping in
        the store metadata — and ``manifest.json`` records the index
        geometry.  Pending (un-flushed) micro-batches are not part of the
        snapshot; call :meth:`flush` first if they must be.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        shard_files: list[str] = []
        for number, shard in enumerate(self.index.shards):
            if len(shard) == 0:
                continue
            name = f"shard_{number:05d}.npz"
            ids = shard.ids
            store = EmbeddingStore(
                shard.vectors,
                ids=ids,
                metadata={
                    "deleted_ids": [int(i) for i in ids[shard.dead]],
                    "trajectory_ids": [
                        self._trajectory_ids.get(int(i), int(i)) for i in ids
                    ],
                },
            )
            store.save(directory / name)
            shard_files.append(name)
        manifest = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "shards": shard_files,
            "shard_capacity": self.index.shard_capacity,
            "query_chunk_size": self.index.query_chunk_size,
            "database_chunk_size": self.index.database_chunk_size,
            "next_id": self.index.next_id,
            "dim": self.index.dim,
            "metadata": self.metadata,
        }
        with open(directory / _MANIFEST_NAME, "w") as handle:
            json.dump(manifest, handle, indent=2)
        return directory

    @classmethod
    def restore(cls, directory: str | Path, encode: Callable, **service_kwargs) -> "IngestService":
        """Rebuild a service from a :meth:`snapshot` directory.

        The restored index reproduces the snapshotted shard layout row for
        row (same ids, same order, same tombstones), so queries against it
        are bit-identical to queries against the original.
        """
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(f"{directory} is not an IngestService snapshot (no {_MANIFEST_NAME})")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        version = int(manifest.get("format_version", 0))
        if version > SNAPSHOT_FORMAT_VERSION:
            raise ValueError(
                f"{directory} uses snapshot format v{version}; "
                f"this build reads up to v{SNAPSHOT_FORMAT_VERSION}"
            )
        index = ShardedIndex(
            dim=manifest.get("dim"),
            shard_capacity=int(manifest["shard_capacity"]),
            query_chunk_size=int(manifest["query_chunk_size"]),
            database_chunk_size=int(manifest["database_chunk_size"]),
        )
        service = cls(
            encode,
            index=index,
            metadata=manifest.get("metadata", {}),
            **service_kwargs,
        )
        deleted: list[int] = []
        for name in manifest["shards"]:
            store = EmbeddingStore.load(directory / name)
            index.add(store.vectors, ids=store.ids)
            deleted.extend(int(i) for i in store.metadata.get("deleted_ids", []))
            for row_id, trajectory_id in zip(
                store.ids, store.metadata.get("trajectory_ids", store.ids)
            ):
                service._trajectory_ids[int(row_id)] = int(trajectory_id)
        if deleted:
            index.remove(deleted)
            for row_id in deleted:
                service._trajectory_ids.pop(row_id, None)
        index.next_id = int(manifest.get("next_id", index.next_id))
        return service
