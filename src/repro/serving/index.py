"""Chunked top-k similarity search over trajectory representations.

The evaluation harness historically materialised a full ``(Q, D)`` float64
distance matrix and ran a full ``argsort`` per query.  That is fine for the
paper-scale benchmarks (tens of queries) but cannot serve the ROADMAP's
heavy-traffic goal: a million-trajectory database costs ``8 * Q * D`` bytes
per query batch and ``O(D log D)`` per query just to find five neighbours.

:class:`SimilarityIndex` answers the same queries with

* **bounded memory** — distances are computed one database chunk at a time,
  so peak memory is ``O(query_chunk * database_chunk)`` regardless of the
  database size;
* **float32 arithmetic** — representations are float32 to begin with
  (``STARTModel.encode`` returns float32), so the float64 up-cast of the old
  path only doubled bandwidth without adding information;
* **partial selection** — ``np.argpartition`` (``O(D)``) keeps a running
  top-k between chunks and only the final ``k`` candidates per query are
  sorted.

Distances are Euclidean; selection is done on squared distances (the square
root is monotone) and only the returned ``k`` values per query are rooted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default number of query rows processed per block.
DEFAULT_QUERY_CHUNK = 256
#: Default number of database rows processed per block.
DEFAULT_DATABASE_CHUNK = 4096


def as_float32_matrix(vectors: np.ndarray, name: str = "vectors") -> np.ndarray:
    """Validate and convert to a C-contiguous float32 ``(N, d)`` matrix."""
    matrix = np.ascontiguousarray(np.asarray(vectors), dtype=np.float32)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be a 2-D (N, d) array, got shape {matrix.shape}")
    return matrix


def squared_norms(matrix: np.ndarray) -> np.ndarray:
    """Row-wise squared L2 norms, ``(N,)`` float32."""
    return np.einsum("ij,ij->i", matrix, matrix)


def pairwise_squared_euclidean(
    queries: np.ndarray,
    database: np.ndarray,
    query_norms: np.ndarray | None = None,
    database_norms: np.ndarray | None = None,
) -> np.ndarray:
    """``(Q, D)`` squared Euclidean distances for one chunk pair (float32).

    Uses the ``|q|^2 + |d|^2 - 2 q.d`` expansion so the heavy lifting is a
    single float32 GEMM; negative values from cancellation are clipped to 0.
    """
    if query_norms is None:
        query_norms = squared_norms(queries)
    if database_norms is None:
        database_norms = squared_norms(database)
    squared = query_norms[:, None] + database_norms[None, :] - 2.0 * (queries @ database.T)
    np.maximum(squared, 0.0, out=squared)
    return squared


@dataclass(frozen=True)
class SearchResult:
    """Top-k neighbours for a batch of queries.

    ``indices[i, j]`` is the database row of query ``i``'s ``j``-th nearest
    neighbour (ascending distance, ties broken by database index) and
    ``distances[i, j]`` the corresponding Euclidean distance.
    """

    indices: np.ndarray
    distances: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)


class SimilarityIndex:
    """Top-k / most-similar queries over a fixed database of representations.

    The index owns a float32 copy of the database plus its precomputed row
    norms.  Queries stream through in chunks and a running per-query top-k is
    merged with ``np.argpartition`` after every database chunk, so neither the
    full distance matrix nor a full sort ever materialises.
    """

    def __init__(
        self,
        database: np.ndarray,
        *,
        query_chunk_size: int = DEFAULT_QUERY_CHUNK,
        database_chunk_size: int = DEFAULT_DATABASE_CHUNK,
    ) -> None:
        if query_chunk_size < 1 or database_chunk_size < 1:
            raise ValueError("chunk sizes must be positive")
        matrix = as_float32_matrix(database, "database")
        if matrix is database and matrix.flags.writeable:
            # as_float32_matrix is a no-op for float32 C-contiguous input;
            # copy a still-writeable caller array so later mutation cannot
            # desync the cached norms below.  Frozen matrices (EmbeddingStore
            # vectors) are shared as-is — no double memory at serving scale.
            matrix = matrix.copy()
        self._database = matrix
        self._database_norms = squared_norms(self._database)
        self.query_chunk_size = int(query_chunk_size)
        self.database_chunk_size = int(database_chunk_size)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._database.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed representations."""
        return self._database.shape[1]

    @property
    def database(self) -> np.ndarray:
        """The indexed ``(D, d)`` float32 database (read-only view)."""
        view = self._database.view()
        view.flags.writeable = False
        return view

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = as_float32_matrix(queries, "queries")
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"query dimension {queries.shape[1]} does not match index dimension {self.dim}"
            )
        return queries

    def _chunk_distances(self, queries: np.ndarray, query_norms: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Squared distances between a query block and database rows [start, stop)."""
        return pairwise_squared_euclidean(
            queries,
            self._database[start:stop],
            query_norms=query_norms,
            database_norms=self._database_norms[start:stop],
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def topk(self, queries: np.ndarray, k: int) -> SearchResult:
        """The ``k`` nearest database items for each query row.

        Results are sorted by ascending distance with ties broken by database
        index.  On distance-distinct data this matches a stable full argsort
        of the brute-force distance matrix exactly; when exact-equal distances
        straddle the k-boundary, the partial selection may keep a different
        (equally near) member of the tie than the stable sort would.  ``k`` is
        clamped to the database size.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = self._check_queries(queries)
        num_queries = queries.shape[0]
        k = min(k, len(self))
        indices = np.empty((num_queries, k), dtype=np.int64)
        distances = np.empty((num_queries, k), dtype=np.float32)
        if num_queries == 0 or k == 0:
            return SearchResult(indices=indices, distances=distances)

        for row in range(0, num_queries, self.query_chunk_size):
            block = queries[row : row + self.query_chunk_size]
            block_norms = squared_norms(block)
            best_d: np.ndarray | None = None
            best_i: np.ndarray | None = None
            for start in range(0, len(self), self.database_chunk_size):
                stop = min(start + self.database_chunk_size, len(self))
                chunk_d = self._chunk_distances(block, block_norms, start, stop)
                chunk_i = np.broadcast_to(
                    np.arange(start, stop, dtype=np.int64), chunk_d.shape
                )
                if best_d is None:
                    cand_d, cand_i = chunk_d, chunk_i
                else:
                    cand_d = np.concatenate([best_d, chunk_d], axis=1)
                    cand_i = np.concatenate([best_i, chunk_i], axis=1)
                if cand_d.shape[1] > k:
                    keep = np.argpartition(cand_d, k - 1, axis=1)[:, :k]
                    best_d = np.take_along_axis(cand_d, keep, axis=1)
                    best_i = np.take_along_axis(cand_i, keep, axis=1)
                else:
                    best_d = np.array(cand_d, copy=True)
                    best_i = np.array(cand_i, copy=True)
            # Order the surviving k candidates: distance first, index on ties.
            order = np.lexsort((best_i, best_d), axis=-1)
            block_slice = slice(row, row + block.shape[0])
            indices[block_slice] = np.take_along_axis(best_i, order, axis=1)
            distances[block_slice] = np.sqrt(np.take_along_axis(best_d, order, axis=1))
        return SearchResult(indices=indices, distances=distances)

    def most_similar(self, queries: np.ndarray) -> SearchResult:
        """The single nearest database item per query (``topk`` with k=1)."""
        return self.topk(queries, k=1)

    def ranks_of(self, queries: np.ndarray, truth_indices: np.ndarray) -> np.ndarray:
        """1-based rank of ``truth_indices[i]`` in query ``i``'s result list.

        Equivalent to a stable full argsort of the brute-force distance row
        followed by ``where(order == truth)``, but computed by *counting* in
        one chunked pass: the rank of the truth item is one plus the number of
        database items that sort strictly before it (smaller distance, or
        equal distance and smaller index).  Memory stays bounded and no sort
        of the database ever happens.

        The truth item itself is excluded explicitly, so the rank is robust
        to kernel rounding; a *different* database item whose distance ties
        the truth's within one float32 ulp may still be counted on either
        side of the tie (its GEMM distance vs. the truth's row-wise one).
        """
        queries = self._check_queries(queries)
        truth = np.asarray(truth_indices, dtype=np.int64)
        if truth.shape != (queries.shape[0],):
            raise ValueError("truth_indices must have one entry per query row")
        if truth.size and (truth.min() < 0 or truth.max() >= len(self)):
            raise ValueError("truth_indices out of database range")

        ranks = np.empty(truth.shape, dtype=np.int64)
        for row in range(0, queries.shape[0], self.query_chunk_size):
            block = queries[row : row + self.query_chunk_size]
            block_norms = squared_norms(block)
            block_truth = truth[row : row + block.shape[0]]
            # Pass 1: the truth item's distance, computed with the same
            # norms-minus-dot arithmetic as the chunk kernel.
            gathered = self._database[block_truth]
            truth_d = (
                block_norms
                + self._database_norms[block_truth]
                - 2.0 * np.einsum("ij,ij->i", block, gathered)
            )
            np.maximum(truth_d, 0.0, out=truth_d)
            # Pass 2: count items sorting strictly before the truth item.
            before = np.zeros(block.shape[0], dtype=np.int64)
            for start in range(0, len(self), self.database_chunk_size):
                stop = min(start + self.database_chunk_size, len(self))
                chunk_d = self._chunk_distances(block, block_norms, start, stop)
                # The truth item itself never counts, whatever tiny float
                # discrepancy exists between the GEMM and row-wise kernels.
                in_chunk = (block_truth >= start) & (block_truth < stop)
                if in_chunk.any():
                    rows = np.nonzero(in_chunk)[0]
                    chunk_d[rows, block_truth[rows] - start] = np.inf
                chunk_idx = np.arange(start, stop, dtype=np.int64)
                strictly_closer = chunk_d < truth_d[:, None]
                tie_before = (chunk_d == truth_d[:, None]) & (
                    chunk_idx[None, :] < block_truth[:, None]
                )
                before += (strictly_closer | tie_before).sum(axis=1)
            ranks[row : row + block.shape[0]] = before + 1
        return ranks
