"""Chunked top-k similarity search over trajectory representations.

The evaluation harness historically materialised a full ``(Q, D)`` float64
distance matrix and ran a full ``argsort`` per query.  That is fine for the
paper-scale benchmarks (tens of queries) but cannot serve the ROADMAP's
heavy-traffic goal: a million-trajectory database costs ``8 * Q * D`` bytes
per query batch and ``O(D log D)`` per query just to find five neighbours.

:class:`SimilarityIndex` answers the same queries with

* **bounded memory** — distances are computed one database chunk at a time,
  so peak memory is ``O(query_chunk * database_chunk)`` regardless of the
  database size;
* **float32 arithmetic** — representations are float32 to begin with
  (``STARTModel.encode`` returns float32), so the float64 up-cast of the old
  path only doubled bandwidth without adding information;
* **partial selection** — ``np.argpartition`` (``O(D)``) keeps a running
  top-k between chunks and only the final ``k`` candidates per query are
  sorted.

Distances are Euclidean; selection is done on squared distances (the square
root is monotone) and only the returned ``k`` values per query are rooted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default number of query rows processed per block.
DEFAULT_QUERY_CHUNK = 256
#: Default number of database rows processed per block.
DEFAULT_DATABASE_CHUNK = 4096


def as_float32_matrix(vectors: np.ndarray, name: str = "vectors") -> np.ndarray:
    """Validate and convert to a C-contiguous float32 ``(N, d)`` matrix."""
    matrix = np.ascontiguousarray(np.asarray(vectors), dtype=np.float32)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be a 2-D (N, d) array, got shape {matrix.shape}")
    return matrix


def squared_norms(matrix: np.ndarray) -> np.ndarray:
    """Row-wise squared L2 norms, ``(N,)`` float32."""
    return np.einsum("ij,ij->i", matrix, matrix)


def pairwise_squared_euclidean(
    queries: np.ndarray,
    database: np.ndarray,
    query_norms: np.ndarray | None = None,
    database_norms: np.ndarray | None = None,
) -> np.ndarray:
    """``(Q, D)`` squared Euclidean distances for one chunk pair (float32).

    Uses the ``|q|^2 + |d|^2 - 2 q.d`` expansion so the heavy lifting is a
    single float32 GEMM; negative values from cancellation are clipped to 0.
    """
    if query_norms is None:
        query_norms = squared_norms(queries)
    if database_norms is None:
        database_norms = squared_norms(database)
    squared = query_norms[:, None] + database_norms[None, :] - 2.0 * (queries @ database.T)
    np.maximum(squared, 0.0, out=squared)
    return squared


def merge_topk_candidates(
    best_d: np.ndarray | None,
    best_i: np.ndarray | None,
    chunk_d: np.ndarray,
    chunk_i: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge one candidate block into the running per-query top-k.

    ``best_d``/``best_i`` are the current ``(Q, <=k)`` candidate squared
    distances and row ids (``None`` before the first block).  The merged
    candidates are *unsorted*: ``np.argpartition`` only guarantees the k
    smallest survive, so callers must order them with :func:`finalize_topk`.
    """
    if best_d is None:
        cand_d, cand_i = chunk_d, chunk_i
    else:
        cand_d = np.concatenate([best_d, chunk_d], axis=1)
        cand_i = np.concatenate([best_i, chunk_i], axis=1)
    if cand_d.shape[1] > k:
        keep = np.argpartition(cand_d, k - 1, axis=1)[:, :k]
        return (
            np.take_along_axis(cand_d, keep, axis=1),
            np.take_along_axis(cand_i, keep, axis=1),
        )
    return cand_d.copy(), cand_i.copy()


def scan_topk_candidates(
    queries: np.ndarray,
    query_norms: np.ndarray,
    database: np.ndarray,
    database_norms: np.ndarray,
    k: int,
    chunk_size: int,
    row_ids: np.ndarray | None = None,
    exclude: np.ndarray | None = None,
    best: tuple[np.ndarray | None, np.ndarray | None] = (None, None),
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Running top-k candidates of one query block over one database array.

    This is the chunked kernel shared by the monolithic
    :class:`SimilarityIndex` and the streaming layer's shards: distances are
    computed one ``chunk_size`` block at a time and merged with
    :func:`merge_topk_candidates`, so both callers do bit-identical float32
    arithmetic per database row.

    ``row_ids`` maps local database rows to the ids reported in results
    (defaults to ``0..N-1``); ``exclude`` is an optional boolean mask of rows
    to skip (tombstones) — their distances are forced to ``+inf`` so they can
    never survive a merge while live candidates remain.  ``best`` seeds the
    running candidates, allowing one scan to continue another.
    """
    best_d, best_i = best
    count = database.shape[0]
    for start in range(0, count, chunk_size):
        stop = min(start + chunk_size, count)
        chunk_d = pairwise_squared_euclidean(
            queries,
            database[start:stop],
            query_norms=query_norms,
            database_norms=database_norms[start:stop],
        )
        if exclude is not None:
            dead = np.nonzero(exclude[start:stop])[0]
            if dead.size:
                chunk_d[:, dead] = np.inf
        if row_ids is None:
            ids = np.arange(start, stop, dtype=np.int64)
        else:
            ids = row_ids[start:stop]
        chunk_i = np.broadcast_to(ids, chunk_d.shape)
        best_d, best_i = merge_topk_candidates(best_d, best_i, chunk_d, chunk_i, k)
    return best_d, best_i


def finalize_topk(best_d: np.ndarray, best_i: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Order surviving candidates (distance first, id on ties) and take roots.

    Returns ``(indices, distances)`` with distances un-squared; only these
    final ``k`` values per query ever see a ``sqrt`` or a sort.
    """
    order = np.lexsort((best_i, best_d), axis=-1)
    indices = np.take_along_axis(best_i, order, axis=1)
    distances = np.sqrt(np.take_along_axis(best_d, order, axis=1))
    return indices, distances


def scan_count_before(
    queries: np.ndarray,
    query_norms: np.ndarray,
    database: np.ndarray,
    database_norms: np.ndarray,
    truth_d: np.ndarray,
    truth_ids: np.ndarray,
    chunk_size: int,
    row_ids: np.ndarray | None = None,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Per-query count of database rows sorting strictly before the truth.

    A row sorts before when its squared distance is smaller, or equal with a
    smaller row id (the stable-argsort order).  The truth row itself (matched
    by id) and excluded rows are forced to ``+inf`` so they never count.
    Shared by :meth:`SimilarityIndex.ranks_of` and the sharded rank path.
    """
    before = np.zeros(queries.shape[0], dtype=np.int64)
    count = database.shape[0]
    for start in range(0, count, chunk_size):
        stop = min(start + chunk_size, count)
        chunk_d = pairwise_squared_euclidean(
            queries,
            database[start:stop],
            query_norms=query_norms,
            database_norms=database_norms[start:stop],
        )
        if exclude is not None:
            dead = np.nonzero(exclude[start:stop])[0]
            if dead.size:
                chunk_d[:, dead] = np.inf
        if row_ids is None:
            ids = np.arange(start, stop, dtype=np.int64)
        else:
            ids = row_ids[start:stop]
        # The truth item itself never counts, whatever tiny float discrepancy
        # exists between the GEMM and row-wise kernels.
        is_truth = ids[None, :] == truth_ids[:, None]
        if is_truth.any():
            chunk_d[is_truth] = np.inf
        strictly_closer = chunk_d < truth_d[:, None]
        tie_before = (chunk_d == truth_d[:, None]) & (ids[None, :] < truth_ids[:, None])
        before += (strictly_closer | tie_before).sum(axis=1)
    return before


@dataclass(frozen=True)
class SearchResult:
    """Top-k neighbours for a batch of queries.

    ``indices[i, j]`` is the database row of query ``i``'s ``j``-th nearest
    neighbour (ascending distance, ties broken by database index) and
    ``distances[i, j]`` the corresponding Euclidean distance.
    """

    indices: np.ndarray
    distances: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)


class SimilarityIndex:
    """Top-k / most-similar queries over a fixed database of representations.

    The index owns a float32 copy of the database plus its precomputed row
    norms.  Queries stream through in chunks and a running per-query top-k is
    merged with ``np.argpartition`` after every database chunk, so neither the
    full distance matrix nor a full sort ever materialises.
    """

    def __init__(
        self,
        database: np.ndarray,
        *,
        query_chunk_size: int = DEFAULT_QUERY_CHUNK,
        database_chunk_size: int = DEFAULT_DATABASE_CHUNK,
    ) -> None:
        if query_chunk_size < 1 or database_chunk_size < 1:
            raise ValueError("chunk sizes must be positive")
        matrix = as_float32_matrix(database, "database")
        if matrix is database and matrix.flags.writeable:
            # as_float32_matrix is a no-op for float32 C-contiguous input;
            # copy a still-writeable caller array so later mutation cannot
            # desync the cached norms below.  Frozen matrices (EmbeddingStore
            # vectors) are shared as-is — no double memory at serving scale.
            matrix = matrix.copy()
        self._database = matrix
        self._database_norms = squared_norms(self._database)
        self.query_chunk_size = int(query_chunk_size)
        self.database_chunk_size = int(database_chunk_size)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._database.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed representations."""
        return self._database.shape[1]

    @property
    def database(self) -> np.ndarray:
        """The indexed ``(D, d)`` float32 database (read-only view)."""
        view = self._database.view()
        view.flags.writeable = False
        return view

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = as_float32_matrix(queries, "queries")
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"query dimension {queries.shape[1]} does not match index dimension {self.dim}"
            )
        return queries

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def topk(self, queries: np.ndarray, k: int) -> SearchResult:
        """The ``k`` nearest database items for each query row.

        Results are sorted by ascending distance with ties broken by database
        index.  On distance-distinct data this matches a stable full argsort
        of the brute-force distance matrix exactly; when exact-equal distances
        straddle the k-boundary, the partial selection may keep a different
        (equally near) member of the tie than the stable sort would.  ``k`` is
        clamped to the database size.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = self._check_queries(queries)
        num_queries = queries.shape[0]
        k = min(k, len(self))
        indices = np.empty((num_queries, k), dtype=np.int64)
        distances = np.empty((num_queries, k), dtype=np.float32)
        if num_queries == 0 or k == 0:
            return SearchResult(indices=indices, distances=distances)

        for row in range(0, num_queries, self.query_chunk_size):
            block = queries[row : row + self.query_chunk_size]
            block_norms = squared_norms(block)
            best_d, best_i = scan_topk_candidates(
                block,
                block_norms,
                self._database,
                self._database_norms,
                k,
                self.database_chunk_size,
            )
            block_indices, block_distances = finalize_topk(best_d, best_i)
            block_slice = slice(row, row + block.shape[0])
            indices[block_slice] = block_indices
            distances[block_slice] = block_distances
        return SearchResult(indices=indices, distances=distances)

    def most_similar(self, queries: np.ndarray) -> SearchResult:
        """The single nearest database item per query (``topk`` with k=1)."""
        return self.topk(queries, k=1)

    def ranks_of(self, queries: np.ndarray, truth_indices: np.ndarray) -> np.ndarray:
        """1-based rank of ``truth_indices[i]`` in query ``i``'s result list.

        Equivalent to a stable full argsort of the brute-force distance row
        followed by ``where(order == truth)``, but computed by *counting* in
        one chunked pass: the rank of the truth item is one plus the number of
        database items that sort strictly before it (smaller distance, or
        equal distance and smaller index).  Memory stays bounded and no sort
        of the database ever happens.

        The truth item itself is excluded explicitly, so the rank is robust
        to kernel rounding; a *different* database item whose distance ties
        the truth's within one float32 ulp may still be counted on either
        side of the tie (its GEMM distance vs. the truth's row-wise one).
        """
        queries = self._check_queries(queries)
        truth = np.asarray(truth_indices, dtype=np.int64)
        if truth.shape != (queries.shape[0],):
            raise ValueError("truth_indices must have one entry per query row")
        if truth.size and (truth.min() < 0 or truth.max() >= len(self)):
            raise ValueError("truth_indices out of database range")

        ranks = np.empty(truth.shape, dtype=np.int64)
        for row in range(0, queries.shape[0], self.query_chunk_size):
            block = queries[row : row + self.query_chunk_size]
            block_norms = squared_norms(block)
            block_truth = truth[row : row + block.shape[0]]
            # Pass 1: the truth item's distance, computed with the same
            # norms-minus-dot arithmetic as the chunk kernel.
            gathered = self._database[block_truth]
            truth_d = (
                block_norms
                + self._database_norms[block_truth]
                - np.float32(2.0) * np.einsum("ij,ij->i", block, gathered)
            )
            np.maximum(truth_d, 0.0, out=truth_d)
            # Pass 2: count items sorting strictly before the truth item.
            before = scan_count_before(
                block,
                block_norms,
                self._database,
                self._database_norms,
                truth_d,
                block_truth,
                self.database_chunk_size,
            )
            ranks[row : row + block.shape[0]] = before + 1
        return ranks
