"""`repro.serving` — the representation-serving layer (facade internals).

Turns a frozen encoder into a query-able similarity-search service:
:class:`EmbeddingStore` materialises representations once (length-bucketed
batching, npz persistence) and :class:`SimilarityIndex` answers top-k /
most-similar / rank queries with chunked float32 distance computation and
partial (``argpartition``) selection instead of full sorts.

.. deprecated::
    Constructing :class:`EmbeddingStore` / :class:`SimilarityIndex` directly
    is the *old* public path.  Application code should go through the
    :class:`repro.api.Engine` facade (``EngineConfig(backend="chunked")``
    selects this index); these names remain importable for backward
    compatibility but accessing them from this package emits a
    ``DeprecationWarning``.  Facade internals import from the submodules
    (:mod:`repro.serving.store`, :mod:`repro.serving.index`), which stay
    warning-free.
"""

import warnings

from repro.serving.index import (
    DEFAULT_DATABASE_CHUNK,
    DEFAULT_QUERY_CHUNK,
    SearchResult,
    pairwise_squared_euclidean,
)
from repro.serving.store import DEFAULT_ENCODE_BATCH, FORMAT_VERSION

#: Old public entry points, now deprecated at package level in favour of
#: ``repro.api.Engine``; resolved lazily so the warning fires on access.
_DEPRECATED = {
    "EmbeddingStore": ("repro.serving.store", "EmbeddingStore"),
    "SimilarityIndex": ("repro.serving.index", "SimilarityIndex"),
}

__all__ = [
    "DEFAULT_DATABASE_CHUNK",
    "DEFAULT_ENCODE_BATCH",
    "DEFAULT_QUERY_CHUNK",
    "FORMAT_VERSION",
    "EmbeddingStore",
    "SearchResult",
    "SimilarityIndex",
    "pairwise_squared_euclidean",
]


def __getattr__(name: str):
    if name in _DEPRECATED:
        module_name, attribute = _DEPRECATED[name]
        warnings.warn(
            f"repro.serving.{name} is deprecated as a public entry point; "
            f"drive serving through repro.api.Engine (the '{name}' machinery "
            f"is selected with EngineConfig backends). Library-internal code "
            f"imports from {module_name} directly.",
            DeprecationWarning,
            stacklevel=2,
        )
        from importlib import import_module

        return getattr(import_module(module_name), attribute)
    raise AttributeError(f"module 'repro.serving' has no attribute '{name}'")
