"""`repro.serving` — the representation-serving layer.

Turns a frozen encoder into a query-able similarity-search service:
:class:`EmbeddingStore` materialises representations once (length-bucketed
batching, npz persistence) and :class:`SimilarityIndex` answers top-k /
most-similar / rank queries with chunked float32 distance computation and
partial (``argpartition``) selection instead of full sorts.

This is the API seam the ROADMAP's scaling directives (sharding, caching,
batching) attach to: everything above it — eval harnesses, experiments,
examples — only sees stores and indexes, never raw distance matrices.
"""

from repro.serving.index import (
    DEFAULT_DATABASE_CHUNK,
    DEFAULT_QUERY_CHUNK,
    SearchResult,
    SimilarityIndex,
    pairwise_squared_euclidean,
)
from repro.serving.store import DEFAULT_ENCODE_BATCH, FORMAT_VERSION, EmbeddingStore

__all__ = [
    "DEFAULT_DATABASE_CHUNK",
    "DEFAULT_ENCODE_BATCH",
    "DEFAULT_QUERY_CHUNK",
    "FORMAT_VERSION",
    "EmbeddingStore",
    "SearchResult",
    "SimilarityIndex",
    "pairwise_squared_euclidean",
]
