"""Persistent store of trajectory representations (the serving "warm" path).

In the paper's downstream similarity task the database embeddings are a
function of the frozen pre-trained encoder only, so they can be computed once
and served forever.  :class:`EmbeddingStore` is that materialisation step:

* **length-bucketed batch encoding** — trajectories are encoded in batches of
  neighbours in the length ordering, so each batch pads to its own longest
  member instead of the global maximum (padding work in the transformer is
  quadratic in the padded length, so mixing a 5-road trip into a 100-road
  batch wastes ~400x on the short trip);
* **no-grad inference** — encoding runs inside :func:`repro.nn.no_grad`
  whatever the encoder callable does internally, so no autodiff graph is
  retained across a million-trajectory sweep and the encoder's modules
  dispatch to the pure-NumPy fast kernels in :mod:`repro.nn.kernels`
  (fused attention, time-parallel recurrent sweeps) automatically;
* **npz persistence with versioned metadata** — the on-disk format mirrors
  :mod:`repro.nn.serialization` (one array per field plus a JSON metadata
  blob) so stores survive process restarts and can be shipped to serving
  replicas without the model.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn import length_bucketed_indices, no_grad
from repro.serving.index import SimilarityIndex, as_float32_matrix

#: Bump when the on-disk layout changes; readers refuse newer formats.
FORMAT_VERSION = 1

_META_KEY = "__embedding_store_meta__"
_VECTORS_KEY = "vectors"
_IDS_KEY = "ids"

DEFAULT_ENCODE_BATCH = 64


class EmbeddingStore:
    """An immutable ``(N, d)`` float32 matrix of representations plus ids.

    ``ids[i]`` identifies the trajectory behind row ``i`` (by default its
    ``trajectory_id``), so search results can be mapped back to source data
    after a save/load round trip.

    ``vectors`` is stored read-only (copied first if the caller's array would
    otherwise be aliased): indexes built from the store share the matrix
    without copying, which is only safe because nobody can mutate it.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        ids: np.ndarray | None = None,
        metadata: dict | None = None,
    ) -> None:
        matrix = as_float32_matrix(vectors)
        if matrix is vectors and matrix.flags.writeable:
            matrix = matrix.copy()
        matrix.flags.writeable = False
        self.vectors = matrix
        if ids is None:
            ids = np.arange(self.vectors.shape[0], dtype=np.int64)
        self.ids = np.asarray(ids, dtype=np.int64)
        if self.ids.shape != (self.vectors.shape[0],):
            raise ValueError("ids must have exactly one entry per vector row")
        self.metadata = dict(metadata or {})

    def __len__(self) -> int:
        return self.vectors.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the stored representations."""
        return self.vectors.shape[1]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        encode,
        trajectories: list,
        *,
        batch_size: int = DEFAULT_ENCODE_BATCH,
        metadata: dict | None = None,
    ) -> "EmbeddingStore":
        """Batch-encode ``trajectories`` into a store.

        ``encode`` is any callable mapping a list of trajectories to an
        ``(N, d)`` array — ``STARTModel.encode`` and every baseline's
        ``encode`` qualify.  Batches are formed over the length-sorted order
        (stable, so equal-length trajectories keep their relative order) and
        results are scattered back, so row ``i`` of the store always
        corresponds to ``trajectories[i]``.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not trajectories:
            raise ValueError("cannot build an EmbeddingStore from zero trajectories")
        vectors: np.ndarray | None = None
        with no_grad():
            for batch_rows in length_bucketed_indices(
                [len(t) for t in trajectories], batch_size
            ):
                batch = [trajectories[i] for i in batch_rows]
                encoded = np.asarray(encode(batch), dtype=np.float32)
                if encoded.shape[0] != len(batch):
                    raise ValueError(
                        f"encode returned {encoded.shape[0]} rows for a batch of {len(batch)}"
                    )
                if vectors is None:
                    vectors = np.empty((len(trajectories), encoded.shape[1]), dtype=np.float32)
                vectors[batch_rows] = encoded
        ids = np.array(
            [getattr(t, "trajectory_id", i) for i, t in enumerate(trajectories)],
            dtype=np.int64,
        )
        # The freshly built matrix is never shared; freeze it here so the
        # constructor adopts it without a defensive copy.
        vectors.flags.writeable = False
        return cls(vectors, ids=ids, metadata=metadata)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Serialize the store to ``path`` (npz); returns the real path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "format_version": FORMAT_VERSION,
            "count": int(len(self)),
            "dim": int(self.dim),
            "metadata": self.metadata,
        }
        blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **{_VECTORS_KEY: self.vectors, _IDS_KEY: self.ids, _META_KEY: blob})
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "EmbeddingStore":
        """Load a store produced by :meth:`save`; refuses newer formats."""
        path = Path(path)
        if not path.exists() and path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        with np.load(path, allow_pickle=False) as archive:
            if _META_KEY not in archive.files:
                raise ValueError(f"{path} is not an EmbeddingStore archive")
            meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
            version = int(meta.get("format_version", 0))
            if version > FORMAT_VERSION:
                raise ValueError(
                    f"{path} uses EmbeddingStore format v{version}; "
                    f"this build reads up to v{FORMAT_VERSION}"
                )
            vectors = archive[_VECTORS_KEY]
            ids = archive[_IDS_KEY]
        if vectors.dtype == np.float32 and vectors.flags.c_contiguous:
            # Decompressed fresh from the archive — adopt without a copy.
            vectors.flags.writeable = False
        store = cls(vectors, ids=ids, metadata=meta.get("metadata", {}))
        if len(store) != int(meta.get("count", len(store))) or store.dim != int(
            meta.get("dim", store.dim)
        ):
            raise ValueError(f"{path} metadata does not match its arrays")
        return store

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def index(self, **index_kwargs) -> SimilarityIndex:
        """A :class:`SimilarityIndex` over this store's vectors."""
        return SimilarityIndex(self.vectors, **index_kwargs)
