"""Self-attention baselines: Transformer (MLM), BERT, PIM-TF and Toast.

These cover the paper's "self-supervised sequence representation" category
(Transformer, BERT) and the transformer halves of the two-stage category
(PIM-TF, Toast).  All share a Transformer encoder over token embeddings plus
positional encodings and use the [CLS] hidden state as the trajectory
representation; they differ in the self-supervised objective:

* **TransformerMLM** — token-level masked language modelling;
* **BERTBaseline** — MLM plus the trajectory-pair order classification
  described in Section IV-B (is the second half in its original order?);
* **PIMTF** — mutual-information maximisation (InfoNCE) between the pooled
  representation and the mean road embedding of the same trajectory;
* **Toast** — node2vec-initialised road embeddings, MLM plus a trajectory
  discrimination task (genuine vs corrupted road sequences).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SequenceEncoderBaseline
from repro.core import tokens as tok
from repro.core.batching import TrajectoryBatch
from repro.core.config import StartConfig
from repro.nn import (
    AdamW,
    BatchIterator,
    Linear,
    PositionalEncoding,
    Tensor,
    TransformerEncoder,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    cross_entropy,
    info_nce_loss,
)
from repro.roadnet.network import RoadNetwork
from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng


class _TransformerBaseline(SequenceEncoderBaseline):
    """Shared Transformer encoder machinery."""

    def __init__(
        self,
        network: RoadNetwork,
        config: StartConfig | None = None,
        road_embeddings: np.ndarray | None = None,
    ) -> None:
        super().__init__(network, config, road_embeddings)
        rng = get_rng(self.config.seed + 20)
        d = self.config.d_model
        self.positional_encoding = PositionalEncoding(d, max_len=self.config.max_trajectory_length + 1)
        self.encoder = TransformerEncoder(
            d_model=d,
            num_heads=self.config.encoder_heads,
            num_layers=self.config.encoder_layers,
            d_hidden=self.config.ffn_dim,
            dropout=self.config.dropout,
            rng=rng,
        )
        self.mlm_head = Linear(d, self.num_roads, rng=rng)
        self._rng = rng

    def forward(self, batch: TrajectoryBatch) -> tuple[Tensor, Tensor]:
        embedded = self.positional_encoding(self._embed_tokens(batch))
        hidden = self.encoder(embedded, key_padding_mask=batch.padding_mask)
        return hidden, hidden[:, 0, :]

    # ------------------------------------------------------------------ #
    # Objectives (mixed and matched by subclasses)
    # ------------------------------------------------------------------ #
    def _mlm_loss(self, batch: TrajectoryBatch):
        hidden, _ = self.forward(batch)
        logits = self.mlm_head(hidden).reshape(-1, self.num_roads)
        return cross_entropy(logits, batch.mask_labels.reshape(-1), ignore_index=tok.IGNORE_LABEL)

    def _objective(self, builder, chunk: list[Trajectory]):
        raise NotImplementedError

    def pretrain(self, trajectories: list[Trajectory], epochs: int | None = None) -> list[float]:
        if len(trajectories) < 2:
            raise ValueError("pre-training needs at least two trajectories")
        epochs = epochs if epochs is not None else self.config.pretrain_epochs
        builder = self.make_builder(rng=self._rng)
        optimizer = AdamW(
            self.parameters(), lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )
        history: list[float] = []
        self.train()
        for _ in range(epochs):
            iterator = BatchIterator(
                len(trajectories), self.config.batch_size, shuffle=True, rng=self._rng
            )
            total, steps = 0.0, 0
            for indices in iterator:
                chunk = [trajectories[i] for i in indices]
                if len(chunk) < 2:
                    continue
                optimizer.zero_grad()
                loss = self._objective(builder, chunk)
                loss.backward()
                clip_grad_norm(self.parameters(), self.config.gradient_clip)
                optimizer.step()
                total += loss.item()
                steps += 1
            history.append(total / max(steps, 1))
        self.eval()
        return history


class TransformerMLM(_TransformerBaseline):
    """Vanilla Transformer encoder pre-trained with token-level MLM."""

    name = "Transformer"

    def _objective(self, builder, chunk):
        batch = builder.build(chunk, span_mask=True)
        return self._mlm_loss(batch)


class BERTBaseline(_TransformerBaseline):
    """BERT-style pre-training: MLM + trajectory-half order classification."""

    name = "BERT"

    def __init__(self, network, config=None, road_embeddings=None):
        super().__init__(network, config, road_embeddings)
        self.order_head = Linear(self.config.d_model, 1, rng=self._rng)

    def _order_loss(self, builder, chunk: list[Trajectory]):
        shuffled: list[Trajectory] = []
        labels = np.zeros(len(chunk), dtype=np.float32)
        for index, trajectory in enumerate(chunk):
            half = len(trajectory) // 2
            if self._rng.random() < 0.5:
                labels[index] = 1.0
                shuffled.append(trajectory)
            else:
                swapped = trajectory.copy()
                swapped.roads = trajectory.roads[half:] + trajectory.roads[:half]
                shuffled.append(swapped)
        batch = builder.build(shuffled, span_mask=False)
        _, pooled = self.forward(batch)
        logits = self.order_head(pooled).reshape(len(chunk))
        return binary_cross_entropy_with_logits(logits, labels)

    def _objective(self, builder, chunk):
        mlm = self._mlm_loss(builder.build(chunk, span_mask=True))
        return mlm + self._order_loss(builder, chunk)


class PIMTF(_TransformerBaseline):
    """PIM with a Transformer encoder (the paper's PIM-TF variant)."""

    name = "PIM-TF"

    def _mutual_information_loss(self, builder, chunk: list[Trajectory]):
        batch = builder.build(chunk, span_mask=False)
        _, pooled = self.forward(batch)
        # Positive key: mean road-token embedding of the same trajectory.
        embedded = self._embed_tokens(batch)
        road_mask = (batch.tokens >= tok.NUM_SPECIAL_TOKENS).astype(np.float32)
        weights = road_mask / np.maximum(road_mask.sum(axis=1, keepdims=True), 1.0)
        keys = (embedded * Tensor(weights[:, :, None])).sum(axis=1)
        return info_nce_loss(pooled, keys, np.arange(len(chunk)))

    def _objective(self, builder, chunk):
        return self._mutual_information_loss(builder, chunk)


class Toast(_TransformerBaseline):
    """Toast (Chen et al., 2021): node2vec roads + MLM + trajectory discrimination."""

    name = "Toast"

    def __init__(self, network, config=None, road_embeddings=None):
        super().__init__(network, config, road_embeddings)
        self.discrimination_head = Linear(self.config.d_model, 1, rng=self._rng)

    def _discrimination_loss(self, builder, chunk: list[Trajectory]):
        corrupted: list[Trajectory] = []
        labels = np.zeros(len(chunk), dtype=np.float32)
        road_ids = self.network.road_ids()
        for index, trajectory in enumerate(chunk):
            if self._rng.random() < 0.5:
                labels[index] = 1.0
                corrupted.append(trajectory)
            else:
                fake = trajectory.copy()
                length = len(fake)
                span = max(length // 4, 1)
                start = int(self._rng.integers(0, max(length - span, 1)))
                replacement = [
                    int(road_ids[int(self._rng.integers(len(road_ids)))]) for _ in range(span)
                ]
                fake.roads = fake.roads[:start] + replacement + fake.roads[start + span :]
                corrupted.append(fake)
        batch = builder.build(corrupted, span_mask=False)
        _, pooled = self.forward(batch)
        logits = self.discrimination_head(pooled).reshape(len(chunk))
        return binary_cross_entropy_with_logits(logits, labels)

    def _objective(self, builder, chunk):
        mlm = self._mlm_loss(builder.build(chunk, span_mask=True))
        return mlm + self._discrimination_loss(builder, chunk)
