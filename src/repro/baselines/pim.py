"""PIM (Yang et al., IJCAI 2021): unsupervised path representation learning.

The original PIM learns road embeddings with node2vec and trains an LSTM
encoder by maximising mutual information between a path representation and
its constituent road representations (with curriculum negative sampling).
This reimplementation keeps the two-stage structure — node2vec-initialised
road embeddings feeding an LSTM encoder — and uses an InfoNCE objective
between the pooled trajectory representation and the mean road embedding of
the same trajectory, with in-batch negatives.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SequenceEncoderBaseline
from repro.core import tokens as tok
from repro.core.batching import TrajectoryBatch
from repro.core.config import StartConfig
from repro.nn import (
    LSTM,
    AdamW,
    BatchIterator,
    Tensor,
    clip_grad_norm,
    info_nce_loss,
)
from repro.roadnet.network import RoadNetwork
from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng


class PIM(SequenceEncoderBaseline):
    """LSTM encoder trained with mutual-information maximisation."""

    name = "PIM"

    def __init__(
        self,
        network: RoadNetwork,
        config: StartConfig | None = None,
        road_embeddings: np.ndarray | None = None,
    ) -> None:
        super().__init__(network, config, road_embeddings)
        rng = get_rng(self.config.seed + 30)
        self.encoder = LSTM(self.config.d_model, self.config.d_model, rng=rng)
        self._rng = rng

    def forward(self, batch: TrajectoryBatch) -> tuple[Tensor, Tensor]:
        embedded = self._embed_tokens(batch)
        hidden_states, final = self.encoder(embedded, lengths=batch.lengths)
        return hidden_states, final

    def _loss(self, batch: TrajectoryBatch):
        _, pooled = self.forward(batch)
        embedded = self._embed_tokens(batch)
        road_mask = (batch.tokens >= tok.NUM_SPECIAL_TOKENS).astype(np.float32)
        weights = road_mask / np.maximum(road_mask.sum(axis=1, keepdims=True), 1.0)
        keys = (embedded * Tensor(weights[:, :, None])).sum(axis=1)
        return info_nce_loss(pooled, keys, np.arange(batch.batch_size))

    def pretrain(self, trajectories: list[Trajectory], epochs: int | None = None) -> list[float]:
        if len(trajectories) < 2:
            raise ValueError("pre-training needs at least two trajectories")
        epochs = epochs if epochs is not None else self.config.pretrain_epochs
        builder = self.make_builder(rng=self._rng)
        optimizer = AdamW(
            self.parameters(), lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )
        history: list[float] = []
        self.train()
        for _ in range(epochs):
            iterator = BatchIterator(
                len(trajectories), self.config.batch_size, shuffle=True, rng=self._rng
            )
            total, steps = 0.0, 0
            for indices in iterator:
                chunk = [trajectories[i] for i in indices]
                if len(chunk) < 2:
                    continue
                batch = builder.build(chunk, span_mask=False)
                optimizer.zero_grad()
                loss = self._loss(batch)
                loss.backward()
                clip_grad_norm(self.parameters(), self.config.gradient_clip)
                optimizer.step()
                total += loss.item()
                steps += 1
            history.append(total / max(steps, 1))
        self.eval()
        return history
