"""Baseline registry: build any of the paper's comparison models by name.

The experiment runners (Table II, Figures 4 and 10) iterate over this
registry so adding a new baseline automatically includes it everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.node2vec import Node2VecConfig, node2vec_embeddings
from repro.baselines.pim import PIM
from repro.baselines.rnn_models import T2Vec, Traj2Vec, Trembr
from repro.baselines.transformer_models import BERTBaseline, PIMTF, Toast, TransformerMLM
from repro.core.config import StartConfig
from repro.roadnet.network import RoadNetwork

#: Names in the order they appear in Table II of the paper.
BASELINE_NAMES = (
    "traj2vec",
    "t2vec",
    "Trembr",
    "Transformer",
    "BERT",
    "PIM",
    "PIM-TF",
    "Toast",
)

_NEEDS_NODE2VEC = {"PIM", "PIM-TF", "Toast"}

_CLASSES = {
    "traj2vec": Traj2Vec,
    "t2vec": T2Vec,
    "Trembr": Trembr,
    "Transformer": TransformerMLM,
    "BERT": BERTBaseline,
    "PIM": PIM,
    "PIM-TF": PIMTF,
    "Toast": Toast,
}


def build_baseline(
    name: str,
    network: RoadNetwork,
    config: StartConfig | None = None,
    node2vec_cache: dict[int, np.ndarray] | None = None,
):
    """Instantiate a baseline by its Table II name.

    ``node2vec_cache`` (keyed by ``id(network)``) avoids recomputing the road
    embeddings when several two-stage baselines run on the same network.
    """
    if name not in _CLASSES:
        raise ValueError(f"unknown baseline '{name}', expected one of {BASELINE_NAMES}")
    config = config or StartConfig()
    road_embeddings = None
    if name in _NEEDS_NODE2VEC:
        if node2vec_cache is not None and id(network) in node2vec_cache:
            road_embeddings = node2vec_cache[id(network)]
        else:
            road_embeddings = node2vec_embeddings(
                network, Node2VecConfig(dimensions=config.d_model, seed=config.seed)
            )
            if node2vec_cache is not None:
                node2vec_cache[id(network)] = road_embeddings
    return _CLASSES[name](network, config, road_embeddings=road_embeddings)
