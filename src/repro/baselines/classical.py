"""Classical trajectory similarity measures: DTW, LCSS, discrete Fréchet, EDR.

These are the non-learned comparators of Figure 10: pairwise measures with
``O(L^2)`` cost per comparison, operating directly on the coordinate sequences
of trajectories (road-segment midpoints in this reproduction).  They provide
both the efficiency contrast (representation distance is ``O(d)``) and an
accuracy reference for the most-similar-search experiment.
"""

from __future__ import annotations

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.trajectory.types import Trajectory


def trajectory_coordinates(network: RoadNetwork, trajectory: Trajectory) -> np.ndarray:
    """``(n, 2)`` midpoint coordinates of the trajectory's road segments."""
    return np.array([network.segment(r).midpoint for r in trajectory.roads], dtype=np.float64)


def dtw_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Dynamic time warping distance between two coordinate sequences."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return np.inf
    cost = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=-1)
    table = np.full((n + 1, m + 1), np.inf)
    table[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            table[i, j] = cost[i - 1, j - 1] + min(
                table[i - 1, j], table[i, j - 1], table[i - 1, j - 1]
            )
    return float(table[n, m])


def lcss_distance(a: np.ndarray, b: np.ndarray, epsilon: float = 100.0) -> float:
    """LCSS-based distance: ``1 - LCSS / min(n, m)`` (smaller is more similar)."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return 1.0
    table = np.zeros((n + 1, m + 1), dtype=np.int64)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if np.linalg.norm(a[i - 1] - b[j - 1]) <= epsilon:
                table[i, j] = table[i - 1, j - 1] + 1
            else:
                table[i, j] = max(table[i - 1, j], table[i, j - 1])
    return float(1.0 - table[n, m] / min(n, m))


def frechet_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Discrete Fréchet distance between two coordinate sequences."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return np.inf
    cost = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=-1)
    table = np.full((n, m), -1.0)
    table[0, 0] = cost[0, 0]
    for i in range(1, n):
        table[i, 0] = max(table[i - 1, 0], cost[i, 0])
    for j in range(1, m):
        table[0, j] = max(table[0, j - 1], cost[0, j])
    for i in range(1, n):
        for j in range(1, m):
            table[i, j] = max(min(table[i - 1, j], table[i - 1, j - 1], table[i, j - 1]), cost[i, j])
    return float(table[n - 1, m - 1])


def edr_distance(a: np.ndarray, b: np.ndarray, epsilon: float = 100.0) -> float:
    """Edit distance on real sequences, normalised by the longer length."""
    n, m = len(a), len(b)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return 1.0
    table = np.zeros((n + 1, m + 1), dtype=np.int64)
    table[:, 0] = np.arange(n + 1)
    table[0, :] = np.arange(m + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            substitution = 0 if np.linalg.norm(a[i - 1] - b[j - 1]) <= epsilon else 1
            table[i, j] = min(
                table[i - 1, j - 1] + substitution,
                table[i - 1, j] + 1,
                table[i, j - 1] + 1,
            )
    return float(table[n, m] / max(n, m))


CLASSICAL_MEASURES = {
    "DTW": dtw_distance,
    "LCSS": lcss_distance,
    "Frechet": frechet_distance,
    "EDR": edr_distance,
}


class ClassicalSimilarity:
    """Convenience wrapper: distance between two trajectories by measure name."""

    def __init__(self, network: RoadNetwork, measure: str = "DTW") -> None:
        if measure not in CLASSICAL_MEASURES:
            raise ValueError(f"unknown measure '{measure}', expected one of {sorted(CLASSICAL_MEASURES)}")
        self.network = network
        self.measure = measure
        self._function = CLASSICAL_MEASURES[measure]
        self._cache: dict[int, np.ndarray] = {}

    def _coords(self, trajectory: Trajectory) -> np.ndarray:
        key = id(trajectory)
        if key not in self._cache:
            self._cache[key] = trajectory_coordinates(self.network, trajectory)
        return self._cache[key]

    def distance(self, first: Trajectory, second: Trajectory) -> float:
        return float(self._function(self._coords(first), self._coords(second)))

    def distances_to_database(self, query: Trajectory, database: list[Trajectory]) -> np.ndarray:
        """Distances from one query to every trajectory in the database."""
        return np.array([self.distance(query, other) for other in database], dtype=np.float64)
