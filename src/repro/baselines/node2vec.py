"""node2vec road-segment embeddings (Grover & Leskovec, 2016).

PIM and Toast initialise their road embeddings with node2vec over the static
road network; the ``w/ Node2vec`` ablation of START does the same.  The
implementation is self-contained: biased second-order random walks over the
road-segment graph followed by skip-gram training with negative sampling.
The skip-gram step uses plain NumPy SGD (no autodiff) because the objective
factorises per pair and is much faster that way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.utils.seeding import get_rng


@dataclass
class Node2VecConfig:
    """Hyper-parameters of random walks and skip-gram training."""

    dimensions: int = 64
    walk_length: int = 20
    walks_per_node: int = 5
    window: int = 3
    p: float = 1.0   # return parameter
    q: float = 1.0   # in-out parameter
    negatives: int = 4
    epochs: int = 2
    learning_rate: float = 0.025
    seed: int = 0


def generate_walks(network: RoadNetwork, config: Node2VecConfig) -> list[list[int]]:
    """Biased second-order random walks over the road graph."""
    rng = get_rng(config.seed)
    walks: list[list[int]] = []
    nodes = network.road_ids()
    for _ in range(config.walks_per_node):
        order = list(nodes)
        rng.shuffle(order)
        for start in order:
            walk = [start]
            while len(walk) < config.walk_length:
                current = walk[-1]
                neighbours = network.successors(current)
                if not neighbours:
                    break
                if len(walk) == 1:
                    walk.append(int(neighbours[int(rng.integers(len(neighbours)))]))
                    continue
                previous = walk[-2]
                weights = np.empty(len(neighbours), dtype=np.float64)
                for index, candidate in enumerate(neighbours):
                    if candidate == previous:
                        weights[index] = 1.0 / config.p
                    elif network.is_connected_pair(previous, candidate):
                        weights[index] = 1.0
                    else:
                        weights[index] = 1.0 / config.q
                weights /= weights.sum()
                walk.append(int(rng.choice(neighbours, p=weights)))
            if len(walk) > 1:
                walks.append(walk)
    return walks


def train_skipgram(
    walks: list[list[int]], num_nodes: int, config: Node2VecConfig
) -> np.ndarray:
    """Skip-gram with negative sampling over the random walks."""
    rng = get_rng(config.seed + 1)
    dim = config.dimensions
    embeddings = (rng.random((num_nodes, dim)) - 0.5) / dim
    context = np.zeros((num_nodes, dim))

    # Negative sampling distribution ~ frequency^0.75.
    frequency = np.zeros(num_nodes)
    for walk in walks:
        for node in walk:
            frequency[node] += 1
    frequency = np.maximum(frequency, 1e-3) ** 0.75
    frequency /= frequency.sum()

    lr = config.learning_rate
    for _ in range(config.epochs):
        for walk in walks:
            for position, centre in enumerate(walk):
                lo = max(position - config.window, 0)
                hi = min(position + config.window + 1, len(walk))
                for other in range(lo, hi):
                    if other == position:
                        continue
                    target = walk[other]
                    negatives = rng.choice(num_nodes, size=config.negatives, p=frequency)
                    samples = np.concatenate(([target], negatives))
                    labels = np.zeros(len(samples))
                    labels[0] = 1.0
                    centre_vec = embeddings[centre]
                    ctx = context[samples]                      # (k, dim)
                    scores = 1.0 / (1.0 + np.exp(-ctx @ centre_vec))
                    gradient = (scores - labels)[:, None]       # (k, 1)
                    grad_centre = (gradient * ctx).sum(axis=0)
                    context[samples] -= lr * gradient * centre_vec
                    embeddings[centre] -= lr * grad_centre
    return embeddings.astype(np.float32)


def node2vec_embeddings(network: RoadNetwork, config: Node2VecConfig | None = None) -> np.ndarray:
    """End-to-end node2vec: walks + skip-gram, returning ``(V, dim)`` embeddings."""
    config = config or Node2VecConfig()
    walks = generate_walks(network, config)
    if not walks:
        rng = get_rng(config.seed)
        return ((rng.random((network.num_roads, config.dimensions)) - 0.5) / config.dimensions).astype(
            np.float32
        )
    return train_skipgram(walks, network.num_roads, config)
