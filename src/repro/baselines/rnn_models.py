"""RNN encoder-decoder baselines: traj2vec, t2vec and Trembr.

These are the "encoder-decoder with reconstruction" family of the paper
(Section IV-B, category 1).  All three share a GRU encoder whose final hidden
state is the trajectory representation and a GRU decoder trained with teacher
forcing; they differ in what the decoder reconstructs:

* **traj2vec** — reconstructs the road sequence from the original input
  (plain sequence-to-sequence autoencoder over feature sequences);
* **t2vec** — denoising: the encoder sees a *downsampled* trajectory but the
  decoder must reconstruct the full road sequence;
* **Trembr** — reconstructs the road sequence *and* the per-road travel time,
  which is why it is the strongest baseline in the paper: it is the only one
  that uses temporal information.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SequenceEncoderBaseline
from repro.core import tokens as tok
from repro.core.batching import TrajectoryBatch
from repro.core.config import StartConfig
from repro.nn import (
    GRU,
    AdamW,
    BatchIterator,
    Linear,
    Tensor,
    clip_grad_norm,
    cross_entropy,
    mse_loss,
)
from repro.roadnet.network import RoadNetwork
from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng


class _RNNSeq2SeqBaseline(SequenceEncoderBaseline):
    """Common GRU encoder-decoder machinery."""

    #: Whether the decoder also regresses the time interval to the next road.
    reconstruct_time = False
    #: Probability of dropping each input position (t2vec's denoising input).
    input_drop_probability = 0.0

    def __init__(
        self,
        network: RoadNetwork,
        config: StartConfig | None = None,
        road_embeddings: np.ndarray | None = None,
    ) -> None:
        super().__init__(network, config, road_embeddings)
        rng = get_rng(self.config.seed + 10)
        d = self.config.d_model
        self.encoder = GRU(d, d, rng=rng)
        self.decoder = GRU(d, d, rng=rng)
        self.output_head = Linear(d, self.num_roads, rng=rng)
        self.time_head = Linear(d, 1, rng=rng) if self.reconstruct_time else None
        self._rng = rng

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def forward(self, batch: TrajectoryBatch) -> tuple[Tensor, Tensor]:
        embedded = self._embed_tokens(batch)
        hidden_states, final = self.encoder(embedded, lengths=batch.lengths)
        return hidden_states, final

    # ------------------------------------------------------------------ #
    # Pre-training (reconstruction)
    # ------------------------------------------------------------------ #
    def _corrupt_tokens(self, tokens: np.ndarray, padding_mask: np.ndarray) -> np.ndarray:
        """Randomly drop input roads (replace by [PAD]) for denoising models."""
        if self.input_drop_probability <= 0:
            return tokens
        corrupted = tokens.copy()
        drop = (self._rng.random(tokens.shape) < self.input_drop_probability) & ~padding_mask
        drop[:, 0] = False  # keep [CLS]
        corrupted[drop] = tok.PAD_TOKEN
        return corrupted

    def _reconstruction_loss(self, batch: TrajectoryBatch):
        corrupted = self._corrupt_tokens(batch.tokens, batch.padding_mask)
        embedded = self.token_embedding(corrupted)
        _, final = self.encoder(embedded, lengths=batch.lengths)

        # Teacher forcing: decoder input is the (uncorrupted) sequence shifted
        # right, its initial hidden state is the trajectory representation.
        decoder_inputs = self.token_embedding(batch.tokens[:, :-1])
        decoder_states, _ = self.decoder(decoder_inputs, initial=final)
        logits = self.output_head(decoder_states)

        targets = self._road_targets(batch)[:, 1:]
        flat_logits = logits.reshape(-1, self.num_roads)
        loss = cross_entropy(flat_logits, targets.reshape(-1), ignore_index=tok.IGNORE_LABEL)

        if self.reconstruct_time and self.time_head is not None:
            intervals = np.diff(batch.timestamps, axis=1)  # (B, L-1)
            valid = ~batch.padding_mask[:, 1:]
            scale = 60.0  # learn minutes rather than raw seconds
            predicted = self.time_head(decoder_states).reshape(intervals.shape)
            masked_prediction = predicted * Tensor(valid.astype(np.float32))
            masked_target = (intervals / scale) * valid
            loss = loss + 0.5 * mse_loss(masked_prediction, masked_target)
        return loss

    def pretrain(self, trajectories: list[Trajectory], epochs: int | None = None) -> list[float]:
        if len(trajectories) < 2:
            raise ValueError("pre-training needs at least two trajectories")
        epochs = epochs if epochs is not None else self.config.pretrain_epochs
        builder = self.make_builder(rng=self._rng)
        optimizer = AdamW(
            self.parameters(), lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )
        history: list[float] = []
        self.train()
        for _ in range(epochs):
            iterator = BatchIterator(
                len(trajectories), self.config.batch_size, shuffle=True, rng=self._rng
            )
            total, steps = 0.0, 0
            for indices in iterator:
                chunk = [trajectories[i] for i in indices]
                batch = builder.build(chunk, span_mask=False)
                optimizer.zero_grad()
                loss = self._reconstruction_loss(batch)
                loss.backward()
                clip_grad_norm(self.parameters(), self.config.gradient_clip)
                optimizer.step()
                total += loss.item()
                steps += 1
            history.append(total / max(steps, 1))
        self.eval()
        return history


class Traj2Vec(_RNNSeq2SeqBaseline):
    """traj2vec (Yao et al., 2017): plain seq2seq reconstruction."""

    name = "traj2vec"


class T2Vec(_RNNSeq2SeqBaseline):
    """t2vec (Li et al., 2018): denoising seq2seq reconstruction."""

    name = "t2vec"
    input_drop_probability = 0.2


class Trembr(_RNNSeq2SeqBaseline):
    """Trembr (Fu & Lee, 2020): reconstructs roads and their travel times."""

    name = "Trembr"
    reconstruct_time = True
