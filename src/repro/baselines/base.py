"""Shared infrastructure for the baseline trajectory encoders.

Every learned baseline implements the same interface as
:class:`~repro.core.model.STARTModel`:

* ``forward(batch) -> (sequence_output, pooled)``;
* ``encode(trajectories) -> (N, d) ndarray``;
* ``make_builder() -> BatchBuilder``;
* ``pretrain(trajectories, epochs) -> list of per-epoch losses``.

Because the interface matches, the downstream fine-tuning heads
(:class:`~repro.core.finetuning.TravelTimeEstimator` and
:class:`~repro.core.finetuning.TrajectoryClassifier`) and the similarity
search harness work unchanged for START and for every baseline, which is
exactly how the paper's Table II is produced.
"""

from __future__ import annotations

import numpy as np

from repro.core.batching import BatchBuilder, TrajectoryBatch
from repro.core.config import StartConfig
from repro.core import tokens as tok
from repro.nn import Embedding, Module, Tensor, no_grad
from repro.roadnet.network import RoadNetwork
from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng


class SequenceEncoderBaseline(Module):
    """Base class: token embedding + common encode/builder plumbing."""

    name = "baseline"

    def __init__(
        self,
        network: RoadNetwork,
        config: StartConfig | None = None,
        road_embeddings: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        self.config = config or StartConfig()
        self.network = network
        self.num_roads = network.num_roads
        rng = get_rng(self.config.seed)
        self.token_embedding = Embedding(
            tok.vocabulary_size(self.num_roads), self.config.d_model, padding_idx=tok.PAD_TOKEN, rng=rng
        )
        if road_embeddings is not None:
            if road_embeddings.shape != (self.num_roads, self.config.d_model):
                raise ValueError(
                    "road_embeddings must have shape (num_roads, d_model); "
                    f"got {road_embeddings.shape}"
                )
            self.token_embedding.weight.data[tok.NUM_SPECIAL_TOKENS :] = road_embeddings.astype(
                np.float32
            )

    # ------------------------------------------------------------------ #
    # Interface shared with STARTModel
    # ------------------------------------------------------------------ #
    def make_builder(self, rng: np.random.Generator | None = None) -> BatchBuilder:
        return BatchBuilder(
            num_roads=self.num_roads,
            max_length=self.config.max_trajectory_length,
            mask_ratio=self.config.mask_ratio,
            mask_length=1,  # baselines use token-level masking, not spans
            rng=rng if rng is not None else get_rng(self.config.seed),
        )

    def forward(self, batch: TrajectoryBatch) -> tuple[Tensor, Tensor]:
        raise NotImplementedError

    def pretrain(self, trajectories: list[Trajectory], epochs: int | None = None) -> list[float]:
        raise NotImplementedError

    def encode(
        self,
        trajectories: list[Trajectory],
        batch_size: int | None = None,
        time_mode: str = "full",
    ) -> np.ndarray:
        """Encode trajectories into ``(N, d)`` vectors without gradients."""
        if not trajectories:
            return np.zeros((0, self.config.d_model), dtype=np.float32)
        batch_size = batch_size or self.config.batch_size
        builder = self.make_builder()
        was_training = self.training
        self.eval()
        outputs: list[np.ndarray] = []
        with no_grad():
            for start in range(0, len(trajectories), batch_size):
                chunk = trajectories[start : start + batch_size]
                batch = builder.build(chunk, span_mask=False, time_mode=time_mode)
                _, pooled = self.forward(batch)
                outputs.append(pooled.data.astype(np.float32))
        if was_training:
            self.train()
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------ #
    # Helpers shared by subclasses
    # ------------------------------------------------------------------ #
    def _embed_tokens(self, batch: TrajectoryBatch) -> Tensor:
        """(B, L, d) token embeddings (no positional or temporal information)."""
        return self.token_embedding(batch.tokens)

    @staticmethod
    def _road_targets(batch: TrajectoryBatch) -> np.ndarray:
        """Per-position road-id targets (IGNORE_LABEL on [CLS], [PAD] and specials)."""
        targets = np.full(batch.tokens.shape, tok.IGNORE_LABEL, dtype=np.int64)
        is_road = batch.tokens >= tok.NUM_SPECIAL_TOKENS
        targets[is_road] = batch.tokens[is_road] - tok.NUM_SPECIAL_TOKENS
        return targets
