"""`repro.baselines` — every comparison method of the paper's evaluation.

Learned baselines (all expose the same interface as ``STARTModel``):
traj2vec, t2vec, Trembr, Transformer (MLM), BERT, PIM, PIM-TF and Toast.
Classical similarity measures: DTW, LCSS, discrete Fréchet and EDR.
"""

from repro.baselines.base import SequenceEncoderBaseline
from repro.baselines.node2vec import Node2VecConfig, generate_walks, node2vec_embeddings, train_skipgram
from repro.baselines.rnn_models import T2Vec, Traj2Vec, Trembr
from repro.baselines.transformer_models import BERTBaseline, PIMTF, Toast, TransformerMLM
from repro.baselines.pim import PIM
from repro.baselines.classical import (
    CLASSICAL_MEASURES,
    ClassicalSimilarity,
    dtw_distance,
    edr_distance,
    frechet_distance,
    lcss_distance,
    trajectory_coordinates,
)
from repro.baselines.registry import BASELINE_NAMES, build_baseline

__all__ = [
    "SequenceEncoderBaseline",
    "Node2VecConfig",
    "node2vec_embeddings",
    "generate_walks",
    "train_skipgram",
    "Traj2Vec",
    "T2Vec",
    "Trembr",
    "TransformerMLM",
    "BERTBaseline",
    "PIMTF",
    "Toast",
    "PIM",
    "CLASSICAL_MEASURES",
    "ClassicalSimilarity",
    "dtw_distance",
    "lcss_distance",
    "frechet_distance",
    "edr_distance",
    "trajectory_coordinates",
    "BASELINE_NAMES",
    "build_baseline",
]
