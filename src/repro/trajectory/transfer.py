"""Road transfer-probability matrix (Equation 2 of the paper).

``p_trans[i, j] = count(v_i -> v_j) / count(v_i)`` computed from the training
trajectories.  This is the travel-semantics signal that TPE-GAT injects into
its attention scores; the ablation ``w/o TransProb`` simply passes a zero
matrix instead.
"""

from __future__ import annotations

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.trajectory.types import Trajectory


def transfer_probability_matrix(
    network: RoadNetwork, trajectories: list[Trajectory], smoothing: float = 0.0
) -> np.ndarray:
    """Dense ``(|V|, |V|)`` transfer probability matrix from historical data.

    Parameters
    ----------
    network:
        The road network (defines the matrix size and valid road ids).
    trajectories:
        Historical (training) trajectories; only transitions between roads
        that actually appear are counted.
    smoothing:
        Optional additive smoothing applied to edges of the road network, so
        that connected-but-unvisited edges receive a small probability.
    """
    num_roads = network.num_roads
    counts = np.zeros((num_roads, num_roads), dtype=np.float64)
    for trajectory in trajectories:
        for source, target in zip(trajectory.roads, trajectory.roads[1:]):
            counts[source, target] += 1.0
    if smoothing > 0:
        for source, target in network.edges:
            counts[source, target] += smoothing
    totals = counts.sum(axis=1, keepdims=True)
    totals[totals == 0.0] = 1.0
    return (counts / totals).astype(np.float32)


def visit_frequencies(network: RoadNetwork, trajectories: list[Trajectory]) -> np.ndarray:
    """Normalised road visit frequencies (for diagnostics and Figure 1(a))."""
    counts = np.zeros(network.num_roads, dtype=np.float64)
    for trajectory in trajectories:
        for road in trajectory.roads:
            counts[road] += 1.0
    total = counts.sum()
    if total > 0:
        counts /= total
    return counts


def edge_transfer_probabilities(
    network: RoadNetwork, trajectories: list[Trajectory], smoothing: float = 0.0
) -> dict[tuple[int, int], float]:
    """Sparse view of the transfer probabilities restricted to network edges.

    TPE-GAT only needs ``p_trans`` for pairs that are neighbours in the road
    graph; this sparse form avoids materialising the dense matrix for large
    networks.
    """
    matrix = transfer_probability_matrix(network, trajectories, smoothing=smoothing)
    return {(a, b): float(matrix[a, b]) for a, b in network.edges}
