"""Trajectory dataset container, preprocessing and chronological splits.

Implements the preprocessing rules of Section IV-A of the paper: loop
trajectories are removed, trajectories shorter than six roads are removed,
users with fewer than a minimum number of trajectories are removed, and the
maximum trajectory length is capped at 128.  Splitting is chronological
(train / validation / test), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.trajectory.types import Trajectory, hour_of_day, is_weekend


@dataclass
class PreprocessConfig:
    """Filtering rules applied before training."""

    min_length: int = 6
    max_length: int = 128
    min_trajectories_per_user: int = 5
    remove_loops: bool = True


@dataclass
class DatasetSplit:
    """Indices of the chronological train/validation/test split."""

    train: list[int] = field(default_factory=list)
    validation: list[int] = field(default_factory=list)
    test: list[int] = field(default_factory=list)


class TrajectoryDataset:
    """A collection of road-network constrained trajectories over one network."""

    def __init__(
        self,
        network: RoadNetwork,
        trajectories: list[Trajectory],
        name: str = "synthetic",
    ) -> None:
        self.network = network
        self.trajectories = list(trajectories)
        self.name = name
        self._split: DatasetSplit | None = None

    def __len__(self) -> int:
        return len(self.trajectories)

    def __getitem__(self, index: int) -> Trajectory:
        return self.trajectories[index]

    def __iter__(self):
        return iter(self.trajectories)

    # ------------------------------------------------------------------ #
    # Preprocessing
    # ------------------------------------------------------------------ #
    def preprocess(self, config: PreprocessConfig | None = None) -> "TrajectoryDataset":
        """Return a new dataset with the paper's filtering rules applied."""
        config = config or PreprocessConfig()
        kept: list[Trajectory] = []
        for trajectory in self.trajectories:
            if len(trajectory) < config.min_length:
                continue
            if config.remove_loops and trajectory.has_loop():
                continue
            if len(trajectory) > config.max_length:
                trajectory = trajectory.copy()
                trajectory.roads = trajectory.roads[: config.max_length]
                trajectory.timestamps = trajectory.timestamps[: config.max_length]
            kept.append(trajectory)
        # Drop users with too few trajectories.
        counts: dict[int, int] = {}
        for trajectory in kept:
            counts[trajectory.user_id] = counts.get(trajectory.user_id, 0) + 1
        kept = [t for t in kept if counts[t.user_id] >= config.min_trajectories_per_user]
        return TrajectoryDataset(self.network, kept, name=self.name)

    def covered_roads(self) -> set[int]:
        """Road ids visited by at least one trajectory."""
        covered: set[int] = set()
        for trajectory in self.trajectories:
            covered.update(trajectory.roads)
        return covered

    # ------------------------------------------------------------------ #
    # Splits
    # ------------------------------------------------------------------ #
    def chronological_split(
        self, train_fraction: float = 0.6, validation_fraction: float = 0.2
    ) -> DatasetSplit:
        """Split indices by departure time (train = earliest trajectories)."""
        if not 0 < train_fraction < 1 or not 0 <= validation_fraction < 1:
            raise ValueError("fractions must lie in (0, 1)")
        if train_fraction + validation_fraction >= 1.0:
            raise ValueError("train + validation fractions must leave room for test")
        order = np.argsort([t.departure_time for t in self.trajectories])
        n = len(order)
        train_end = int(n * train_fraction)
        val_end = int(n * (train_fraction + validation_fraction))
        split = DatasetSplit(
            train=[int(i) for i in order[:train_end]],
            validation=[int(i) for i in order[train_end:val_end]],
            test=[int(i) for i in order[val_end:]],
        )
        self._split = split
        return split

    @property
    def split(self) -> DatasetSplit:
        if self._split is None:
            self.chronological_split()
        return self._split

    def subset(self, indices: list[int]) -> list[Trajectory]:
        return [self.trajectories[i] for i in indices]

    def train_trajectories(self) -> list[Trajectory]:
        return self.subset(self.split.train)

    def validation_trajectories(self) -> list[Trajectory]:
        return self.subset(self.split.validation)

    def test_trajectories(self) -> list[Trajectory]:
        return self.subset(self.split.test)

    # ------------------------------------------------------------------ #
    # Statistics (Table I / Figure 1 reproductions)
    # ------------------------------------------------------------------ #
    def statistics(self) -> dict:
        """Summary statistics mirroring Table I of the paper."""
        users = {t.user_id for t in self.trajectories}
        lengths = np.array([len(t) for t in self.trajectories]) if self.trajectories else np.zeros(1)
        durations = (
            np.array([t.travel_time for t in self.trajectories]) if self.trajectories else np.zeros(1)
        )
        split = self.split
        return {
            "name": self.name,
            "num_trajectories": len(self.trajectories),
            "num_users": len(users),
            "num_roads": self.network.num_roads,
            "num_covered_roads": len(self.covered_roads()),
            "mean_length": float(lengths.mean()),
            "max_length": int(lengths.max()),
            "mean_travel_time_s": float(durations.mean()),
            "train/eval/test": (len(split.train), len(split.validation), len(split.test)),
        }

    def hourly_counts(self, weekend: bool | None = None) -> np.ndarray:
        """Number of trajectories departing in each hour of day (Figure 1(b))."""
        counts = np.zeros(24, dtype=np.int64)
        for trajectory in self.trajectories:
            if weekend is not None and is_weekend(trajectory.departure_time) != weekend:
                continue
            counts[hour_of_day(trajectory.departure_time)] += 1
        return counts

    def daily_counts(self) -> np.ndarray:
        """Number of trajectories per day-of-week, Monday first (Figure 1(b))."""
        counts = np.zeros(7, dtype=np.int64)
        for trajectory in self.trajectories:
            counts[trajectory.day_indices()[0] - 1] += 1
        return counts

    def interval_distribution(self) -> np.ndarray:
        """All consecutive-road time intervals in seconds (Figure 1(c))."""
        intervals: list[float] = []
        for trajectory in self.trajectories:
            times = np.asarray(trajectory.timestamps)
            intervals.extend(np.diff(times).tolist())
        return np.array(intervals, dtype=np.float64)

    def road_visit_counts(self) -> np.ndarray:
        """Visit count per road id (travel-semantics statistic, Figure 1(a))."""
        counts = np.zeros(self.network.num_roads, dtype=np.int64)
        for trajectory in self.trajectories:
            for road in trajectory.roads:
                counts[road] += 1
        return counts
