"""Persistence of trajectory datasets (JSON-lines + the network CSVs).

A dataset directory contains the road network (written via
:mod:`repro.roadnet.io`) and a ``trajectories.jsonl`` file with one trajectory
per line, which keeps the format debuggable with standard tools.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.roadnet.io import load_network, save_network
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.types import Trajectory


def save_dataset(dataset: TrajectoryDataset, directory: str | Path) -> Path:
    """Write the dataset (network + trajectories) under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_network(dataset.network, directory / "network")
    with open(directory / "trajectories.jsonl", "w") as handle:
        for trajectory in dataset.trajectories:
            record = {
                "roads": trajectory.roads,
                "timestamps": trajectory.timestamps,
                "user_id": trajectory.user_id,
                "occupied": trajectory.occupied,
                "mode": trajectory.mode,
                "trajectory_id": trajectory.trajectory_id,
            }
            handle.write(json.dumps(record) + "\n")
    with open(directory / "meta.json", "w") as handle:
        json.dump({"name": dataset.name}, handle)
    return directory


def load_dataset(directory: str | Path) -> TrajectoryDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    network = load_network(directory / "network")
    trajectories: list[Trajectory] = []
    with open(directory / "trajectories.jsonl") as handle:
        for line in handle:
            record = json.loads(line)
            trajectories.append(
                Trajectory(
                    roads=[int(r) for r in record["roads"]],
                    timestamps=[float(t) for t in record["timestamps"]],
                    user_id=int(record["user_id"]),
                    occupied=int(record["occupied"]),
                    mode=record.get("mode", "car"),
                    trajectory_id=int(record["trajectory_id"]),
                )
            )
    name = "synthetic"
    meta_path = directory / "meta.json"
    if meta_path.exists():
        with open(meta_path) as handle:
            name = json.load(handle).get("name", name)
    return TrajectoryDataset(network, trajectories, name=name)
