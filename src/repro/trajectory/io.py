"""Persistence of trajectory datasets (JSON-lines + the network CSVs).

A dataset directory contains the road network (written via
:mod:`repro.roadnet.io`) and a ``trajectories.jsonl`` file with one trajectory
per line, which keeps the format debuggable with standard tools.

The JSONL format is also the ingestion wire format of the streaming layer
(:mod:`repro.streaming`): producers append records with
:func:`append_trajectories` and consumers tail the file incrementally, so the
record codec lives here — :func:`trajectory_record` /
:func:`parse_trajectory_record` — and both batch and streaming paths share it.
Blank lines are tolerated (a crashed producer may leave one); corrupt records
raise a :class:`ValueError` naming the source and line number instead of
letting a bare ``json.loads`` traceback escape.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.roadnet.io import load_network, save_network
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.types import Trajectory


def trajectory_record(trajectory: Trajectory) -> dict:
    """The JSON-serialisable record for one trajectory (one JSONL line)."""
    return {
        "roads": trajectory.roads,
        "timestamps": trajectory.timestamps,
        "user_id": trajectory.user_id,
        "occupied": trajectory.occupied,
        "mode": trajectory.mode,
        "trajectory_id": trajectory.trajectory_id,
    }


def parse_trajectory_record(
    line: str,
    *,
    source: str = "<record>",
    line_number: int | None = None,
) -> Trajectory | None:
    """Decode one JSONL line into a :class:`Trajectory`.

    Returns ``None`` for blank lines.  Corrupt JSON or a record missing
    required fields raises a :class:`ValueError` that names ``source`` and the
    1-based ``line_number`` so the offending line can be found with ``sed``.
    """
    stripped = line.strip()
    if not stripped:
        return None
    where = f"{source}, line {line_number}" if line_number is not None else source
    try:
        record = json.loads(stripped)
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt JSONL trajectory record at {where}: {exc}") from None
    try:
        return Trajectory(
            roads=[int(r) for r in record["roads"]],
            timestamps=[float(t) for t in record["timestamps"]],
            user_id=int(record["user_id"]),
            occupied=int(record["occupied"]),
            mode=record.get("mode", "car"),
            trajectory_id=int(record["trajectory_id"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"invalid trajectory record at {where}: {exc!r}") from None


def iter_trajectory_records(path: str | Path) -> Iterator[Trajectory]:
    """Stream trajectories out of a JSONL file, one at a time.

    Nothing is materialised beyond the current line, so arbitrarily large
    files can be consumed with O(1) memory; blank lines are skipped.
    """
    path = Path(path)
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            trajectory = parse_trajectory_record(
                line, source=str(path), line_number=line_number
            )
            if trajectory is not None:
                yield trajectory


def append_trajectories(path: str | Path, trajectories: Iterable[Trajectory]) -> int:
    """Append trajectories to a JSONL file (creating it if absent).

    This is the producer side of the streaming ingestion path; returns the
    number of records written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with open(path, "a") as handle:
        for trajectory in trajectories:
            handle.write(json.dumps(trajectory_record(trajectory)) + "\n")
            written += 1
    return written


def save_dataset(dataset: TrajectoryDataset, directory: str | Path) -> Path:
    """Write the dataset (network + trajectories) under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_network(dataset.network, directory / "network")
    with open(directory / "trajectories.jsonl", "w") as handle:
        for trajectory in dataset.trajectories:
            handle.write(json.dumps(trajectory_record(trajectory)) + "\n")
    with open(directory / "meta.json", "w") as handle:
        json.dump({"name": dataset.name}, handle)
    return directory


def load_dataset(directory: str | Path) -> TrajectoryDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    network = load_network(directory / "network")
    trajectories = list(iter_trajectory_records(directory / "trajectories.jsonl"))
    name = "synthetic"
    meta_path = directory / "meta.json"
    if meta_path.exists():
        with open(meta_path) as handle:
            name = json.load(handle).get("name", name)
    return TrajectoryDataset(network, trajectories, name=name)
