"""Trajectory datatypes (Definitions 2 and 3 of the paper).

Two kinds of trajectories exist in the pipeline:

* :class:`RawTrajectory` — a sequence of GPS sample points
  ``(lat/x, lon/y, timestamp)`` as recorded by a device;
* :class:`Trajectory` — a road-network constrained trajectory: a time-ordered
  sequence of adjacent road segments with a visit timestamp per segment,
  produced either directly by the simulator or by map matching a raw
  trajectory.

Timestamps are POSIX seconds; helper properties expose the minute-of-day
(1..1440) and day-of-week (1..7) indices that the Trajectory Time Pattern
Extraction module embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone

import numpy as np

SECONDS_PER_DAY = 86400
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY
#: Monday 2023-05-01 00:00 UTC — the epoch used by the synthetic datasets so
#: that day-of-week arithmetic is easy to reason about in tests.
REFERENCE_EPOCH = int(datetime(2023, 5, 1, tzinfo=timezone.utc).timestamp())


def minute_of_day(timestamp: float) -> int:
    """Minute index within the day, 1-based (1..1440) as in the paper."""
    seconds_into_day = int(timestamp) % SECONDS_PER_DAY
    return seconds_into_day // 60 + 1


def day_of_week(timestamp: float) -> int:
    """Day-of-week index, 1-based (1=Monday .. 7=Sunday)."""
    return int(datetime.fromtimestamp(int(timestamp), tz=timezone.utc).isoweekday())


def is_weekend(timestamp: float) -> bool:
    """Whether the timestamp falls on Saturday or Sunday."""
    return day_of_week(timestamp) >= 6


def hour_of_day(timestamp: float) -> int:
    """Hour of day 0..23."""
    return (int(timestamp) % SECONDS_PER_DAY) // 3600


@dataclass
class GPSPoint:
    """A single GPS sample ``⟨x, y, t⟩`` (planar coordinates in metres)."""

    x: float
    y: float
    timestamp: float


@dataclass
class RawTrajectory:
    """A GPS-based trajectory: the device-level record before map matching."""

    points: list[GPSPoint]
    user_id: int = 0
    trajectory_id: int = 0

    def __len__(self) -> int:
        return len(self.points)

    @property
    def duration(self) -> float:
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].timestamp - self.points[0].timestamp

    def coordinates(self) -> np.ndarray:
        """``(n, 2)`` array of x/y coordinates."""
        return np.array([[p.x, p.y] for p in self.points], dtype=np.float64)

    def timestamps(self) -> np.ndarray:
        return np.array([p.timestamp for p in self.points], dtype=np.float64)


@dataclass
class Trajectory:
    """A road-network constrained trajectory ``T = [⟨v_i, t_i⟩]``.

    Attributes
    ----------
    roads:
        Road-segment ids in visit order; consecutive roads are adjacent in the
        road network.
    timestamps:
        Visit timestamp (POSIX seconds) of each road; same length as ``roads``.
    user_id:
        Driver identity (classification label on synthetic-Porto).
    occupied:
        Whether the taxi carried a passenger (classification label on
        synthetic-BJ).
    mode:
        Transportation mode label (used by the synthetic-Geolife transfer
        dataset: car/walk/bike/bus).
    trajectory_id:
        Stable id used by the similarity-search ground truth.
    """

    roads: list[int]
    timestamps: list[float]
    user_id: int = 0
    occupied: int = 0
    mode: str = "car"
    trajectory_id: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.roads) != len(self.timestamps):
            raise ValueError("roads and timestamps must have equal length")

    def __len__(self) -> int:
        return len(self.roads)

    @property
    def hops(self) -> int:
        """Number of road segments (the paper's 'hop' count)."""
        return len(self.roads)

    @property
    def departure_time(self) -> float:
        return self.timestamps[0] if self.timestamps else 0.0

    @property
    def arrival_time(self) -> float:
        return self.timestamps[-1] if self.timestamps else 0.0

    @property
    def travel_time(self) -> float:
        """Total travel time in seconds (the regression target for ETA)."""
        return self.arrival_time - self.departure_time

    @property
    def origin(self) -> int:
        return self.roads[0]

    @property
    def destination(self) -> int:
        return self.roads[-1]

    def minute_indices(self) -> np.ndarray:
        """Per-road minute-of-day indices (1..1440)."""
        return np.array([minute_of_day(t) for t in self.timestamps], dtype=np.int64)

    def day_indices(self) -> np.ndarray:
        """Per-road day-of-week indices (1..7)."""
        return np.array([day_of_week(t) for t in self.timestamps], dtype=np.int64)

    def time_intervals(self) -> np.ndarray:
        """``(n, n)`` matrix of absolute time differences |t_i - t_j| in seconds."""
        times = np.asarray(self.timestamps, dtype=np.float64)
        return np.abs(times[:, None] - times[None, :])

    def has_loop(self) -> bool:
        """Whether any road is visited more than once (loop trajectories are dropped)."""
        return len(set(self.roads)) != len(self.roads)

    def copy(self) -> "Trajectory":
        return Trajectory(
            roads=list(self.roads),
            timestamps=list(self.timestamps),
            user_id=self.user_id,
            occupied=self.occupied,
            mode=self.mode,
            trajectory_id=self.trajectory_id,
            metadata=dict(self.metadata),
        )
