"""Synthetic trajectory generator.

Stands in for the proprietary BJ taxi feed and the Porto Kaggle dataset.  The
generator reproduces the data characteristics the paper's model exploits:

* **OD demand with spatial structure** — each driver has a small set of
  preferred zones, so road visit frequencies are highly non-uniform (the
  "travel semantics" that the transfer-probability matrix captures);
* **departure times with rush-hour peaks** — weekday mornings/evenings and a
  flatter weekend profile (Figure 1(b));
* **congestion-dependent travel times** — per-road travel time depends on the
  time of day via :class:`~repro.trajectory.congestion.CongestionModel`, so
  identical routes have different durations and irregular per-road time
  intervals (Figure 1(c));
* **driver-specific route choice** — drivers prefer one of the k shortest
  paths with a driver-specific bias, so driver identity is learnable from the
  trajectory (the Porto classification task);
* **occupancy labels** — alternating occupied / vacant trips with different
  OD patterns (the BJ binary classification task);
* **raw GPS emission** — optionally emits noisy GPS points along the route for
  exercising the map-matching substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.roadnet.shortest_path import shortest_path_with_costs
from repro.trajectory.congestion import CongestionModel
from repro.trajectory.types import (
    REFERENCE_EPOCH,
    GPSPoint,
    RawTrajectory,
    Trajectory,
)
from repro.utils.seeding import get_rng

#: Speed multipliers per transportation mode (relative to car travel);
#: used by the synthetic-Geolife preset.
MODE_SPEED_FACTOR = {"car": 1.0, "bus": 0.6, "bike": 0.35, "walk": 0.12}


@dataclass
class DemandConfig:
    """Parameters controlling trajectory generation."""

    num_drivers: int = 40
    num_days: int = 14
    trips_per_driver_per_day: float = 3.0
    zones_per_driver: int = 3
    route_choices: int = 3
    min_route_hops: int = 6
    max_route_hops: int = 128
    gps_sample_period: float = 15.0
    gps_noise_std: float = 8.0
    modes: tuple[str, ...] = ("car",)
    seed: int = 0


@dataclass
class GenerationResult:
    """Output bundle of :class:`TrajectoryGenerator.generate`."""

    trajectories: list[Trajectory] = field(default_factory=list)
    raw_trajectories: list[RawTrajectory] = field(default_factory=list)


class TrajectoryGenerator:
    """Generate road-network constrained (and optionally raw GPS) trajectories."""

    def __init__(
        self,
        network: RoadNetwork,
        congestion: CongestionModel | None = None,
        config: DemandConfig | None = None,
    ) -> None:
        self.network = network
        self.congestion = congestion or CongestionModel(network)
        self.config = config or DemandConfig()
        self._rng = get_rng(self.config.seed)
        self._zones = self._build_zones()
        self._driver_zones = self._assign_driver_zones()
        # Driver-specific multiplicative cost perturbations: each driver prefers
        # slightly different roads, which makes route choice (and therefore
        # driver identity) learnable from trajectories.
        lengths = self.network.lengths()
        self._driver_costs = np.stack(
            [
                lengths * np.exp(self._rng.normal(0.0, 0.25, size=self.network.num_roads))
                for _ in range(self.config.num_drivers)
            ]
        )

    # ------------------------------------------------------------------ #
    # Demand structure
    # ------------------------------------------------------------------ #
    def _build_zones(self) -> list[list[int]]:
        """Partition roads into spatial zones by clustering midpoints on a 3x3 grid."""
        midpoints = np.array([seg.midpoint for seg in self.network.segments])
        mins = midpoints.min(axis=0)
        maxs = midpoints.max(axis=0)
        span = np.maximum(maxs - mins, 1e-6)
        cells = np.floor((midpoints - mins) / span * 2.999).astype(int)
        zones: dict[tuple[int, int], list[int]] = {}
        for segment, cell in zip(self.network.segments, map(tuple, cells)):
            zones.setdefault(cell, []).append(segment.road_id)
        return [roads for roads in zones.values() if roads]

    def _assign_driver_zones(self) -> list[list[int]]:
        assignments = []
        for _ in range(self.config.num_drivers):
            count = min(self.config.zones_per_driver, len(self._zones))
            chosen = self._rng.choice(len(self._zones), size=count, replace=False)
            assignments.append([int(z) for z in chosen])
        return assignments

    def _sample_departure_offset(self, day: int) -> float:
        """Seconds after midnight, drawn from a rush-hour-shaped mixture."""
        weekend = (day % 7) >= 5
        if weekend:
            centre_hours = [11.0, 15.0, 20.0]
            weights = [0.35, 0.4, 0.25]
            std = 2.5
        else:
            centre_hours = [8.0, 13.0, 18.0]
            weights = [0.4, 0.2, 0.4]
            std = 1.5
        component = self._rng.choice(len(centre_hours), p=np.array(weights) / np.sum(weights))
        hour = float(np.clip(self._rng.normal(centre_hours[component], std), 0.0, 23.8))
        return hour * 3600.0

    def _sample_od(self, driver: int, occupied: bool) -> tuple[int, int]:
        """Sample an origin/destination pair of roads for a driver."""
        zones = self._driver_zones[driver]
        if occupied or len(zones) < 2:
            # Passenger trips can go anywhere in the city.
            origin_zone = self._zones[int(self._rng.integers(len(self._zones)))]
            dest_zone = self._zones[int(self._rng.integers(len(self._zones)))]
        else:
            # Vacant cruising stays near the driver's home zones.
            origin_zone = self._zones[zones[int(self._rng.integers(len(zones)))]]
            dest_zone = self._zones[zones[int(self._rng.integers(len(zones)))]]
        origin = int(origin_zone[int(self._rng.integers(len(origin_zone)))])
        destination = int(dest_zone[int(self._rng.integers(len(dest_zone)))])
        return origin, destination

    def _choose_route(self, driver: int, origin: int, destination: int) -> list[int] | None:
        """Route choice: Dijkstra under the driver's perturbed road costs.

        A small amount of per-trip noise is added on top of the driver bias so
        repeated trips between the same OD pair occasionally take alternative
        routes (as real drivers do).
        """
        costs = self._driver_costs[driver]
        if self._rng.random() < 0.3:
            costs = costs * np.exp(self._rng.normal(0.0, 0.15, size=costs.shape))
        return shortest_path_with_costs(self.network, origin, destination, costs)

    # ------------------------------------------------------------------ #
    # Trajectory construction
    # ------------------------------------------------------------------ #
    def _timestamps_for_route(self, route: list[int], departure: float, mode: str) -> list[float]:
        """Visit time of each road, accumulating congestion-aware travel times."""
        factor = MODE_SPEED_FACTOR.get(mode, 1.0)
        times = [departure]
        current = departure
        for road in route[:-1]:
            travel = self.congestion.travel_time(road, current, rng=self._rng) / factor
            current += travel
            times.append(current)
        return times

    def _emit_gps(self, trajectory: Trajectory) -> RawTrajectory:
        """Sample noisy GPS points along a constrained trajectory."""
        points: list[GPSPoint] = []
        period = self.config.gps_sample_period
        noise = self.config.gps_noise_std
        for road, visit_time in zip(trajectory.roads, trajectory.timestamps):
            segment = self.network.segment(road)
            # One point at the road entrance plus extra points for long roads.
            extra = max(int(segment.free_flow_travel_time() // period), 0)
            for i in range(extra + 1):
                alpha = min(i / (extra + 1), 1.0)
                x = segment.start[0] + alpha * (segment.end[0] - segment.start[0])
                y = segment.start[1] + alpha * (segment.end[1] - segment.start[1])
                points.append(
                    GPSPoint(
                        x=float(x + self._rng.normal(0.0, noise)),
                        y=float(y + self._rng.normal(0.0, noise)),
                        timestamp=float(visit_time + alpha * period),
                    )
                )
        return RawTrajectory(points=points, user_id=trajectory.user_id, trajectory_id=trajectory.trajectory_id)

    def generate(self, num_trajectories: int | None = None, emit_gps: bool = False) -> GenerationResult:
        """Generate the full synthetic dataset.

        Parameters
        ----------
        num_trajectories:
            Optional cap on the number of trajectories (defaults to
            ``num_drivers * num_days * trips_per_driver_per_day``).
        emit_gps:
            Also emit raw GPS traces (slower; used by map-matching tests and
            the quickstart example).
        """
        config = self.config
        target = num_trajectories or int(
            config.num_drivers * config.num_days * config.trips_per_driver_per_day
        )
        result = GenerationResult()
        trajectory_id = 0
        attempts = 0
        max_attempts = target * 8
        while len(result.trajectories) < target and attempts < max_attempts:
            attempts += 1
            driver = int(self._rng.integers(config.num_drivers))
            day = int(self._rng.integers(config.num_days))
            occupied = int(self._rng.random() < 0.6)
            mode = str(self._rng.choice(list(config.modes)))
            origin, destination = self._sample_od(driver, bool(occupied))
            if origin == destination:
                continue
            route = self._choose_route(driver, origin, destination)
            if route is None or not (config.min_route_hops <= len(route) <= config.max_route_hops):
                continue
            departure = REFERENCE_EPOCH + day * 86400 + self._sample_departure_offset(day)
            timestamps = self._timestamps_for_route(route, departure, mode)
            trajectory = Trajectory(
                roads=route,
                timestamps=timestamps,
                user_id=driver,
                occupied=occupied,
                mode=mode,
                trajectory_id=trajectory_id,
            )
            result.trajectories.append(trajectory)
            if emit_gps:
                result.raw_trajectories.append(self._emit_gps(trajectory))
            trajectory_id += 1
        return result
