"""Trajectory data augmentation strategies for contrastive learning.

Section III-C2 of the paper defines four view-generation strategies:

* **Trajectory Trimming** — drop a 5-15% chunk from the origin or the
  destination (close ODs keep the travel semantics intact);
* **Temporal Shifting** — perturb the visit times of a random 15% of roads
  towards the road's historical average travel time
  (``t_aug = t_cur - (t_cur - t_his) * r3`` with ``r3`` in 0.15-0.30);
* **Road Segments Mask** — replace a random subset of roads (and their
  temporal indices) with the [MASK] token, i.e. treat them as missing values;
* **Dropout** — apply embedding-level dropout as in SimCSE; the trajectory
  itself is unchanged and the randomness happens inside the encoder.

Each strategy returns an :class:`AugmentedView`, which carries the (possibly
modified) road/timestamp sequences plus a boolean mask of positions to be
replaced by [MASK] inside the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng

AUGMENTATION_NAMES = ("trim", "shift", "mask", "dropout")


@dataclass
class AugmentedView:
    """One contrastive view of a trajectory."""

    roads: list[int]
    timestamps: list[float]
    mask_positions: list[int] = field(default_factory=list)
    use_embedding_dropout: bool = False

    def __len__(self) -> int:
        return len(self.roads)


class TrajectoryAugmenter:
    """Applies the paper's four augmentation strategies."""

    def __init__(
        self,
        historical_travel_time: dict[int, float] | None = None,
        rng: np.random.Generator | None = None,
        trim_ratio: tuple[float, float] = (0.05, 0.15),
        shift_road_fraction: float = 0.15,
        shift_ratio: tuple[float, float] = (0.15, 0.30),
        mask_fraction: float = 0.15,
    ) -> None:
        self.historical_travel_time = historical_travel_time or {}
        self._rng = rng if rng is not None else get_rng()
        self.trim_ratio = trim_ratio
        self.shift_road_fraction = shift_road_fraction
        self.shift_ratio = shift_ratio
        self.mask_fraction = mask_fraction

    # ------------------------------------------------------------------ #
    # Individual strategies
    # ------------------------------------------------------------------ #
    def trim(self, trajectory: Trajectory) -> AugmentedView:
        """Remove a contiguous chunk at the origin or the destination."""
        length = len(trajectory)
        ratio = float(self._rng.uniform(*self.trim_ratio))
        drop = max(int(round(length * ratio)), 1)
        drop = min(drop, length - 2)  # keep at least two roads
        if drop <= 0:
            return AugmentedView(list(trajectory.roads), list(trajectory.timestamps))
        if self._rng.random() < 0.5:
            roads = trajectory.roads[drop:]
            times = trajectory.timestamps[drop:]
        else:
            roads = trajectory.roads[:-drop]
            times = trajectory.timestamps[:-drop]
        return AugmentedView(list(roads), list(times))

    def temporal_shift(self, trajectory: Trajectory) -> AugmentedView:
        """Move a random subset of visit times towards the historical average."""
        roads = list(trajectory.roads)
        times = np.asarray(trajectory.timestamps, dtype=np.float64).copy()
        length = len(roads)
        if length < 2:
            return AugmentedView(roads, times.tolist())
        count = max(int(round(length * self.shift_road_fraction)), 1)
        # The departure time (position 0) is never perturbed.
        chosen = 1 + self._rng.choice(length - 1, size=min(count, length - 1), replace=False)
        for index in chosen:
            road = roads[index]
            current_travel = times[index] - times[index - 1]
            historical = self.historical_travel_time.get(road, current_travel)
            ratio = float(self._rng.uniform(*self.shift_ratio))
            adjusted = current_travel - (current_travel - historical) * ratio
            delta = adjusted - current_travel
            times[index:] += delta  # shifting one visit shifts everything after it
        return AugmentedView(roads, times.tolist())

    def road_mask(self, trajectory: Trajectory) -> AugmentedView:
        """Mark a random subset of positions to be replaced by [MASK]."""
        length = len(trajectory)
        count = max(int(round(length * self.mask_fraction)), 1)
        chosen = sorted(
            int(i) for i in self._rng.choice(length, size=min(count, length), replace=False)
        )
        return AugmentedView(
            list(trajectory.roads), list(trajectory.timestamps), mask_positions=chosen
        )

    def dropout(self, trajectory: Trajectory) -> AugmentedView:
        """SimCSE-style view: identical input, dropout noise inside the encoder."""
        return AugmentedView(
            list(trajectory.roads), list(trajectory.timestamps), use_embedding_dropout=True
        )

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def apply(self, trajectory: Trajectory, name: str) -> AugmentedView:
        """Apply the augmentation called ``name`` (one of AUGMENTATION_NAMES)."""
        if name == "trim":
            return self.trim(trajectory)
        if name == "shift":
            return self.temporal_shift(trajectory)
        if name == "mask":
            return self.road_mask(trajectory)
        if name == "dropout":
            return self.dropout(trajectory)
        raise ValueError(f"unknown augmentation '{name}', expected one of {AUGMENTATION_NAMES}")

    def make_views(
        self, trajectory: Trajectory, first: str = "trim", second: str = "shift"
    ) -> tuple[AugmentedView, AugmentedView]:
        """Produce the two views of a trajectory used as a positive pair."""
        return self.apply(trajectory, first), self.apply(trajectory, second)


def historical_travel_times(trajectories: list[Trajectory]) -> dict[int, float]:
    """Per-road historical average travel time estimated from trajectories.

    The travel time attributed to road ``v_i`` is the interval between its
    visit time and the previous road's visit time.
    """
    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for trajectory in trajectories:
        times = trajectory.timestamps
        for position in range(1, len(trajectory)):
            road = trajectory.roads[position]
            delta = times[position] - times[position - 1]
            sums[road] = sums.get(road, 0.0) + delta
            counts[road] = counts.get(road, 0) + 1
    return {road: sums[road] / counts[road] for road in sums}
