"""Dataset presets: synthetic-BJ, synthetic-Porto and synthetic-Geolife.

These mirror the contrast between the paper's datasets (Table I) at a scale
that trains in minutes on a CPU:

* **synthetic-bj** — the larger network, taxi trips with an occupancy label
  (binary classification), 1-second-resolution timestamps;
* **synthetic-porto** — the smaller network with more one-way streets, driver
  id as the classification label (multi-class), 15-second sampling;
* **synthetic-geolife** — a small multi-modal dataset (car/walk/bike/bus) over
  the *same* network as synthetic-bj, used by the cross-dataset transfer
  experiment (Table III).

The ``scale`` argument multiplies the number of drivers/days so the
data-efficiency experiments (Figure 6) and the scalability experiments
(Figure 10) can grow datasets on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.roadnet.generator import CityConfig, generate_city
from repro.roadnet.network import RoadNetwork
from repro.trajectory.congestion import CongestionModel
from repro.trajectory.dataset import PreprocessConfig, TrajectoryDataset
from repro.trajectory.generator import DemandConfig, TrajectoryGenerator


@dataclass
class PresetSpec:
    """Declarative description of one synthetic dataset preset."""

    name: str
    city: CityConfig
    demand: DemandConfig
    preprocess: PreprocessConfig
    label: str  # "occupied" | "driver" | "mode"


_PRESETS: dict[str, PresetSpec] = {
    "synthetic-bj": PresetSpec(
        name="synthetic-bj",
        city=CityConfig(grid_rows=12, grid_cols=12, arterial_every=4, oneway_probability=0.10, seed=7),
        demand=DemandConfig(num_drivers=30, num_days=14, trips_per_driver_per_day=2.5, seed=7),
        preprocess=PreprocessConfig(min_length=6, max_length=128, min_trajectories_per_user=5),
        label="occupied",
    ),
    "synthetic-porto": PresetSpec(
        name="synthetic-porto",
        city=CityConfig(grid_rows=9, grid_cols=9, arterial_every=4, oneway_probability=0.25, seed=13),
        demand=DemandConfig(num_drivers=20, num_days=14, trips_per_driver_per_day=2.5, seed=13),
        preprocess=PreprocessConfig(min_length=6, max_length=128, min_trajectories_per_user=5),
        label="driver",
    ),
    "synthetic-geolife": PresetSpec(
        name="synthetic-geolife",
        city=CityConfig(grid_rows=12, grid_cols=12, arterial_every=4, oneway_probability=0.10, seed=7),
        demand=DemandConfig(
            num_drivers=12,
            num_days=6,
            trips_per_driver_per_day=2.0,
            modes=("car", "walk", "bike", "bus"),
            seed=21,
        ),
        preprocess=PreprocessConfig(min_length=6, max_length=128, min_trajectories_per_user=3),
        label="mode",
    ),
}

PRESET_NAMES = tuple(_PRESETS)


def preset_spec(name: str) -> PresetSpec:
    """Return the declarative spec of a preset (raises on unknown names)."""
    if name not in _PRESETS:
        raise ValueError(f"unknown preset '{name}', expected one of {PRESET_NAMES}")
    return _PRESETS[name]


def build_network(name: str) -> RoadNetwork:
    """Build just the road network of a preset."""
    return generate_city(preset_spec(name).city)


def build_dataset(
    name: str,
    scale: float = 1.0,
    network: RoadNetwork | None = None,
    seed: int | None = None,
) -> TrajectoryDataset:
    """Build a preset dataset end to end (network, trajectories, preprocessing).

    Parameters
    ----------
    name:
        One of :data:`PRESET_NAMES`.
    scale:
        Multiplies the number of generated trajectories (>=0.1).
    network:
        Reuse an existing network (the Geolife preset shares synthetic-BJ's
        network this way when testing transfer).
    seed:
        Override the preset's generation seed (for building disjoint copies).
    """
    spec = preset_spec(name)
    if scale <= 0:
        raise ValueError("scale must be positive")
    network = network if network is not None else generate_city(spec.city)
    demand = DemandConfig(**{**spec.demand.__dict__})
    demand.trips_per_driver_per_day = spec.demand.trips_per_driver_per_day * scale
    if seed is not None:
        demand.seed = seed
    congestion = CongestionModel(network)
    generator = TrajectoryGenerator(network, congestion, demand)
    result = generator.generate()
    dataset = TrajectoryDataset(network, result.trajectories, name=spec.name)
    dataset = dataset.preprocess(spec.preprocess)
    dataset.chronological_split()
    return dataset


def label_of(dataset_name: str) -> str:
    """Which classification label a preset uses ('occupied', 'driver' or 'mode')."""
    return preset_spec(dataset_name).label
