"""Time-of-day congestion model.

Figure 1(b) of the paper motivates START with the periodic pattern of urban
traffic: trajectory volume (and therefore congestion and travel time) peaks in
the morning and evening rush hours and differs between weekdays and weekends.
This module encodes that regularity as a deterministic-plus-noise speed
multiplier used both when *generating* trajectories and when computing
*historical average travel times* (needed by the Temporal Shifting
augmentation).
"""

from __future__ import annotations

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.trajectory.types import hour_of_day, is_weekend


class CongestionModel:
    """Maps (road, timestamp) to an expected speed factor and travel time.

    The speed factor is ``1.0`` in free flow and drops towards
    ``1 - peak_slowdown`` at the heart of the rush hours.  Major roads are
    affected more than residential streets (they carry the through traffic).
    """

    #: Gaussian bumps (hour, width, weight) describing weekday congestion.
    _WEEKDAY_PEAKS = ((8.0, 1.5, 1.0), (18.0, 2.0, 1.0), (12.5, 1.0, 0.3))
    #: Weekend congestion: a single broad midday bump.
    _WEEKEND_PEAKS = ((14.0, 3.0, 0.6),)

    _TYPE_SENSITIVITY = {
        "motorway": 1.0,
        "trunk": 1.0,
        "primary": 1.0,
        "secondary": 0.85,
        "tertiary": 0.7,
        "residential": 0.5,
    }

    def __init__(self, network: RoadNetwork, peak_slowdown: float = 0.55, noise_std: float = 0.05) -> None:
        if not 0.0 <= peak_slowdown < 1.0:
            raise ValueError("peak_slowdown must be in [0, 1)")
        self.network = network
        self.peak_slowdown = peak_slowdown
        self.noise_std = noise_std

    # ------------------------------------------------------------------ #
    # Deterministic profile
    # ------------------------------------------------------------------ #
    def congestion_level(self, timestamp: float) -> float:
        """Return the city-wide congestion level in [0, 1] at ``timestamp``."""
        hour = (int(timestamp) % 86400) / 3600.0
        peaks = self._WEEKEND_PEAKS if is_weekend(timestamp) else self._WEEKDAY_PEAKS
        level = 0.0
        for centre, width, weight in peaks:
            level += weight * np.exp(-0.5 * ((hour - centre) / width) ** 2)
        return float(min(level, 1.0))

    def speed_factor(self, road_id: int, timestamp: float, rng: np.random.Generator | None = None) -> float:
        """Multiplier applied to the free-flow speed of ``road_id`` at ``timestamp``."""
        segment = self.network.segment(road_id)
        sensitivity = self._TYPE_SENSITIVITY.get(segment.road_type, 0.7)
        level = self.congestion_level(timestamp)
        factor = 1.0 - self.peak_slowdown * sensitivity * level
        if rng is not None and self.noise_std > 0:
            factor *= float(np.exp(rng.normal(0.0, self.noise_std)))
        return float(np.clip(factor, 0.15, 1.2))

    # ------------------------------------------------------------------ #
    # Travel times
    # ------------------------------------------------------------------ #
    def travel_time(self, road_id: int, timestamp: float, rng: np.random.Generator | None = None) -> float:
        """Seconds needed to traverse ``road_id`` when entering at ``timestamp``."""
        segment = self.network.segment(road_id)
        factor = self.speed_factor(road_id, timestamp, rng=rng)
        metres_per_second = max(segment.max_speed * factor, 2.0) / 3.6
        return segment.length / metres_per_second

    def historical_average_travel_time(self, road_id: int) -> float:
        """Average travel time of ``road_id`` over a synthetic week.

        This is the ``t_his`` quantity used by the Temporal Shifting
        augmentation (Section III-C2 of the paper).
        """
        from repro.trajectory.types import REFERENCE_EPOCH

        hours = np.arange(0, 24, 0.5)
        samples = []
        for day_offset in range(7):
            base = REFERENCE_EPOCH + day_offset * 86400
            for hour in hours:
                samples.append(self.travel_time(road_id, base + hour * 3600.0))
        return float(np.mean(samples))

    def hourly_profile(self, road_id: int, weekend: bool = False) -> np.ndarray:
        """``(24,)`` expected travel time of a road per hour (for diagnostics)."""
        from repro.trajectory.types import REFERENCE_EPOCH

        # Day 5 of the reference week is Saturday (the reference epoch is a Monday).
        base = REFERENCE_EPOCH + (5 * 86400 if weekend else 0)
        return np.array(
            [self.travel_time(road_id, base + h * 3600.0) for h in range(24)], dtype=np.float64
        )
