"""Detour-based ground truth for trajectory similarity search.

Section IV-D4 of the paper: for each query trajectory, a detour variant is
constructed by replacing a consecutive sub-trajectory (at most ``p_d`` of the
length) with an alternative route between the same two roads found by a
top-k shortest-path search, provided the alternative's travel time differs by
more than a threshold ``t_d``.  The detour of a query is its ground-truth
nearest neighbour in the database; additional negative trajectories (and
their detours) fill out the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.roadnet.shortest_path import k_shortest_paths, path_cost
from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng


@dataclass
class DetourConfig:
    """Parameters of ground-truth generation (paper defaults in brackets)."""

    selection_proportion: float = 0.2  # p_d (0.2)
    time_threshold: float = 0.2        # t_d (0.2)
    top_k: int = 4
    max_attempts: int = 8


@dataclass
class SimilarityBenchmark:
    """Query set, database and ground-truth mapping for similarity search."""

    queries: list[Trajectory] = field(default_factory=list)
    database: list[Trajectory] = field(default_factory=list)
    ground_truth: dict[int, int] = field(default_factory=dict)
    """Maps query index -> database index of its detour counterpart."""


def make_detour(
    network: RoadNetwork,
    trajectory: Trajectory,
    config: DetourConfig | None = None,
    rng: np.random.Generator | None = None,
) -> Trajectory | None:
    """Create a detour variant of ``trajectory`` (or ``None`` when impossible)."""
    config = config or DetourConfig()
    rng = rng if rng is not None else get_rng()
    length = len(trajectory)
    max_span = max(int(length * config.selection_proportion), 2)
    if length < 4:
        return None

    for _ in range(config.max_attempts):
        span = int(rng.integers(2, max_span + 1))
        start = int(rng.integers(0, length - span))
        end = start + span - 1
        sub_origin = trajectory.roads[start]
        sub_destination = trajectory.roads[end]
        original_cost = path_cost(network, trajectory.roads[start : end + 1], weight="time")
        alternatives = k_shortest_paths(
            network, sub_origin, sub_destination, k=config.top_k, weight="time"
        )
        for candidate, _ in alternatives:
            if candidate == trajectory.roads[start : end + 1]:
                continue
            candidate_cost = path_cost(network, candidate, weight="time")
            relative_change = abs(candidate_cost - original_cost) / max(original_cost, 1e-6)
            if relative_change < config.time_threshold:
                continue
            new_roads = trajectory.roads[:start] + candidate + trajectory.roads[end + 1 :]
            new_times = _retime(trajectory, start, end, candidate, candidate_cost)
            detour = trajectory.copy()
            detour.roads = new_roads
            detour.timestamps = new_times
            detour.metadata["detour_of"] = trajectory.trajectory_id
            if detour.has_loop():
                continue
            return detour
    return None


def _retime(
    trajectory: Trajectory, start: int, end: int, candidate: list[int], candidate_cost: float
) -> list[float]:
    """Re-assign visit times over the replaced span, keeping the prefix intact."""
    times = list(trajectory.timestamps)
    prefix = times[:start]
    start_time = times[start]
    per_road = candidate_cost / max(len(candidate), 1)
    replaced = [start_time + i * per_road for i in range(len(candidate))]
    suffix_original = times[end + 1 :]
    if suffix_original:
        # Shift the suffix so it starts right after the new span ends.
        shift = (replaced[-1] + per_road) - suffix_original[0]
        suffix = [t + shift for t in suffix_original]
    else:
        suffix = []
    return prefix + replaced + suffix


def build_similarity_benchmark(
    network: RoadNetwork,
    trajectories: list[Trajectory],
    num_queries: int,
    num_negatives: int,
    config: DetourConfig | None = None,
    rng: np.random.Generator | None = None,
) -> SimilarityBenchmark:
    """Build the query / database / ground-truth triple used by the experiments.

    The database is ``D_D = D_N' ∪ D_Q'`` (detours of the negatives plus
    detours of the queries); query ``i``'s ground truth is its own detour.
    Trajectories for which no valid detour can be constructed are skipped.
    """
    config = config or DetourConfig()
    rng = rng if rng is not None else get_rng()
    pool = list(trajectories)
    rng.shuffle(pool)

    benchmark = SimilarityBenchmark()
    # Queries and their detours.
    for trajectory in pool:
        if len(benchmark.queries) >= num_queries:
            break
        detour = make_detour(network, trajectory, config=config, rng=rng)
        if detour is None:
            continue
        benchmark.ground_truth[len(benchmark.queries)] = len(benchmark.database)
        benchmark.queries.append(trajectory)
        benchmark.database.append(detour)
    # Negatives: detours of other trajectories.
    used_ids = {t.trajectory_id for t in benchmark.queries}
    negatives_added = 0
    for trajectory in pool:
        if negatives_added >= num_negatives:
            break
        if trajectory.trajectory_id in used_ids:
            continue
        detour = make_detour(network, trajectory, config=config, rng=rng)
        if detour is None:
            continue
        benchmark.database.append(detour)
        negatives_added += 1
    return benchmark
