"""`repro.trajectory` — the trajectory substrate.

Trajectory datatypes, the congestion model, the synthetic trajectory
generator, HMM map matching, dataset preprocessing/splitting, the transfer
probability matrix, the four contrastive augmentations, the detour-based
similarity ground truth and the dataset presets.
"""

from repro.trajectory.types import (
    GPSPoint,
    RawTrajectory,
    Trajectory,
    day_of_week,
    hour_of_day,
    is_weekend,
    minute_of_day,
    REFERENCE_EPOCH,
)
from repro.trajectory.congestion import CongestionModel
from repro.trajectory.generator import (
    DemandConfig,
    GenerationResult,
    MODE_SPEED_FACTOR,
    TrajectoryGenerator,
)
from repro.trajectory.map_matching import HMMMapMatcher, MatchingConfig
from repro.trajectory.dataset import DatasetSplit, PreprocessConfig, TrajectoryDataset
from repro.trajectory.transfer import (
    edge_transfer_probabilities,
    transfer_probability_matrix,
    visit_frequencies,
)
from repro.trajectory.augmentation import (
    AUGMENTATION_NAMES,
    AugmentedView,
    TrajectoryAugmenter,
    historical_travel_times,
)
from repro.trajectory.detour import (
    DetourConfig,
    SimilarityBenchmark,
    build_similarity_benchmark,
    make_detour,
)
from repro.trajectory.presets import (
    PRESET_NAMES,
    build_dataset,
    build_network,
    label_of,
    preset_spec,
)
from repro.trajectory.io import (
    append_trajectories,
    iter_trajectory_records,
    load_dataset,
    parse_trajectory_record,
    save_dataset,
    trajectory_record,
)

__all__ = [
    "GPSPoint",
    "RawTrajectory",
    "Trajectory",
    "REFERENCE_EPOCH",
    "minute_of_day",
    "day_of_week",
    "hour_of_day",
    "is_weekend",
    "CongestionModel",
    "DemandConfig",
    "GenerationResult",
    "MODE_SPEED_FACTOR",
    "TrajectoryGenerator",
    "HMMMapMatcher",
    "MatchingConfig",
    "TrajectoryDataset",
    "DatasetSplit",
    "PreprocessConfig",
    "transfer_probability_matrix",
    "edge_transfer_probabilities",
    "visit_frequencies",
    "AUGMENTATION_NAMES",
    "AugmentedView",
    "TrajectoryAugmenter",
    "historical_travel_times",
    "DetourConfig",
    "SimilarityBenchmark",
    "build_similarity_benchmark",
    "make_detour",
    "PRESET_NAMES",
    "build_dataset",
    "build_network",
    "label_of",
    "preset_spec",
    "append_trajectories",
    "iter_trajectory_records",
    "load_dataset",
    "parse_trajectory_record",
    "save_dataset",
    "trajectory_record",
]
