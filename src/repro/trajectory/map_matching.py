"""HMM map matching: align raw GPS points to road segments.

The paper relies on FMM (fast map matching, Yang & Gidofalvi 2018), an HMM
matcher with precomputed shortest paths.  This module implements the same
algorithmic family at the scale of the synthetic cities:

* **candidates** — for each GPS point, the road segments whose geometry lies
  within a search radius;
* **emission probability** — Gaussian in the point-to-segment distance;
* **transition probability** — favours candidate pairs whose network distance
  is close to the straight-line distance between the GPS points (penalising
  detours and teleports);
* **Viterbi decoding** — the most probable road sequence, collapsed to remove
  consecutive duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.roadnet.shortest_path import shortest_path
from repro.trajectory.types import RawTrajectory, Trajectory


@dataclass
class MatchingConfig:
    """Tunables of the HMM matcher."""

    search_radius: float = 60.0
    gps_error_std: float = 20.0
    transition_beta: float = 40.0
    max_candidates: int = 6


def _point_to_segment_distance(point: np.ndarray, start: np.ndarray, end: np.ndarray) -> float:
    """Euclidean distance from ``point`` to the segment ``start``-``end``."""
    direction = end - start
    norm_sq = float(direction @ direction)
    if norm_sq < 1e-12:
        return float(np.linalg.norm(point - start))
    alpha = float(np.clip((point - start) @ direction / norm_sq, 0.0, 1.0))
    projection = start + alpha * direction
    return float(np.linalg.norm(point - projection))


class HMMMapMatcher:
    """Hidden-Markov-model map matcher over a :class:`RoadNetwork`."""

    def __init__(self, network: RoadNetwork, config: MatchingConfig | None = None) -> None:
        self.network = network
        self.config = config or MatchingConfig()
        self._starts = np.array([seg.start for seg in network.segments], dtype=np.float64)
        self._ends = np.array([seg.end for seg in network.segments], dtype=np.float64)
        self._road_ids = np.array([seg.road_id for seg in network.segments], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # HMM components
    # ------------------------------------------------------------------ #
    def candidates(self, point: np.ndarray) -> list[tuple[int, float]]:
        """Road segments within the search radius of ``point`` with distances."""
        midpoints = (self._starts + self._ends) / 2.0
        rough = np.linalg.norm(midpoints - point, axis=1)
        # Pre-filter by midpoint distance to avoid the exact computation everywhere.
        shortlist = np.where(rough <= self.config.search_radius * 3.0)[0]
        scored: list[tuple[int, float]] = []
        for index in shortlist:
            distance = _point_to_segment_distance(point, self._starts[index], self._ends[index])
            if distance <= self.config.search_radius:
                scored.append((int(self._road_ids[index]), distance))
        scored.sort(key=lambda item: item[1])
        return scored[: self.config.max_candidates]

    def emission_log_prob(self, distance: float) -> float:
        """Log probability of observing a GPS point ``distance`` metres from a road."""
        sigma = self.config.gps_error_std
        return float(-0.5 * (distance / sigma) ** 2 - np.log(sigma * np.sqrt(2 * np.pi)))

    def transition_log_prob(
        self, prev_road: int, next_road: int, straight_line: float
    ) -> float:
        """Log probability of moving from ``prev_road`` to ``next_road``."""
        if prev_road == next_road:
            network_distance = 0.0
        elif self.network.is_connected_pair(prev_road, next_road):
            network_distance = self.network.segment(next_road).length
        else:
            try:
                _, cost = shortest_path(self.network, prev_road, next_road, weight="length")
                network_distance = cost - self.network.segment(prev_road).length
            except ValueError:
                return -np.inf
        gap = abs(network_distance - straight_line)
        return float(-gap / self.config.transition_beta)

    # ------------------------------------------------------------------ #
    # Viterbi decoding
    # ------------------------------------------------------------------ #
    def match(self, raw: RawTrajectory) -> Trajectory | None:
        """Match a raw GPS trajectory to a road-network constrained trajectory.

        Returns ``None`` when no GPS point has any candidate road.
        """
        coords = raw.coordinates()
        times = raw.timestamps()
        candidate_lists = [self.candidates(point) for point in coords]
        usable = [i for i, cands in enumerate(candidate_lists) if cands]
        if not usable:
            return None
        coords = coords[usable]
        times = times[usable]
        candidate_lists = [candidate_lists[i] for i in usable]

        # Viterbi over the candidate lattice.
        scores: list[dict[int, float]] = [{}]
        back: list[dict[int, int | None]] = [{}]
        for road, distance in candidate_lists[0]:
            scores[0][road] = self.emission_log_prob(distance)
            back[0][road] = None
        for step in range(1, len(candidate_lists)):
            scores.append({})
            back.append({})
            straight = float(np.linalg.norm(coords[step] - coords[step - 1]))
            for road, distance in candidate_lists[step]:
                emission = self.emission_log_prob(distance)
                best_prev, best_score = None, -np.inf
                for prev_road, prev_score in scores[step - 1].items():
                    transition = self.transition_log_prob(prev_road, road, straight)
                    total = prev_score + transition
                    if total > best_score:
                        best_prev, best_score = prev_road, total
                if best_prev is None:
                    continue
                scores[step][road] = best_score + emission
                back[step][road] = best_prev
            if not scores[step]:
                # Dead end: restart the chain from this observation.
                for road, distance in candidate_lists[step]:
                    scores[step][road] = self.emission_log_prob(distance)
                    back[step][road] = None

        # Backtrack.
        path: list[int | None] = [max(scores[-1], key=scores[-1].get)]
        for step in range(len(scores) - 1, 0, -1):
            prev = back[step].get(path[-1])
            if prev is None:
                prev = max(scores[step - 1], key=scores[step - 1].get)
            path.append(prev)
        path.reverse()

        # Collapse consecutive duplicates, keeping the first visit time.
        roads: list[int] = []
        timestamps: list[float] = []
        for road, timestamp in zip(path, times):
            if not roads or roads[-1] != road:
                roads.append(int(road))
                timestamps.append(float(timestamp))
        return Trajectory(
            roads=roads,
            timestamps=timestamps,
            user_id=raw.user_id,
            trajectory_id=raw.trajectory_id,
        )

    def match_many(self, raw_trajectories: list[RawTrajectory]) -> list[Trajectory]:
        """Match a batch, silently dropping trajectories that cannot be matched."""
        matched = []
        for raw in raw_trajectories:
            result = self.match(raw)
            if result is not None and len(result) > 0:
                matched.append(result)
        return matched
