"""The road network substrate: Definition 1 of the paper.

A road network is a directed graph ``G = (V, E, F_V, A)`` whose *vertices are
road segments*; an edge ``(v_i, v_j)`` exists when a vehicle can move from
segment ``v_i`` directly onto ``v_j`` at an intersection.  Each segment
carries the six features the paper uses as TPE-GAT input: road type, length,
number of lanes, maximum speed, in-degree and out-degree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Road classes used by the synthetic generator (subset of OSM highway types).
ROAD_TYPES = ("motorway", "trunk", "primary", "secondary", "tertiary", "residential")


@dataclass
class RoadSegment:
    """A single directed road segment (one vertex of the road network graph).

    Attributes
    ----------
    road_id:
        Integer id; ids are dense ``0..|V|-1``.
    start / end:
        Planar coordinates (metres in a local frame) of the segment endpoints.
        Used for GPS simulation and for the classical similarity measures.
    road_type:
        One of :data:`ROAD_TYPES`.
    length:
        Segment length in metres.
    lanes:
        Number of lanes.
    max_speed:
        Free-flow speed limit in km/h.
    """

    road_id: int
    start: tuple[float, float]
    end: tuple[float, float]
    road_type: str = "residential"
    length: float = 0.0
    lanes: int = 1
    max_speed: float = 40.0

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            self.length = float(
                np.hypot(self.end[0] - self.start[0], self.end[1] - self.start[1])
            )

    @property
    def midpoint(self) -> tuple[float, float]:
        return (
            (self.start[0] + self.end[0]) / 2.0,
            (self.start[1] + self.end[1]) / 2.0,
        )

    def free_flow_travel_time(self) -> float:
        """Seconds to traverse the segment at the speed limit."""
        metres_per_second = max(self.max_speed, 1.0) / 3.6
        return self.length / metres_per_second


class RoadNetwork:
    """Directed graph of road segments with adjacency and feature access.

    The class intentionally keeps a plain adjacency-list representation plus
    cached NumPy matrices so that both graph algorithms (Dijkstra, Yen) and
    the TPE-GAT layer (sparse neighbour lists) can use it directly.
    """

    def __init__(self, segments: list[RoadSegment], edges: list[tuple[int, int]]) -> None:
        self.segments = list(segments)
        self._id_index = {seg.road_id: i for i, seg in enumerate(self.segments)}
        if len(self._id_index) != len(self.segments):
            raise ValueError("duplicate road ids in segment list")
        self.edges: list[tuple[int, int]] = []
        self._successors: dict[int, list[int]] = {seg.road_id: [] for seg in self.segments}
        self._predecessors: dict[int, list[int]] = {seg.road_id: [] for seg in self.segments}
        seen: set[tuple[int, int]] = set()
        for source, target in edges:
            if source not in self._id_index or target not in self._id_index:
                raise ValueError(f"edge ({source}, {target}) references an unknown road id")
            if (source, target) in seen or source == target:
                continue
            seen.add((source, target))
            self.edges.append((source, target))
            self._successors[source].append(target)
            self._predecessors[target].append(source)

    # ------------------------------------------------------------------ #
    # Sizes and lookups
    # ------------------------------------------------------------------ #
    @property
    def num_roads(self) -> int:
        return len(self.segments)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def segment(self, road_id: int) -> RoadSegment:
        return self.segments[self._id_index[road_id]]

    def __contains__(self, road_id: int) -> bool:
        return road_id in self._id_index

    def successors(self, road_id: int) -> list[int]:
        """Roads reachable directly from ``road_id``."""
        return self._successors[road_id]

    def predecessors(self, road_id: int) -> list[int]:
        """Roads from which ``road_id`` is directly reachable."""
        return self._predecessors[road_id]

    def out_degree(self, road_id: int) -> int:
        return len(self._successors[road_id])

    def in_degree(self, road_id: int) -> int:
        return len(self._predecessors[road_id])

    def road_ids(self) -> list[int]:
        return [seg.road_id for seg in self.segments]

    # ------------------------------------------------------------------ #
    # Matrix views
    # ------------------------------------------------------------------ #
    def adjacency_matrix(self) -> np.ndarray:
        """Binary ``(|V|, |V|)`` adjacency matrix ``A``."""
        matrix = np.zeros((self.num_roads, self.num_roads), dtype=np.float32)
        for source, target in self.edges:
            matrix[self._id_index[source], self._id_index[target]] = 1.0
        return matrix

    def edge_index(self) -> np.ndarray:
        """``(2, num_edges)`` array of (source, target) road ids."""
        if not self.edges:
            return np.zeros((2, 0), dtype=np.int64)
        return np.array(self.edges, dtype=np.int64).T

    def lengths(self) -> np.ndarray:
        return np.array([seg.length for seg in self.segments], dtype=np.float64)

    def max_speeds(self) -> np.ndarray:
        return np.array([seg.max_speed for seg in self.segments], dtype=np.float64)

    def free_flow_travel_times(self) -> np.ndarray:
        return np.array([seg.free_flow_travel_time() for seg in self.segments], dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Validation and derived structures
    # ------------------------------------------------------------------ #
    def is_connected_pair(self, source: int, target: int) -> bool:
        """Whether ``target`` directly follows ``source`` in the network."""
        return target in self._successors.get(source, ())

    def validate_path(self, path: list[int]) -> bool:
        """Whether consecutive roads in ``path`` are connected in the graph."""
        return all(self.is_connected_pair(a, b) for a, b in zip(path, path[1:]))

    def subgraph(self, road_ids: set[int]) -> "RoadNetwork":
        """Restrict the network to ``road_ids`` (used for ignoring uncovered roads)."""
        segments = [seg for seg in self.segments if seg.road_id in road_ids]
        edges = [(a, b) for a, b in self.edges if a in road_ids and b in road_ids]
        return RoadNetwork(segments, edges)

    def describe(self) -> dict:
        """Summary statistics (used by the Table I reproduction)."""
        lengths = self.lengths()
        return {
            "num_roads": self.num_roads,
            "num_edges": self.num_edges,
            "total_length_km": float(lengths.sum() / 1000.0),
            "mean_length_m": float(lengths.mean()) if self.num_roads else 0.0,
            "mean_out_degree": float(np.mean([self.out_degree(r) for r in self.road_ids()]))
            if self.num_roads
            else 0.0,
        }
