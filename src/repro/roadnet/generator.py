"""Synthetic city road-network generator.

The paper builds its road networks from OpenStreetMap extracts of Beijing
(38k segments) and Porto (11k segments).  Those extracts are not available
offline, so this module synthesises city-like networks with the properties
the model actually exploits:

* a hierarchy of road classes (arterials are faster, longer, multi-lane;
  residential streets are slow and short), giving informative road features;
* a (mostly) planar grid with missing links and one-way streets, giving a
  directed graph whose in/out degrees vary;
* planar coordinates for every segment so GPS trajectories and classical
  similarity measures (Fréchet, DTW, ...) have geometry to work with.

The generated object is a plain :class:`~repro.roadnet.network.RoadNetwork`;
nothing downstream knows whether the network came from OSM or the generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.roadnet.network import ROAD_TYPES, RoadNetwork, RoadSegment
from repro.utils.seeding import get_rng


@dataclass
class CityConfig:
    """Parameters of the synthetic city.

    Attributes
    ----------
    grid_rows / grid_cols:
        Number of intersection rows/columns in the underlying lattice.
    block_length:
        Distance in metres between adjacent intersections.
    arterial_every:
        Every ``arterial_every``-th row/column is an arterial (faster, wider).
    drop_edge_probability:
        Fraction of lattice links removed to break the perfect grid.
    oneway_probability:
        Fraction of remaining links that are one-way only.
    jitter:
        Standard deviation (metres) of positional noise added to
        intersections, so blocks are not perfectly rectangular.
    seed:
        Seed for the generator's private RNG.
    """

    grid_rows: int = 12
    grid_cols: int = 12
    block_length: float = 200.0
    arterial_every: int = 4
    drop_edge_probability: float = 0.08
    oneway_probability: float = 0.15
    jitter: float = 15.0
    seed: int = 0


def _road_class(row_a: int, col_a: int, row_b: int, col_b: int, config: CityConfig) -> str:
    """Classify a link by whether it lies on an arterial row/column."""
    horizontal = row_a == row_b
    if horizontal and row_a % config.arterial_every == 0:
        return "primary" if row_a % (2 * config.arterial_every) == 0 else "secondary"
    if not horizontal and col_a % config.arterial_every == 0:
        return "primary" if col_a % (2 * config.arterial_every) == 0 else "secondary"
    return "residential" if (row_a + col_a) % 3 else "tertiary"


_TYPE_SPEED = {
    "motorway": 100.0,
    "trunk": 80.0,
    "primary": 70.0,
    "secondary": 60.0,
    "tertiary": 50.0,
    "residential": 30.0,
}
_TYPE_LANES = {
    "motorway": 4,
    "trunk": 3,
    "primary": 3,
    "secondary": 2,
    "tertiary": 2,
    "residential": 1,
}


def generate_city(config: CityConfig | None = None) -> RoadNetwork:
    """Generate a synthetic city road network.

    Intersections form a jittered lattice.  Each retained directed link
    between adjacent intersections becomes one :class:`RoadSegment` (a vertex
    of the road-segment graph), and two segments are connected by an edge when
    the head intersection of the first equals the tail intersection of the
    second — exactly the construction the paper applies to OSM data.
    """
    config = config or CityConfig()
    rng = get_rng(config.seed)

    # 1. Intersection coordinates.
    coords: dict[tuple[int, int], tuple[float, float]] = {}
    for row in range(config.grid_rows):
        for col in range(config.grid_cols):
            x = col * config.block_length + rng.normal(0.0, config.jitter)
            y = row * config.block_length + rng.normal(0.0, config.jitter)
            coords[(row, col)] = (float(x), float(y))

    # 2. Undirected lattice links, some dropped.
    links: list[tuple[tuple[int, int], tuple[int, int]]] = []
    for row in range(config.grid_rows):
        for col in range(config.grid_cols):
            if col + 1 < config.grid_cols:
                links.append(((row, col), (row, col + 1)))
            if row + 1 < config.grid_rows:
                links.append(((row, col), (row + 1, col)))
    keep_mask = rng.random(len(links)) >= config.drop_edge_probability
    links = [link for link, keep in zip(links, keep_mask) if keep]

    # 3. Directed road segments (vertices of the road graph).
    segments: list[RoadSegment] = []
    segment_by_move: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}

    def add_segment(tail: tuple[int, int], head: tuple[int, int]) -> None:
        row_a, col_a = tail
        row_b, col_b = head
        road_type = _road_class(row_a, col_a, row_b, col_b, config)
        road_id = len(segments)
        speed_noise = float(rng.normal(0.0, 3.0))
        segment = RoadSegment(
            road_id=road_id,
            start=coords[tail],
            end=coords[head],
            road_type=road_type,
            lanes=_TYPE_LANES[road_type],
            max_speed=max(_TYPE_SPEED[road_type] + speed_noise, 20.0),
        )
        segments.append(segment)
        segment_by_move[(tail, head)] = road_id

    for tail, head in links:
        oneway = rng.random() < config.oneway_probability
        add_segment(tail, head)
        if not oneway:
            add_segment(head, tail)

    # 4. Road-to-road connectivity: segment u -> segment v when u ends where v starts.
    outgoing_by_tail: dict[tuple[int, int], list[int]] = {}
    for (tail, head), road_id in segment_by_move.items():
        outgoing_by_tail.setdefault(tail, []).append(road_id)
    move_by_segment = {road_id: move for move, road_id in segment_by_move.items()}
    edges: list[tuple[int, int]] = []
    for (tail, head), road_id in segment_by_move.items():
        for next_id in outgoing_by_tail.get(head, []):
            _, next_head = move_by_segment[next_id]
            if next_head == tail and len(outgoing_by_tail.get(head, [])) > 1:
                # Skip immediate U-turns when any alternative exists.
                continue
            edges.append((road_id, next_id))

    return RoadNetwork(segments, edges)


def generate_city_pair(seed: int = 0) -> tuple[RoadNetwork, RoadNetwork]:
    """Generate the two differently-sized networks used as synthetic BJ / Porto.

    Synthetic-BJ is larger and denser (Beijing has ~3.5x more segments than
    Porto in the paper); synthetic-Porto is smaller with more one-way streets,
    which matches the old-town street pattern of Porto.
    """
    bj = generate_city(
        CityConfig(grid_rows=16, grid_cols=16, arterial_every=4, oneway_probability=0.10, seed=seed)
    )
    porto = generate_city(
        CityConfig(grid_rows=10, grid_cols=10, arterial_every=5, oneway_probability=0.25, seed=seed + 1)
    )
    return bj, porto
