"""Shortest-path algorithms over the road-segment graph.

Dijkstra supports either segment length or free-flow travel time as the edge
weight (the weight of moving onto segment ``v`` is the cost of traversing
``v``).  Yen's algorithm provides the top-k loopless paths needed by the
paper's detour-based ground-truth generation for similarity search
(Section IV-D4).
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.roadnet.network import RoadNetwork


def _default_cost(network: RoadNetwork, weight: str) -> Callable[[int], float]:
    if weight == "length":
        return lambda road_id: network.segment(road_id).length
    if weight == "time":
        return lambda road_id: network.segment(road_id).free_flow_travel_time()
    raise ValueError(f"unknown weight '{weight}', expected 'length' or 'time'")


def shortest_path(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: str = "length",
    banned_edges: set[tuple[int, int]] | None = None,
    banned_roads: set[int] | None = None,
) -> tuple[list[int], float]:
    """Dijkstra over road segments from ``source`` to ``target``.

    Returns the path as a list of road ids (including both endpoints) and its
    cost; raises ``ValueError`` when no path exists.  ``banned_edges`` /
    ``banned_roads`` support Yen's spur-path computation.
    """
    if source not in network or target not in network:
        raise ValueError("source or target road id not in the network")
    cost_of = _default_cost(network, weight)
    banned_edges = banned_edges or set()
    banned_roads = banned_roads or set()
    if source in banned_roads:
        raise ValueError("source road is banned")

    distances: dict[int, float] = {source: cost_of(source)}
    previous: dict[int, int] = {}
    visited: set[int] = set()
    queue: list[tuple[float, int]] = [(distances[source], source)]
    while queue:
        dist, road = heapq.heappop(queue)
        if road in visited:
            continue
        visited.add(road)
        if road == target:
            break
        for neighbor in network.successors(road):
            if neighbor in banned_roads or (road, neighbor) in banned_edges:
                continue
            candidate = dist + cost_of(neighbor)
            if candidate < distances.get(neighbor, np.inf):
                distances[neighbor] = candidate
                previous[neighbor] = road
                heapq.heappush(queue, (candidate, neighbor))

    if target not in visited:
        raise ValueError(f"no path from road {source} to road {target}")

    path = [target]
    while path[-1] != source:
        path.append(previous[path[-1]])
    path.reverse()
    return path, distances[target]


def shortest_path_length(network: RoadNetwork, source: int, target: int, weight: str = "length") -> float:
    """Cost of the shortest path (convenience wrapper)."""
    _, cost = shortest_path(network, source, target, weight=weight)
    return cost


def k_shortest_paths(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int,
    weight: str = "length",
) -> list[tuple[list[int], float]]:
    """Yen's algorithm: the ``k`` shortest loopless paths between two roads.

    Used to construct detour trajectories: the top-k alternatives between a
    sub-trajectory's origin and destination are candidate replacements.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    try:
        best = shortest_path(network, source, target, weight=weight)
    except ValueError:
        return []
    paths: list[tuple[list[int], float]] = [best]
    candidates: list[tuple[float, list[int]]] = []
    cost_of = _default_cost(network, weight)

    while len(paths) < k:
        last_path = paths[-1][0]
        for spur_index in range(len(last_path) - 1):
            spur_node = last_path[spur_index]
            root_path = last_path[: spur_index + 1]
            banned_edges: set[tuple[int, int]] = set()
            for existing_path, _ in paths:
                if existing_path[: spur_index + 1] == root_path and len(existing_path) > spur_index + 1:
                    banned_edges.add((existing_path[spur_index], existing_path[spur_index + 1]))
            banned_roads = set(root_path[:-1])
            try:
                spur_path, _ = shortest_path(
                    network,
                    spur_node,
                    target,
                    weight=weight,
                    banned_edges=banned_edges,
                    banned_roads=banned_roads,
                )
            except ValueError:
                continue
            total_path = root_path[:-1] + spur_path
            total_cost = sum(cost_of(road) for road in total_path)
            if all(total_path != c[1] for c in candidates) and all(
                total_path != p[0] for p in paths
            ):
                heapq.heappush(candidates, (total_cost, total_path))
        if not candidates:
            break
        cost, path = heapq.heappop(candidates)
        paths.append((path, cost))
    return paths


def path_cost(network: RoadNetwork, path: list[int], weight: str = "length") -> float:
    """Total cost of traversing every segment in ``path``."""
    cost_of = _default_cost(network, weight)
    return float(sum(cost_of(road) for road in path))


def shortest_path_with_costs(
    network: RoadNetwork,
    source: int,
    target: int,
    costs: np.ndarray,
) -> list[int] | None:
    """Dijkstra with an arbitrary per-road cost vector.

    ``costs[road_id]`` is the (positive) cost of traversing that road.  Used
    by the trajectory generator for driver-specific perturbed route choice,
    which is far cheaper than running Yen's algorithm per trip.  Returns
    ``None`` when no path exists.
    """
    if source not in network or target not in network:
        return None
    costs = np.asarray(costs, dtype=np.float64)
    distances: dict[int, float] = {source: float(costs[source])}
    previous: dict[int, int] = {}
    visited: set[int] = set()
    queue: list[tuple[float, int]] = [(distances[source], source)]
    while queue:
        dist, road = heapq.heappop(queue)
        if road in visited:
            continue
        visited.add(road)
        if road == target:
            break
        for neighbor in network.successors(road):
            candidate = dist + float(costs[neighbor])
            if candidate < distances.get(neighbor, np.inf):
                distances[neighbor] = candidate
                previous[neighbor] = road
                heapq.heappush(queue, (candidate, neighbor))
    if target not in visited:
        return None
    path = [target]
    while path[-1] != source:
        path.append(previous[path[-1]])
    path.reverse()
    return path
