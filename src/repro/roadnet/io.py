"""Persistence of road networks (the stand-in for OSM extracts).

Networks are stored as two CSV files — ``segments.csv`` and ``edges.csv`` —
inside a directory, mirroring the "download an OSM extract, convert to a
segment graph" step of the paper's preprocessing pipeline.  The format is
deliberately plain so networks can be inspected or edited by hand.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.roadnet.network import RoadNetwork, RoadSegment

_SEGMENT_FIELDS = [
    "road_id",
    "start_x",
    "start_y",
    "end_x",
    "end_y",
    "road_type",
    "length",
    "lanes",
    "max_speed",
]


def save_network(network: RoadNetwork, directory: str | Path) -> Path:
    """Write ``segments.csv`` and ``edges.csv`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "segments.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_SEGMENT_FIELDS)
        for segment in network.segments:
            writer.writerow(
                [
                    segment.road_id,
                    f"{segment.start[0]:.3f}",
                    f"{segment.start[1]:.3f}",
                    f"{segment.end[0]:.3f}",
                    f"{segment.end[1]:.3f}",
                    segment.road_type,
                    f"{segment.length:.3f}",
                    segment.lanes,
                    f"{segment.max_speed:.3f}",
                ]
            )
    with open(directory / "edges.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "target"])
        writer.writerows(network.edges)
    return directory


def load_network(directory: str | Path) -> RoadNetwork:
    """Load a network previously written by :func:`save_network`."""
    directory = Path(directory)
    segments: list[RoadSegment] = []
    with open(directory / "segments.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            segments.append(
                RoadSegment(
                    road_id=int(row["road_id"]),
                    start=(float(row["start_x"]), float(row["start_y"])),
                    end=(float(row["end_x"]), float(row["end_y"])),
                    road_type=row["road_type"],
                    length=float(row["length"]),
                    lanes=int(row["lanes"]),
                    max_speed=float(row["max_speed"]),
                )
            )
    edges: list[tuple[int, int]] = []
    with open(directory / "edges.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            edges.append((int(row["source"]), int(row["target"])))
    return RoadNetwork(segments, edges)
