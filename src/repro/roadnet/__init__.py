"""`repro.roadnet` — the road-network substrate.

Provides Definition 1 of the paper (the directed road-segment graph with
features and adjacency), a synthetic city generator that stands in for the
OpenStreetMap extracts, shortest-path / k-shortest-path search, road feature
matrices and CSV persistence.
"""

from repro.roadnet.network import ROAD_TYPES, RoadNetwork, RoadSegment
from repro.roadnet.generator import CityConfig, generate_city, generate_city_pair
from repro.roadnet.shortest_path import (
    k_shortest_paths,
    path_cost,
    shortest_path,
    shortest_path_length,
)
from repro.roadnet.features import feature_dimension, road_feature_matrix
from repro.roadnet.io import load_network, save_network

__all__ = [
    "ROAD_TYPES",
    "RoadNetwork",
    "RoadSegment",
    "CityConfig",
    "generate_city",
    "generate_city_pair",
    "shortest_path",
    "shortest_path_length",
    "k_shortest_paths",
    "path_cost",
    "road_feature_matrix",
    "feature_dimension",
    "load_network",
    "save_network",
]
