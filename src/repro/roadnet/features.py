"""Road feature matrix construction (the ``F_V`` input of TPE-GAT).

The paper feeds six features per road segment into the first TPE-GAT layer:
road type, length, number of lanes, maximum speed, in-degree and out-degree.
Categorical road type is one-hot encoded; numeric features are z-normalised
so the GAT does not have to cope with metre-scale magnitudes.
"""

from __future__ import annotations

import numpy as np

from repro.roadnet.network import ROAD_TYPES, RoadNetwork


def road_feature_matrix(network: RoadNetwork, normalize: bool = True) -> np.ndarray:
    """Build the ``(|V|, d_in)`` road feature matrix.

    Layout: ``[one-hot road type | length | lanes | max_speed | in_deg | out_deg]``.
    """
    num_types = len(ROAD_TYPES)
    type_index = {name: i for i, name in enumerate(ROAD_TYPES)}
    features = np.zeros((network.num_roads, num_types + 5), dtype=np.float32)
    for row, segment in enumerate(network.segments):
        features[row, type_index.get(segment.road_type, num_types - 1)] = 1.0
        features[row, num_types + 0] = segment.length
        features[row, num_types + 1] = segment.lanes
        features[row, num_types + 2] = segment.max_speed
        features[row, num_types + 3] = network.in_degree(segment.road_id)
        features[row, num_types + 4] = network.out_degree(segment.road_id)
    if normalize:
        numeric = features[:, num_types:]
        mean = numeric.mean(axis=0, keepdims=True)
        std = numeric.std(axis=0, keepdims=True)
        std[std < 1e-6] = 1.0
        features[:, num_types:] = (numeric - mean) / std
    return features


def feature_dimension() -> int:
    """Dimensionality of the matrix produced by :func:`road_feature_matrix`."""
    return len(ROAD_TYPES) + 5
