"""Restartable checkpoints: index snapshot + resumable stream offset.

A serving process that dies must come back *lossless*: everything it had
ingested and everything still sitting unread in the trajectory JSONL must
be served after restart exactly as if the crash never happened.  The
checkpoint that makes this possible is deliberately tiny:

* an :meth:`Engine.snapshot <repro.api.Engine.snapshot>` of the primary
  index (already bit-stable across restore), written under
  ``<dir>/snapshots/gen_<N>/``;
* the stream reader's resume state — the **byte offset** of the first
  record not yet in the snapshot, plus its line/record counters
  (:attr:`TrajectoryStreamReader.state <repro.streaming.reader.TrajectoryStreamReader.state>`);
* a ``CHECKPOINT.json`` pointer committed with an atomic
  ``os.replace``, so a crash *during* checkpointing leaves the previous
  checkpoint intact — the manifest is only ever wholly old or wholly new.

Replay correctness is owned by the runtime's deterministic ingest grouping
(see :class:`~repro.server.runtime.ServingRuntime`): checkpoints are only
taken at group boundaries, so the records re-read after restart re-form
exactly the encode batches the uninterrupted run would have formed — which
is what makes the restarted index *bit-identical*, not merely equivalent.
This is the periodic-checkpoint / atomic-manifest pattern of LLMPlotBot's
checkpoint manager applied to an index + stream pair.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

from repro.api.engine import Engine

#: Bump when the checkpoint layout changes; readers refuse newer formats.
CHECKPOINT_FORMAT_VERSION = 1

_MANIFEST_NAME = "CHECKPOINT.json"
_SNAPSHOT_ROOT = "snapshots"


@dataclass(frozen=True)
class CheckpointInfo:
    """One committed checkpoint: where it lives and what it captured."""

    path: Path
    generation: int
    rows: int
    stream_offset: int
    ingested_records: int


class Checkpointer:
    """Writes and reads the checkpoint directory layout described above.

    ``keep`` bounds disk usage: after a successful commit, snapshot
    directories other than the ``keep`` most recent are deleted (the
    manifest never points at a deleted one — pruning runs strictly after
    the atomic manifest replace).
    """

    def __init__(self, directory: str | Path, *, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = int(keep)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def save(
        self,
        engine: Engine,
        *,
        generation: int,
        stream_state: dict[str, int] | None = None,
        ingested_records: int = 0,
    ) -> CheckpointInfo:
        """Snapshot ``engine`` and commit a manifest pointing at it."""
        snapshot_name = f"gen_{generation:06d}"
        snapshot_dir = self.directory / _SNAPSHOT_ROOT / snapshot_name
        info = engine.snapshot(snapshot_dir)
        manifest = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "generation": int(generation),
            "snapshot": f"{_SNAPSHOT_ROOT}/{snapshot_name}",
            "rows": int(info.rows),
            "ingested_records": int(ingested_records),
            "stream": dict(stream_state) if stream_state is not None else None,
        }
        tmp_path = self.directory / (_MANIFEST_NAME + ".tmp")
        with open(tmp_path, "w") as handle:
            json.dump(manifest, handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.directory / _MANIFEST_NAME)
        self._prune(current=snapshot_name)
        return CheckpointInfo(
            path=self.directory,
            generation=int(generation),
            rows=int(info.rows),
            stream_offset=int((stream_state or {}).get("offset", 0)),
            ingested_records=int(ingested_records),
        )

    def _prune(self, current: str) -> None:
        root = self.directory / _SNAPSHOT_ROOT
        if not root.exists():
            return
        names = sorted(p.name for p in root.iterdir() if p.is_dir())
        for name in names[: -self.keep] if len(names) > self.keep else []:
            if name != current:
                shutil.rmtree(root / name, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @classmethod
    def load_manifest(cls, directory: str | Path) -> dict[str, object] | None:
        """The committed manifest under ``directory``, or ``None`` if absent."""
        manifest_path = Path(directory) / _MANIFEST_NAME
        if not manifest_path.exists():
            return None
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        version = int(manifest.get("format_version", 0))
        if version > CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"{directory} uses checkpoint format v{version}; "
                f"this build reads up to v{CHECKPOINT_FORMAT_VERSION}"
            )
        return manifest

    @classmethod
    def restore_engine(cls, directory: str | Path, encoder, engine_config=None) -> tuple:
        """Rebuild ``(engine, manifest)`` from the last committed checkpoint.

        Raises :class:`ValueError` when ``directory`` holds no checkpoint.
        The caller re-attaches the stream reader from ``manifest["stream"]``.
        """
        manifest = cls.load_manifest(directory)
        if manifest is None:
            raise ValueError(f"{directory} holds no {_MANIFEST_NAME}")
        snapshot_dir = Path(directory) / manifest["snapshot"]
        engine = Engine.restore(snapshot_dir, encoder, config=engine_config)
        return engine, manifest
