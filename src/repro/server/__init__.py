"""Concurrent serving runtime over the :mod:`repro.api` engine facade.

Public surface:

* :class:`~repro.server.runtime.ServingRuntime` — batched queries over
  worker-owned replica snapshots, background stream ingest + compaction,
  graceful drain and lossless checkpoint/restart.
* :class:`~repro.server.config.ServerConfig` / :class:`~repro.server.config.ServerHooks`
  — knobs and observation/fault-injection points.
* :class:`~repro.server.aggregator.BatchAggregator` — size-or-timeout
  request coalescing (usable standalone).
* :class:`~repro.server.checkpoint.Checkpointer` — atomic snapshot +
  stream-offset checkpoints.
"""

from repro.server.aggregator import BatchAggregator, PendingQuery
from repro.server.checkpoint import CHECKPOINT_FORMAT_VERSION, Checkpointer, CheckpointInfo
from repro.server.config import KillWorker, ServerClosed, ServerConfig, ServerHooks
from repro.server.runtime import ServingRuntime

__all__ = [
    "BatchAggregator",
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpointer",
    "CheckpointInfo",
    "KillWorker",
    "PendingQuery",
    "ServerClosed",
    "ServerConfig",
    "ServerHooks",
    "ServingRuntime",
]
