"""Size-or-timeout coalescing of concurrent query requests.

Concurrent callers each hold one small :class:`~repro.api.QueryRequest`;
executing them one by one pays one index scan (and one Python dispatch) per
caller.  The :class:`BatchAggregator` buffers arriving requests and releases
them as one batch the moment either trigger fires:

* **size** — the buffer reaches ``max_batch`` requests (released inline on
  the submitting caller's thread: the full-batch case never waits on a
  timer, and is fully deterministic);
* **timeout** — the *oldest* buffered request has waited ``linger`` clock
  seconds (released by a background flusher thread, so a lone request on a
  quiet server is answered after at most one linger).

All timing goes through an injected :class:`~repro.utils.clock.Clock`;
under the test-kit's :class:`~repro.utils.clock.VirtualClock` the timeout
trigger fires exactly when the test advances virtual time — no sleeps, no
flaky margins.  This is the flush-by-size-or-age batching pattern of
LLMPlotBot's batch manager, rebuilt around futures and an injectable clock.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.api.types import QueryRequest
from repro.server.config import ServerClosed
from repro.utils.clock import Clock, SystemClock


@dataclass
class PendingQuery:
    """One buffered request plus the future its caller is blocked on."""

    request: QueryRequest
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0


class BatchAggregator:
    """Coalesce submitted requests into batches for a downstream sink.

    ``sink`` receives each released batch (a non-empty list of
    :class:`PendingQuery`) and owns resolving the futures.  Size-triggered
    batches are handed to the sink on the submitting thread; timeout/flush
    batches on the flusher thread.  The sink must therefore be cheap and
    thread-safe — the serving runtime's sink just enqueues onto the worker
    queue.
    """

    def __init__(
        self,
        sink: Callable[[list[PendingQuery]], None],
        *,
        max_batch: int,
        linger: float,
        clock: Clock | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if linger < 0:
            raise ValueError("linger must be >= 0")
        self._sink = sink
        self.max_batch = int(max_batch)
        self.linger = float(linger)
        self._clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._pending: list[PendingQuery] = []
        self._wake = self._clock.make_event()
        self._closed = False
        self._batches = 0
        self._occupancy = 0
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Requests buffered but not yet released in a batch."""
        with self._lock:
            return len(self._pending)

    @property
    def stats(self) -> dict[str, float]:
        with self._lock:
            batches = self._batches
            occupancy = self._occupancy
        return {
            "batches": batches,
            "requests": occupancy,
            "mean_occupancy": occupancy / batches if batches else 0.0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the timeout flusher thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-server-aggregator", daemon=True
            )
            self._thread.start()

    def close(self) -> None:
        """Stop accepting requests, flush the buffer, stop the flusher."""
        with self._lock:
            self._closed = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.flush()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, request: QueryRequest) -> Future:
        """Buffer one request; returns the future its response will land on."""
        entry = PendingQuery(request=request, enqueued_at=self._clock.monotonic())
        batch: list[PendingQuery] | None = None
        with self._lock:
            if self._closed:
                raise ServerClosed("the aggregator is closed to new requests")
            self._pending.append(entry)
            if len(self._pending) >= self.max_batch:
                batch = self._take_locked()
            elif len(self._pending) == 1:
                # First request of a fresh buffer: arm the linger timer.
                self._wake.set()
        if batch is not None:
            self._sink(batch)
        return entry.future

    def flush(self) -> int:
        """Release whatever is buffered right now; returns how many requests."""
        with self._lock:
            batch = self._take_locked() if self._pending else None
        if batch is None:
            return 0
        self._sink(batch)
        return len(batch)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _take_locked(self) -> list[PendingQuery]:
        batch = self._pending
        self._pending = []
        self._batches += 1
        self._occupancy += len(batch)
        return batch

    def _run(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                deadline = (
                    self._pending[0].enqueued_at + self.linger if self._pending else None
                )
            if deadline is None:
                self._clock.wait(self._wake)
                self._wake.clear()
                continue
            timeout = deadline - self._clock.monotonic()
            if timeout > 0:
                self._clock.wait(self._wake, timeout)
                self._wake.clear()
            batch: list[PendingQuery] | None = None
            with self._lock:
                if self._closed:
                    return
                if self._pending and self._clock.monotonic() >= (
                    self._pending[0].enqueued_at + self.linger
                ):
                    batch = self._take_locked()
            if batch is not None:
                self._sink(batch)
