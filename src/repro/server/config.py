"""Configuration, hooks and error types of the serving runtime."""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path


class ServerClosed(RuntimeError):
    """The runtime no longer accepts work (shut down or never started)."""


class KillWorker(BaseException):
    """Raised from a hook to terminate the current query worker.

    The fault-injection escape hatch of the concurrency test-kit: a hook
    that raises this makes the worker re-enqueue its in-flight batch (no
    request is lost) and exit, exercising the supervision/respawn path.
    Derives from ``BaseException`` so a worker's per-request ``except
    Exception`` error containment cannot swallow it.
    """


@dataclass(frozen=True)
class ServerConfig:
    """Every knob of a :class:`~repro.server.runtime.ServingRuntime`.

    Query path — ``max_batch`` and ``linger`` drive the size-or-timeout
    batch aggregator (a batch is dispatched when it holds ``max_batch``
    requests or when its oldest request has waited ``linger`` seconds);
    ``num_workers`` query workers each own a bit-stable replica of the
    primary index; ``coalesce`` picks the batch execution mode of
    :meth:`repro.api.Engine.query_many` — ``"aligned"`` (default) is
    bitwise identical to sequential :meth:`~repro.api.Engine.query`,
    ``"fused"`` amortises one index scan across the batch at last-ulp
    distance drift.

    Ingest path — stream records are ingested in deterministic groups of
    exactly ``ingest_group_size`` records (the unit of crash-restart
    replay); after every ``publish_every_groups`` ingested groups the
    primary is snapshotted and a fresh replica generation is published to
    the workers; ``compact_min_tombstones > 0`` compacts the primary before
    each publish.  ``poll_interval`` is the background thread's stream
    polling cadence (clock seconds).

    Durability — with a ``checkpoint_dir``, every ``checkpoint_every_publishes``-th
    publish also writes a restartable checkpoint (index snapshot + stream
    byte offset); ``0`` checkpoints on every publish.  ``None`` disables
    checkpointing.

    Supervision — a worker killed by a fault (see :class:`KillWorker`) is
    replaced until ``max_worker_respawns`` replacements have been spawned;
    after that, queued batches fail over to the surviving workers, and if
    none survive, pending requests are failed with :class:`ServerClosed`.
    """

    max_batch: int = 32
    linger: float = 0.002
    num_workers: int = 2
    coalesce: str = "aligned"
    ingest_group_size: int = 64
    publish_every_groups: int = 1
    poll_interval: float = 0.05
    compact_min_tombstones: int = 0
    checkpoint_dir: str | Path | None = None
    checkpoint_every_publishes: int = 0
    max_worker_respawns: int = 2

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.linger < 0:
            raise ValueError("linger must be >= 0")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.coalesce not in ("aligned", "fused"):
            raise ValueError("coalesce must be 'aligned' or 'fused'")
        if self.ingest_group_size < 1:
            raise ValueError("ingest_group_size must be >= 1")
        if self.publish_every_groups < 1:
            raise ValueError("publish_every_groups must be >= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if self.compact_min_tombstones < 0:
            raise ValueError("compact_min_tombstones must be >= 0")
        if self.checkpoint_every_publishes < 0:
            raise ValueError("checkpoint_every_publishes must be >= 0")
        if self.max_worker_respawns < 0:
            raise ValueError("max_worker_respawns must be >= 0")

    def variant(self, **overrides) -> "ServerConfig":
        """A modified copy (mirrors :meth:`repro.api.EngineConfig.variant`)."""
        return replace(self, **overrides)


class ServerHooks:
    """Observation points of the runtime (all default to no-ops).

    Subclass and override to observe — or, in tests, to inject faults into —
    the runtime's threads.  Hooks run *on the runtime's own threads*: an
    exception raised from a batch hook fails that batch's requests, and
    :class:`KillWorker` terminates the hosting worker (the test-kit's
    worker-crash lever).  Keep implementations fast; they sit on the hot
    path.
    """

    def on_batch_start(self, worker_id: int, batch_size: int, generation: int) -> None:
        """A query worker is about to execute a batch against its replica."""

    def on_batch_done(self, worker_id: int, batch_size: int, generation: int) -> None:
        """The batch completed and every future in it has been resolved."""

    def on_publish(self, generation: int, rows: int) -> None:
        """A new replica generation was published from the primary."""

    def on_checkpoint(self, path: Path, generation: int) -> None:
        """A restartable checkpoint was committed to disk."""

    def on_worker_exit(self, worker_id: int, reason: str) -> None:
        """A query worker terminated (``reason`` is ``"stop"`` or ``"killed"``)."""
