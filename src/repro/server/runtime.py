"""The concurrent serving runtime: many callers, one engine, zero drift.

:class:`ServingRuntime` turns the single-threaded :class:`repro.api.Engine`
into a server.  Four cooperating pieces, each individually simple:

**Batch aggregation** (caller threads + one flusher).  Concurrent
:class:`~repro.api.QueryRequest`\\ s land in a
:class:`~repro.server.aggregator.BatchAggregator` and are released as one
batch by size (``max_batch``) or age (``linger``).  Callers block on
futures; nothing about a caller's answer depends on who it shared a batch
with — in the default ``"aligned"`` mode responses are **bitwise identical**
to the same requests issued sequentially through ``Engine.query`` (see
:meth:`Engine.query_many <repro.api.Engine.query_many>` for why shape
matching is what buys this).

**Query workers over replicas** (``num_workers`` daemon threads).  Each
worker owns a private replica engine restored from the latest *published
generation* — an ``Engine.snapshot`` of the primary, which restores
bit-identically by the facade's existing contract.  A batch is executed
entirely against one replica generation, so concurrent ingestion can never
tear a batch's view of the index.  Workers encode trajectory queries under
a shared encode lock (the model is not thread-safe); the index scans
release the GIL and run genuinely in parallel.

**Ingest/compaction thread** (one daemon).  Direct waves
(:meth:`submit_ingest`) and tailed JSONL records
(:meth:`attach_stream`) feed the primary.  Stream records are ingested in
deterministic groups of exactly ``ingest_group_size`` records — the unit of
crash-restart replay — and after every ``publish_every_groups`` groups the
primary is compacted (optionally) and snapshotted, publishing a new replica
generation that workers adopt at their next batch boundary.

**Checkpointing + graceful shutdown.**  With a ``checkpoint_dir``, publishes
periodically commit a :class:`~repro.server.checkpoint.Checkpointer`
checkpoint: index snapshot + the stream byte offset *before* any buffered
records.  Because checkpoints align with group boundaries, a killed server
restarted via :meth:`ServingRuntime.restore` re-reads the stream from the
recorded offset and re-forms **exactly** the encode groups the uninterrupted
run would have formed — the restarted index is bit-identical, not merely
equivalent.  :meth:`shutdown` drains in-flight queries, stops the workers,
flushes any partial ingest group and commits a final checkpoint.

Every blocking wait goes through an injected
:class:`~repro.utils.clock.Clock`, so the whole runtime is drivable by the
deterministic test-kit in ``tests/serving_runtime_kit.py`` with no real
sleeps anywhere.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from concurrent.futures import Future
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Iterable, Sequence

import numpy as np

from repro.api.engine import Engine, EngineConfig
from repro.api.types import QueryRequest, QueryResponse
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.metrics import dump_metrics as _dump_metrics
from repro.server.aggregator import BatchAggregator, PendingQuery
from repro.server.checkpoint import Checkpointer
from repro.server.config import KillWorker, ServerClosed, ServerConfig, ServerHooks
from repro.streaming.reader import TrajectoryStreamReader
from repro.trajectory.types import Trajectory
from repro.utils.clock import Clock, SystemClock

#: Worker-queue sentinel: the receiving worker exits cleanly.
_STOP = object()


class _QueryWorker(threading.Thread):
    """One query worker: private replica engine + batch execution loop."""

    def __init__(self, runtime: "ServingRuntime", worker_id: int) -> None:
        super().__init__(name=f"repro-server-worker-{worker_id}", daemon=True)
        self.runtime = runtime
        self.worker_id = worker_id
        self.replica: Engine | None = None
        self.replica_generation = -1

    def run(self) -> None:
        reason = "stop"
        try:
            while True:
                item = self.runtime._queue.get()
                if item is _STOP:
                    return
                batch: list[PendingQuery] = item
                try:
                    self._refresh_replica()
                    self.runtime._hooks.on_batch_start(
                        self.worker_id, len(batch), self.replica_generation
                    )
                    self.runtime._execute_batch(batch, self.replica)
                    self.runtime._hooks.on_batch_done(
                        self.worker_id, len(batch), self.replica_generation
                    )
                except KillWorker:
                    reason = "killed"
                    survivors = [entry for entry in batch if not entry.future.done()]
                    if survivors:
                        # The batch outlives its worker: hand it back for a
                        # surviving (or respawned) worker to serve.
                        self.runtime._queue.put(survivors)
                    return
                except Exception as exc:
                    # Batch-level failure (replica restore, backend error):
                    # fail this batch's callers, keep serving the next one.
                    for entry in batch:
                        if not entry.future.done():
                            entry.future.set_exception(exc)
        finally:
            self.runtime._worker_exited(self, reason)

    def _refresh_replica(self) -> None:
        generation, directory = self.runtime._published
        if generation != self.replica_generation:
            # Replicas report into the runtime's registry: the serving path
            # (cache hits, backend scans) runs here, not on the primary.
            registry = self.runtime._metrics_registry
            self.replica = Engine.restore(
                directory,
                self.runtime.primary.model,
                metrics=registry if registry.enabled else None,
                clock=self.runtime._clock,
            )
            self.replica_generation = generation


class ServingRuntime:
    """Concurrent query/ingest serving over one :class:`~repro.api.Engine`.

    The wrapped ``engine`` becomes the runtime's **primary**: only the
    ingest thread mutates it, and queries are served from bit-stable
    replica snapshots — callers must stop driving it directly.  Use as a
    context manager, or call :meth:`start` / :meth:`shutdown` explicitly.

    >>> runtime = ServingRuntime(engine, ServerConfig(num_workers=4))
    >>> with runtime:
    ...     runtime.attach_stream("trajectories.jsonl")
    ...     response = runtime.query(QueryRequest(queries=vectors, k=5))
    """

    def __init__(
        self,
        engine: Engine,
        config: ServerConfig | None = None,
        *,
        hooks: ServerHooks | None = None,
        clock: Clock | None = None,
        replica_dir: str | Path | None = None,
        metrics: "MetricsRegistry | NullRegistry | None" = None,
    ) -> None:
        self.primary = engine
        self.config = config or ServerConfig()
        self._hooks = hooks or ServerHooks()
        self._clock = clock if clock is not None else SystemClock()
        self._queue: queue.Queue[list[PendingQuery] | object] = queue.Queue()
        self._aggregator = BatchAggregator(
            self._enqueue_batch,
            max_batch=self.config.max_batch,
            linger=self.config.linger,
            clock=self._clock,
        )
        self._encode_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cond = threading.Condition(self._state_lock)
        self._workers: list[_QueryWorker] = []
        self._next_worker_id = 0
        self._started = False
        self._closed = False
        self._poisoned = False
        # Replica publication.
        self._replica_tmp: TemporaryDirectory | None = None
        if replica_dir is None:
            self._replica_tmp = TemporaryDirectory(prefix="repro-server-replicas-")
            replica_dir = self._replica_tmp.name
        self._replica_root = Path(replica_dir)
        self._published: tuple[int, Path] | None = None
        self._generation = 0
        # Ingestion.
        self._ingest_lock = threading.Lock()
        self._ingest_queue: deque[list[Trajectory]] = deque()
        self._ingest_wake = self._clock.make_event()
        self._stop_ingest = False
        self._ingester: threading.Thread | None = None
        self._reader: TrajectoryStreamReader | None = None
        self._stream_buffer: list[Trajectory] = []
        self._stream_base_state: dict[str, int] | None = None
        self._groups_since_publish = 0
        self._publishes_since_checkpoint = 0
        self._ingested_records = 0
        self._ingested_waves = 0
        self._checkpointer = (
            Checkpointer(self.config.checkpoint_dir)
            if self.config.checkpoint_dir is not None
            else None
        )
        # Counters.
        self._queries = 0
        self._batches = 0
        self._worker_deaths = 0
        self._respawns = 0
        self._publishes = 0
        self._checkpoints = 0
        # Observability: the server defaults to a live registry (pass
        # ``NULL_REGISTRY`` to opt out); an engine that already carries a
        # live registry keeps it, otherwise the primary is bound to ours so
        # encode/cache/backend metrics land in the same snapshot.
        if metrics is not None:
            self._metrics_registry = metrics
        elif engine.metrics_registry.enabled:
            self._metrics_registry = engine.metrics_registry
        else:
            self._metrics_registry = MetricsRegistry()
        if self._metrics_registry.enabled and not engine.metrics_registry.enabled:
            engine.bind_metrics(self._metrics_registry, clock=self._clock)
        registry = self._metrics_registry
        self._m_queries = registry.counter("server_queries_total", "queries answered")
        self._m_batches = registry.counter("server_batches_total", "batches executed")
        self._m_occupancy = registry.histogram(
            "server_batch_occupancy", "queries per released batch", buckets=DEFAULT_SIZE_BUCKETS
        )
        self._m_queue_wait = registry.histogram(
            "server_queue_wait_seconds",
            "submit-to-execution wait per query",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_service = registry.histogram(
            "server_batch_service_seconds",
            "encode + scan service time per batch",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_worker_deaths = registry.counter(
            "server_worker_deaths_total", "query workers killed"
        )
        self._m_worker_respawns = registry.counter(
            "server_worker_respawns_total", "query workers respawned"
        )
        self._m_publishes = registry.counter(
            "server_publishes_total", "replica generations published"
        )
        self._m_checkpoints = registry.counter(
            "server_checkpoints_total", "checkpoints committed"
        )
        self._m_checkpoint_latency = registry.histogram(
            "server_checkpoint_seconds",
            "checkpoint commit latency",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_ingested_records = registry.counter(
            "server_ingested_records_total", "records ingested (waves + stream)"
        )
        self._m_ingested_waves = registry.counter(
            "server_ingested_waves_total", "direct ingest waves applied"
        )
        self._m_stream_bytes = registry.counter(
            "server_stream_bytes_total", "stream bytes consumed"
        )
        self._m_lag_records = registry.gauge(
            "server_ingest_lag_records", "records accepted but not yet ingested"
        )
        self._m_lag_bytes = registry.gauge(
            "server_ingest_lag_bytes", "stream bytes on disk not yet consumed"
        )
        cache = registry.counter_family(
            "engine_cache_requests_total", "query-cache lookups by result", labels=("result",)
        )
        self._m_cache_hits = cache.labels(result="hit")
        self._m_cache_misses = cache.labels(result="miss")
        self._started_at: float | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingRuntime":
        """Publish the initial generation and start every thread (idempotent)."""
        with self._state_lock:
            if self._closed:
                raise ServerClosed("this runtime has been shut down")
            if self._started:
                return self
            self._started = True
            self._started_at = self._clock.monotonic()
        with self._ingest_lock:
            self._publish_locked()
        self._aggregator.start()
        with self._state_lock:
            for _ in range(self.config.num_workers):
                self._spawn_worker_locked()
        self._ingester = threading.Thread(
            target=self._ingest_loop, name="repro-server-ingester", daemon=True
        )
        self._ingester.start()
        return self

    def __enter__(self) -> "ServingRuntime":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the runtime; with ``drain`` (default) no accepted work is lost.

        Order matters: close the aggregator (flushing buffered requests to
        the workers), wait until every accepted query future is resolved,
        stop the workers, stop the ingest thread, ingest any remaining
        stream records and buffered partial group, and commit a final
        checkpoint when checkpointing is configured.  ``drain=False`` skips
        the waiting and the final ingest flush (in-flight work is abandoned
        best-effort; accepted futures may still resolve).
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        self._aggregator.close()
        if drain:
            with self._inflight_cond:
                self._inflight_cond.wait_for(lambda: self._inflight == 0, timeout)
        for _ in workers:
            self._queue.put(_STOP)
        for worker in workers:
            worker.join()
        self._stop_ingest = True
        self._ingest_wake.set()
        if self._ingester is not None:
            self._ingester.join()
            self._ingester = None
        if drain and self._started:
            with self._ingest_lock:
                self._drain_ingest_locked(force_partial=True)
                if self._groups_since_publish or self._checkpointer is not None:
                    self._publish_locked(force_checkpoint=self._checkpointer is not None)
        if self._replica_tmp is not None:
            self._replica_tmp.cleanup()
            self._replica_tmp = None

    @classmethod
    def restore(
        cls,
        checkpoint_dir: str | Path,
        encoder,
        *,
        config: ServerConfig | None = None,
        engine_config: EngineConfig | None = None,
        stream_path: str | Path | None = None,
        hooks: ServerHooks | None = None,
        clock: Clock | None = None,
        metrics: "MetricsRegistry | NullRegistry | None" = None,
    ) -> "ServingRuntime":
        """Rebuild a runtime from its last committed checkpoint (lossless restart).

        The primary engine is restored from the checkpoint snapshot and the
        stream reader (when ``stream_path`` is given) is repositioned at the
        checkpointed byte offset, so records that arrived after the crash —
        and records consumed but not yet checkpointed — are (re-)ingested in
        the same deterministic groups the uninterrupted run would have used.
        """
        engine, manifest = Checkpointer.restore_engine(
            checkpoint_dir, encoder, engine_config=engine_config
        )
        config = (config or ServerConfig()).variant(checkpoint_dir=checkpoint_dir)
        runtime = cls(engine, config, hooks=hooks, clock=clock, metrics=metrics)
        runtime._generation = int(manifest["generation"])
        runtime._ingested_records = int(manifest.get("ingested_records", 0))
        if stream_path is not None:
            runtime.attach_stream(stream_path, resume_state=manifest.get("stream"))
        return runtime

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def generation(self) -> int:
        """The replica generation currently served to query workers."""
        published = self._published
        return published[0] if published is not None else 0

    def stats(self) -> dict[str, object]:
        """A point-in-time counters snapshot (queries, batches, faults, …)."""
        aggregator = self._aggregator.stats
        with self._state_lock:
            snapshot = {
                "queries": self._queries,
                "batches": self._batches,
                "mean_occupancy": aggregator["mean_occupancy"],
                "pending": self._aggregator.pending,
                "queue_depth": self._queue.qsize(),
                "inflight": self._inflight,
                "workers_alive": len(self._workers),
                "worker_deaths": self._worker_deaths,
                "respawns": self._respawns,
                "publishes": self._publishes,
                "checkpoints": self._checkpoints,
                "generation": self.generation,
                "ingested_records": self._ingested_records,
                "ingested_waves": self._ingested_waves,
                "closed": self._closed,
            }
        return snapshot

    @property
    def metrics_registry(self) -> "MetricsRegistry | NullRegistry":
        """The registry this runtime (and its engines) report into."""
        return self._metrics_registry

    def metrics(self) -> dict[str, object]:
        """The registry snapshot plus a derived ``"slo"`` roll-up block.

        The SLO block condenses the raw series into the handful of numbers
        an operator actually watches: throughput (QPS over runtime uptime),
        cache hit rate, queue-wait and batch-service percentiles, batch
        occupancy, ingest lag (current and peak, records and bytes) and
        worker health.  With metrics disabled every derived value is zero
        and the ``"metrics"`` map is empty — the shape stays stable.
        """
        snapshot = self._metrics_registry.snapshot()
        uptime = 0.0
        if self._started_at is not None:
            uptime = max(0.0, self._clock.monotonic() - self._started_at)
        queries = self._m_queries.value
        hits = self._m_cache_hits.value
        misses = self._m_cache_misses.value
        lookups = hits + misses
        with self._state_lock:
            workers_alive = len(self._workers)
        snapshot["slo"] = {
            "uptime_seconds": uptime,
            "qps": queries / uptime if uptime > 0 else 0.0,
            "queries": queries,
            "batches": self._m_batches.value,
            "mean_batch_occupancy": self._m_occupancy.mean,
            "cache_hit_rate": hits / lookups if lookups else 0.0,
            "queue_wait_p50_ms": self._m_queue_wait.quantile(0.5) * 1e3,
            "queue_wait_p99_ms": self._m_queue_wait.quantile(0.99) * 1e3,
            "batch_service_p50_ms": self._m_service.quantile(0.5) * 1e3,
            "batch_service_p99_ms": self._m_service.quantile(0.99) * 1e3,
            "ingest_lag_records": self._m_lag_records.value,
            "ingest_lag_records_peak": self._m_lag_records.peak,
            "ingest_lag_bytes": self._m_lag_bytes.value,
            "ingest_lag_bytes_peak": self._m_lag_bytes.peak,
            "worker_deaths": self._m_worker_deaths.value,
            "worker_respawns": self._m_worker_respawns.value,
            "workers_alive": workers_alive,
            "generation": self.generation,
        }
        return snapshot

    def dump_metrics(self, path: str | Path) -> Path:
        """Atomically write :meth:`metrics` as JSON to ``path``; returns it."""
        return _dump_metrics(path, self.metrics())

    # ------------------------------------------------------------------ #
    # Query path
    # ------------------------------------------------------------------ #
    def submit(self, request: "QueryRequest | np.ndarray") -> Future:
        """Enqueue one query; returns the future its response resolves on."""
        if not isinstance(request, QueryRequest):
            request = QueryRequest(queries=request)
        with self._state_lock:
            if self._closed or self._poisoned or not self._started:
                raise ServerClosed(
                    "the runtime is not accepting queries "
                    "(not started, shut down, or all workers lost)"
                )
            self._inflight += 1
        try:
            future = self._aggregator.submit(request)
        except BaseException:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()
            raise
        future.add_done_callback(self._request_done)
        return future

    def query(
        self, request: "QueryRequest | np.ndarray", timeout: float | None = None
    ) -> QueryResponse:
        """Blocking :meth:`submit` — the drop-in for :meth:`Engine.query`."""
        return self.submit(request).result(timeout)

    def _request_done(self, _future: Future) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    def _enqueue_batch(self, batch: list[PendingQuery]) -> None:
        if self._poisoned:
            for entry in batch:
                entry.future.set_exception(
                    ServerClosed("all query workers died; the runtime is poisoned")
                )
            return
        self._queue.put(batch)

    def _execute_batch(self, batch: list[PendingQuery], replica: Engine) -> None:
        """Encode (per request, bit-identically) and answer one batch."""
        observed = self._metrics_registry.enabled
        execute_started = self._clock.monotonic() if observed else 0.0
        if observed:
            self._m_occupancy.observe(len(batch))
            for entry in batch:
                self._m_queue_wait.observe(max(0.0, execute_started - entry.enqueued_at))
        ready: list[tuple[PendingQuery, QueryRequest]] = []
        for entry in batch:
            try:
                request = entry.request
                if not isinstance(request.queries, np.ndarray):
                    # Same arithmetic as Engine.query: this request's
                    # trajectories, alone, through the bucketed encoder.
                    with self._encode_lock:
                        vectors = self.primary.encode(list(request.queries))
                    request = QueryRequest(queries=vectors, k=request.k)
                ready.append((entry, request))
            except Exception as exc:
                # One poisoned request must not fail its batch-mates.
                entry.future.set_exception(exc)
        if not ready:
            return
        responses = replica.query_many(
            [request for _, request in ready], coalesce=self.config.coalesce
        )
        for (entry, _), response in zip(ready, responses):
            entry.future.set_result(response)
        with self._state_lock:
            self._queries += len(ready)
            self._batches += 1
        self._m_queries.inc(len(ready))
        self._m_batches.inc()
        if observed:
            self._m_service.observe(max(0.0, self._clock.monotonic() - execute_started))

    # ------------------------------------------------------------------ #
    # Worker supervision
    # ------------------------------------------------------------------ #
    def _spawn_worker_locked(self) -> None:
        worker = _QueryWorker(self, self._next_worker_id)
        self._next_worker_id += 1
        self._workers.append(worker)
        worker.start()

    def _worker_exited(self, worker: _QueryWorker, reason: str) -> None:
        poison = False
        with self._state_lock:
            if worker in self._workers:
                self._workers.remove(worker)
            if reason == "killed":
                self._worker_deaths += 1
                self._m_worker_deaths.inc()
                if not self._closed:
                    if self._respawns < self.config.max_worker_respawns:
                        self._respawns += 1
                        self._m_worker_respawns.inc()
                        self._spawn_worker_locked()
                    elif not self._workers:
                        self._poisoned = True
                        poison = True
        self._hooks.on_worker_exit(worker.worker_id, reason)
        if poison:
            # Nobody is left to serve: fail queued batches instead of
            # hanging their callers.
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _STOP:
                    continue
                for entry in item:
                    if not entry.future.done():
                        entry.future.set_exception(
                            ServerClosed("all query workers died; the runtime is poisoned")
                        )

    # ------------------------------------------------------------------ #
    # Ingest path
    # ------------------------------------------------------------------ #
    def attach_stream(
        self, path: str | Path, *, resume_state: dict[str, int] | None = None
    ) -> TrajectoryStreamReader:
        """Tail ``path`` (a trajectories JSONL); returns the reader used."""
        reader = TrajectoryStreamReader(path)
        if resume_state:
            reader.seek(**resume_state)
        with self._ingest_lock:
            self._reader = reader
            self._stream_buffer = []
            self._stream_base_state = reader.state
        self._ingest_wake.set()
        return reader

    def submit_ingest(self, trajectories: Sequence[Trajectory]) -> int:
        """Queue one wave for the background ingest thread; returns its size."""
        wave = list(trajectories)
        with self._state_lock:
            if self._closed:
                raise ServerClosed("the runtime is not accepting ingests")
        if wave:
            # The ingest thread pops this queue under _ingest_lock; a
            # lock-free append here relies on deque atomicity instead of the
            # class's lock discipline.
            with self._ingest_lock:
                self._ingest_queue.append(wave)
                self._note_ingest_lag_locked()
            self._ingest_wake.set()
        return len(wave)

    def ingest(self, trajectories: Iterable[Trajectory]) -> int:
        """Synchronous ingest of one wave into the primary (publishes if due)."""
        wave = list(trajectories)
        if not wave:
            return 0
        with self._ingest_lock:
            self._ingest_wave_locked(wave)
            self._maybe_publish_locked()
        return len(wave)

    def pump(self) -> dict[str, int | bool]:
        """Run one ingest cycle synchronously (the test-kit's deterministic lever).

        Drains queued waves, polls the attached stream into full groups,
        and publishes/checkpoints when due — exactly what the background
        thread does once per ``poll_interval``.  Returns what happened.
        """
        with self._ingest_lock:
            waves = records = 0
            while True:
                try:
                    wave = self._ingest_queue.popleft()
                except IndexError:
                    break
                self._ingest_wave_locked(wave)
                waves += 1
            records = self._poll_stream_locked()
            published = self._maybe_publish_locked()
        return {"waves": waves, "stream_records": records, "published": published}

    def flush_ingest(self) -> dict[str, int | bool]:
        """Like :meth:`pump`, but also force the partial stream group through
        and publish unconditionally (plus checkpoint when configured)."""
        with self._ingest_lock:
            result = self._drain_ingest_locked(force_partial=True)
            self._publish_locked(force_checkpoint=self._checkpointer is not None)
        return result

    def _ingest_loop(self) -> None:
        while True:
            self._clock.wait(self._ingest_wake, timeout=self.config.poll_interval)
            self._ingest_wake.clear()
            if self._stop_ingest:
                return
            self.pump()

    def _ingest_wave_locked(self, wave: list[Trajectory]) -> None:
        with self._encode_lock:
            self.primary.ingest(wave)
        self._ingested_waves += 1
        self._groups_since_publish += 1
        self._m_ingested_waves.inc()
        self._m_ingested_records.inc(len(wave))
        self._note_ingest_lag_locked()

    def _poll_stream_locked(self) -> int:
        """Pull full deterministic groups off the stream; returns records ingested."""
        if self._reader is None:
            return 0
        observed = self._metrics_registry.enabled
        offset_before = self._reader.offset
        if observed:
            self._observe_stream_lag_locked()  # backlog at poll start: peak = burst depth
        ingested = self._poll_stream_groups_locked()
        if observed:
            self._m_stream_bytes.inc(max(0, self._reader.offset - offset_before))
            self._observe_stream_lag_locked()
            self._note_ingest_lag_locked()
        return ingested

    def _note_ingest_lag_locked(self) -> None:
        """Publish the records-lag gauge: accepted but not yet in the primary."""
        if not self._metrics_registry.enabled:
            return
        queued = sum(len(wave) for wave in self._ingest_queue) + len(self._stream_buffer)
        self._m_lag_records.set(float(queued))

    def _observe_stream_lag_locked(self) -> None:
        """Publish the bytes-lag gauge: stream bytes on disk the reader has not consumed."""
        if self._reader is None:
            return
        try:
            size = self._reader.path.stat().st_size
        except OSError:
            return
        self._m_lag_bytes.set(float(max(0, size - self._reader.offset)))

    def _poll_stream_groups_locked(self) -> int:
        group_size = self.config.ingest_group_size
        ingested = 0
        while True:
            if not self._stream_buffer:
                # Only boundary offsets are checkpointable: remember the
                # reader position *before* any buffered records.
                self._stream_base_state = self._reader.state
            need = group_size - len(self._stream_buffer)
            self._stream_buffer.extend(self._reader.poll(max_records=need))
            if len(self._stream_buffer) < group_size:
                return ingested
            group, self._stream_buffer = self._stream_buffer, []
            self._ingest_group_locked(group)
            ingested += len(group)

    def _ingest_group_locked(self, group: list[Trajectory]) -> None:
        with self._encode_lock:
            self.primary.ingest(group)
        self._ingested_records += len(group)
        self._groups_since_publish += 1
        self._m_ingested_records.inc(len(group))

    def _drain_ingest_locked(self, *, force_partial: bool) -> dict[str, int | bool]:
        waves = 0
        while True:
            try:
                wave = self._ingest_queue.popleft()
            except IndexError:
                break
            self._ingest_wave_locked(wave)
            waves += 1
        records = self._poll_stream_locked()
        if force_partial and self._stream_buffer:
            group, self._stream_buffer = self._stream_buffer, []
            self._ingest_group_locked(group)
            records += len(group)
            self._stream_base_state = self._reader.state
        self._note_ingest_lag_locked()
        return {"waves": waves, "stream_records": records, "published": False}

    # ------------------------------------------------------------------ #
    # Publication + checkpointing
    # ------------------------------------------------------------------ #
    def _maybe_publish_locked(self) -> bool:
        if self._groups_since_publish < self.config.publish_every_groups:
            return False
        self._publish_locked()
        return True

    def _publish_locked(self, *, force_checkpoint: bool = False) -> None:
        """Snapshot the primary and atomically publish a new replica generation."""
        if self.config.compact_min_tombstones > 0:
            self.primary.compact(min_tombstones=self.config.compact_min_tombstones)
        self._generation += 1
        directory = self._replica_root / f"gen_{self._generation:06d}"
        self.primary.snapshot(directory)
        self._published = (self._generation, directory)
        self._groups_since_publish = 0
        self._publishes += 1
        self._publishes_since_checkpoint += 1
        self._m_publishes.inc()
        self._hooks.on_publish(self._generation, len(self.primary))
        if self._checkpointer is not None and (
            force_checkpoint
            or self._publishes_since_checkpoint > self.config.checkpoint_every_publishes
        ):
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        observed = self._metrics_registry.enabled
        checkpoint_started = self._clock.monotonic() if observed else 0.0
        info = self._checkpointer.save(
            self.primary,
            generation=self._generation,
            stream_state=self._stream_base_state,
            ingested_records=self._ingested_records,
        )
        self._publishes_since_checkpoint = 0
        self._checkpoints += 1
        self._m_checkpoints.inc()
        if observed:
            self._m_checkpoint_latency.observe(
                max(0.0, self._clock.monotonic() - checkpoint_started)
            )
        self._hooks.on_checkpoint(info.path, info.generation)
