"""The :class:`Finding` record every rule emits.

One finding is one violated invariant at one source location.  Findings are
frozen (reporters and the baseline matcher share them freely) and orderable
by location, so reports are deterministic regardless of rule execution
order — the analyzer holds itself to the determinism lint it enforces.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    ``path`` is the module path relative to the ``repro`` package root
    (e.g. ``server/runtime.py``) so findings — and the baseline entries that
    grandfather them — stay stable across checkouts and scan roots.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def family(self) -> str:
        """The rule family prefix (``race``, ``det``, ``dtype``, ``layer``)."""
        return self.rule.split("-", 1)[0]

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    def render(self) -> str:
        """The one-line human form: ``path:line:col: [rule] message``."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
