"""Per-module analysis context shared by every rule.

One :class:`ModuleContext` is built per analyzed file: the parsed tree, raw
source lines, the suppression map, and lazily-built derived structures
(parent links, the imported-name table).  Rules read from it and report
findings through it; suppressed findings are dropped at report time so no
rule needs to know the suppression syntax.
"""

from __future__ import annotations

import ast
from functools import cached_property

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.suppress import is_suppressed, parse_suppressions


class ModuleContext:
    """Everything a rule may want to know about one module under analysis."""

    def __init__(
        self,
        rel_path: str,
        source: str,
        tree: ast.Module,
        config: AnalysisConfig,
    ) -> None:
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.config = config
        self.lines: list[str] = source.splitlines()
        self.allowed: dict[int, frozenset[str]] = parse_suppressions(source)
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []

    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent links for the whole tree (built on first use)."""
        links: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                links[child] = node
        return links

    @cached_property
    def imported_modules(self) -> frozenset[str]:
        """Top-level module names imported anywhere (``import x``/``from x``)."""
        names: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                names.add(node.module.split(".")[0])
        return frozenset(names)

    def line_text(self, lineno: int) -> str:
        """The 1-based physical source line (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def report(self, node: ast.AST, rule: str, family: str, message: str) -> None:
        """Record one finding at ``node``, honouring inline suppressions."""
        line = int(getattr(node, "lineno", 1))
        finding = Finding(
            path=self.rel_path,
            line=line,
            col=int(getattr(node, "col_offset", 0)),
            rule=rule,
            message=message,
        )
        if is_suppressed(
            self.allowed, rule, family, line, getattr(node, "end_lineno", None)
        ):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)
