"""Inline suppression comments: ``# repro: allow[rule-id]``.

A finding is suppressed when any physical line its node spans carries an
allow comment naming the finding's rule id, its family (``race``, ``det``,
``dtype``, ``layer``), or ``all``.  Several ids may share one comment:
``# repro: allow[det-wallclock, dtype-untyped-alloc]``.

Suppressions are parsed from raw source lines (not the AST — comments never
reach it), once per module, into a line-number → token-set map.
"""

from __future__ import annotations

import re

_ALLOW_PATTERN = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule tokens allowed on that line."""
    allowed: dict[int, frozenset[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_PATTERN.search(line)
        if match is None:
            continue
        tokens = frozenset(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
        if tokens:
            allowed[number] = tokens
    return allowed


def is_suppressed(
    allowed: dict[int, frozenset[str]],
    rule: str,
    family: str,
    start_line: int,
    end_line: int | None = None,
) -> bool:
    """True when lines ``start_line..end_line`` allow ``rule`` (or its family)."""
    last = end_line if end_line is not None else start_line
    for line in range(start_line, last + 1):
        tokens = allowed.get(line)
        if tokens and not tokens.isdisjoint({rule, family, "all"}):
            return True
    return False
