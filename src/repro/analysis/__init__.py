"""``repro.analysis`` — AST-based invariant checking for the whole tree.

The codebase runs on invariants no runtime test can fully cover: bit-stable
results (no wall clocks or global RNG in library code), single-writer lock
discipline in the concurrent layers, float32 hot paths, and facade-only
construction of serving components.  This package checks them statically —
stdlib ``ast`` only — and gates CI on zero new findings.

Entry points:

* ``python -m repro.analysis src/repro`` — the CLI (human or ``--format
  json`` reports, baseline-aware, exit code 1 on new findings);
* :func:`run_analysis` / :func:`analyze_source` — the programmatic surface
  the repo-invariant test and the fixture tests drive;
* ``# repro: allow[rule-id]`` — inline suppression on the offending line;
* ``analysis_baseline.json`` — grandfathered findings, each with a reason.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.config import (
    AnalysisConfig,
    DeterminismConfig,
    DtypeConfig,
    LayeringConfig,
    RaceConfig,
)
from repro.analysis.engine import (
    AnalysisResult,
    analyze_source,
    iter_python_files,
    package_relative_path,
    run_analysis,
)
from repro.analysis.findings import Finding
from repro.analysis.report import render_human, render_json
from repro.analysis.rules import Rule, available_rules, register_rule, rule_families

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "DeterminismConfig",
    "DtypeConfig",
    "Finding",
    "LayeringConfig",
    "RaceConfig",
    "Rule",
    "analyze_source",
    "available_rules",
    "iter_python_files",
    "package_relative_path",
    "register_rule",
    "render_human",
    "render_json",
    "rule_families",
    "run_analysis",
]
