"""``python -m repro.analysis`` — the CI gate and the developer loop.

Exit codes: ``0`` when no new (non-baselined, non-suppressed) findings,
``1`` when the gate fails, ``2`` on usage errors.  ``--format json`` prints
the machine report to stdout; ``--output`` additionally writes it to a file
(the CI artifact) regardless of the chosen stdout format.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import run_analysis
from repro.analysis.report import render_human, render_json
from repro.analysis.rules import available_rules, rule_families


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant checker: lock-discipline race lint, "
            "determinism lint, dtype lint, layering lint."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="stdout report format (default: human)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding as new",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids and/or families to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule inventory and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print baselined and inline-suppressed findings (human format)",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for family, rule_ids in rule_families().items():
        lines.append(f"{family}:")
        registry = available_rules()
        for rule_id in rule_ids:
            lines.append(f"  {rule_id:24s} {registry[rule_id].description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly like a
        # well-behaved unix filter instead of tracebacking.
        sys.stderr.close()
        return 1


def _main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    baseline: Baseline | None = None
    if not args.no_baseline:
        baseline_path = args.baseline
        if baseline_path is None:
            candidate = Path(DEFAULT_BASELINE_NAME)
            baseline_path = candidate if candidate.exists() else None
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    selection = None
    if args.rules is not None:
        selection = [token.strip() for token in args.rules.split(",") if token.strip()]
    try:
        result = run_analysis(args.paths, rules=selection, baseline=baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(render_json(result))
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_human(result, verbose=args.verbose))
    return 0 if result.ok else 1
