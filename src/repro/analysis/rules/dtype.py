"""Dtype-discipline lint (``dtype-*``) for the float32 hot paths.

The serving stack's speed story is float32 end to end: half the memory
traffic of float64, and every index backend, kernel, and snapshot depends on
it.  A single dtype-less allocation silently promotes a whole pipeline back
to float64 — correct answers, twice the latency.  Three checks, enforced
only in the configured hot-path modules:

``dtype-untyped-alloc``
    ``np.array``/``np.zeros``/``np.ones``/``np.empty``/``np.full`` without
    an explicit ``dtype=`` — the default is float64.

``dtype-float64-cast``
    Explicit promotion: ``.astype(np.float64)`` (or ``float``/"float64"),
    ``np.float64(...)``, and ``dtype=np.float64`` keywords.  Deliberate
    float64 accumulators (numerical stability) should carry an inline
    ``# repro: allow[dtype-float64-cast]`` with the justification alongside.

``dtype-float-literal``
    Arithmetic between a bare float literal and a NumPy call expression
    (e.g. ``np.sum(x) / 2.0``): under value-based promotion rules this is
    where float32 pipelines historically leaked to float64 — prefer
    ``np.float32`` scalars or dtype-preserving in-place ops in kernels.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.rules import Rule, dotted_name, register_rule

#: Expressions denoting the float64 dtype in casts and dtype= keywords.
_FLOAT64_STRINGS = frozenset({"float64", "double", "f8", ">f8", "<f8"})


def _is_float64_expr(node: ast.AST) -> bool:
    dotted = dotted_name(node)
    if dotted in ("np.float64", "numpy.float64", "np.double", "numpy.double"):
        return True
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    return isinstance(node, ast.Constant) and node.value in _FLOAT64_STRINGS


class _DtypeRule(Rule):
    """Shared scoping: only the configured hot-path modules are checked."""

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.config.dtype.is_hot_path(ctx.rel_path)


@register_rule
class UntypedAllocRule(_DtypeRule):
    """Array allocation without an explicit dtype (defaults to float64)."""

    rule_id = "dtype-untyped-alloc"
    family = "dtype"
    description = "np.array/np.zeros/... without dtype= in a hot-path module"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if (
                len(parts) == 2
                and parts[0] in ("np", "numpy")
                and parts[1] in self.ctx.config.dtype.untyped_allocators
                and not any(kw.arg == "dtype" for kw in node.keywords)
            ):
                self.report(
                    node,
                    f"'{dotted}(...)' without dtype= defaults to float64 in a "
                    "float32 hot path — pass dtype=np.float32 (or the intended "
                    "integer dtype) explicitly",
                )
        self.generic_visit(node)


@register_rule
class Float64CastRule(_DtypeRule):
    """Explicit float64 promotion in a hot-path module."""

    rule_id = "dtype-float64-cast"
    family = "dtype"
    description = "astype(float64)/np.float64()/dtype=float64 in a hot-path module"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted in ("np.float64", "numpy.float64"):
            self.report(
                node, "'np.float64(...)' promotes to float64 in a float32 hot path"
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
            and _is_float64_expr(node.args[0])
        ):
            self.report(
                node,
                "'.astype(float64)' promotes a hot-path array to float64 — "
                "keep the pipeline float32",
            )
        for keyword in node.keywords:
            if keyword.arg == "dtype" and _is_float64_expr(keyword.value):
                self.report(
                    node,
                    "dtype=float64 allocates a float64 array in a float32 hot "
                    "path — use float32 unless this is a justified accumulator",
                )
        self.generic_visit(node)


@register_rule
class FloatLiteralRule(_DtypeRule):
    """Bare float-literal arithmetic against a NumPy expression."""

    rule_id = "dtype-float-literal"
    family = "dtype"
    description = "float literal combined with a NumPy call result in a hot path"

    _OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, self._OPS) and not self._cast_to_float32(node):
            for literal, other in ((node.left, node.right), (node.right, node.left)):
                if (
                    isinstance(literal, ast.Constant)
                    and isinstance(literal.value, float)
                    and self._is_numpy_call(other)
                ):
                    self.report(
                        node,
                        f"bare float literal {literal.value!r} combined with a "
                        "NumPy expression — use np.float32 scalars (or in-place "
                        "ops) so the hot path cannot promote to float64",
                    )
                    break
        self.generic_visit(node)

    @staticmethod
    def _is_numpy_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = dotted_name(node.func)
        return dotted is not None and dotted.split(".")[0] in ("np", "numpy")

    def _cast_to_float32(self, node: ast.BinOp) -> bool:
        """True when an enclosing expression casts the result to float32."""
        current = self.ctx.parents.get(node)
        while current is not None and not isinstance(current, ast.stmt):
            if isinstance(current, ast.Call):
                dotted = dotted_name(current.func)
                if dotted in ("np.float32", "numpy.float32"):
                    return True
                if (
                    isinstance(current.func, ast.Attribute)
                    and current.func.attr == "astype"
                ):
                    return True
            current = self.ctx.parents.get(current)
        return False
