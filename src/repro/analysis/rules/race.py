"""Lock-discipline race lint (``race-*``).

Thread-reachable code — anything under the configured ``thread_paths``
(``server/``, ``streaming/``) or any class marked ``# thread: shared`` —
must mutate shared instance state under a lock.  Two checks:

``race-unguarded-write``
    For each class, the *guarded set* is inferred: every ``self.attr``
    mutated inside a ``with self._lock:``-style block, or inside a method
    following the ``*_locked`` caller-holds-the-lock naming convention, is
    evidently meant to be lock-protected.  Any mutation of a guarded
    attribute *outside* a lock context (and outside ``__init__``) is a
    latent data race: the lock only works if every writer takes it.

``race-lockless-class``
    A class in thread-reachable scope that owns no lock at all yet mutates
    instance state in its regular methods — the exact shape of the pre-PR-6
    ``_LRUCache``, whose lock-free ``get`` mutated hit counters and LRU
    order from every query worker at once.  Single-writer classes that are
    only ever driven by one thread (e.g. behind the runtime's ingest lock)
    are deliberate exceptions: baseline them with that reason.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.rules import Rule, register_rule

#: Constructor names whose result is a lock-like object.
_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "add",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
    }
)


@dataclass(frozen=True)
class _Write:
    """One mutation of ``self.<attr>`` inside a method body."""

    attr: str
    node: ast.AST
    method: str
    locked: bool


def _self_attribute(node: ast.AST) -> str | None:
    """The attribute name when ``node`` is ``self.<attr>`` (else ``None``)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_attr(node: ast.AST) -> str | None:
    """The ``self.<attr>`` a statement/expression mutates, if any."""
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attr = _self_attribute(target)
            if attr is not None:
                return attr
            # self.attr[key] = value / self.attr[key] += value
            if isinstance(target, ast.Subscript):
                attr = _self_attribute(target.value)
                if attr is not None:
                    return attr
    if isinstance(node, ast.Call):
        # self.attr.append(...) and friends mutate self.attr in place.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            attr = _self_attribute(node.func.value)
            if attr is not None:
                return attr
    return None


class _ClassLockModel:
    """Lock facts about one class: lock attrs, guarded set, every write."""

    def __init__(self, class_def: ast.ClassDef, ctx: ModuleContext) -> None:
        self.class_def = class_def
        self.ctx = ctx
        self.config = ctx.config.race
        self.lock_attrs: set[str] = set()
        self.has_lock_context = False
        self.writes: list[_Write] = []
        self._collect_lock_attrs()
        for method in self._methods():
            self._collect_writes(method)

    # -- structure ----------------------------------------------------- #
    def _methods(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in self.class_def.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _own_nodes(self, root: ast.AST) -> Iterator[ast.AST]:
        """Walk ``root`` without descending into nested classes."""
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            if isinstance(node, ast.ClassDef):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- lock discovery ------------------------------------------------ #
    def _is_lockish_name(self, attr: str) -> bool:
        lowered = attr.lower()
        return attr in self.lock_attrs or any(
            hint in lowered for hint in self.config.lock_name_hints
        )

    def _collect_lock_attrs(self) -> None:
        for node in self._own_nodes(self.class_def):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _LOCK_CONSTRUCTORS
            ):
                continue
            for target in node.targets:
                attr = _self_attribute(target)
                if attr is not None:
                    self.lock_attrs.add(attr)

    def _is_lock_with(self, node: ast.With | ast.AsyncWith) -> bool:
        for item in node.items:
            expr = item.context_expr
            # `with self._lock:` — also Condition objects (`with self._cond:`).
            attr = _self_attribute(expr)
            if attr is not None and self._is_lockish_name(attr):
                return True
            # `with self._lock.acquire_timeout(...)` style helpers.
            if isinstance(expr, ast.Call):
                attr = _self_attribute(expr.func)
                if attr is not None and self._is_lockish_name(attr):
                    return True
        return False

    # -- write collection ---------------------------------------------- #
    def _method_is_locked(self, name: str) -> bool:
        return any(name.endswith(suffix) for suffix in self.config.locked_suffixes)

    def _collect_writes(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        suffix_locked = self._method_is_locked(method.name)

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, ast.ClassDef):
                return
            if isinstance(node, (ast.With, ast.AsyncWith)) and self._is_lock_with(node):
                self.has_lock_context = True
                locked = True
            attr = _written_attr(node)
            if attr is not None and attr not in self.lock_attrs:
                self.writes.append(
                    _Write(attr=attr, node=node, method=method.name, locked=locked)
                )
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        for child in method.body:
            visit(child, suffix_locked)

    # -- verdicts ------------------------------------------------------ #
    @property
    def guarded_attrs(self) -> set[str]:
        return {write.attr for write in self.writes if write.locked}

    def is_marked_shared(self) -> bool:
        marker = self.config.shared_marker
        for lineno in (self.class_def.lineno, self.class_def.lineno - 1):
            if marker in self.ctx.line_text(lineno):
                return True
        return False

    def is_thread_reachable(self) -> bool:
        return self.config.is_thread_path(self.ctx.rel_path) or self.is_marked_shared()

    def unguarded_writes(self) -> list[_Write]:
        guarded = self.guarded_attrs
        return [
            write
            for write in self.writes
            if write.attr in guarded
            and not write.locked
            and write.method not in self.config.exempt_methods
        ]

    def lockless_mutations(self) -> list[_Write]:
        if self.lock_attrs or self.has_lock_context:
            return []
        return [
            write
            for write in self.writes
            if write.method not in self.config.exempt_methods
        ]


def _iter_class_models(ctx: ModuleContext) -> Iterator[_ClassLockModel]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            yield _ClassLockModel(node, ctx)


@register_rule
class UnguardedWriteRule(Rule):
    """A lock-guarded attribute is also written outside the lock."""

    rule_id = "race-unguarded-write"
    family = "race"
    description = (
        "attribute guarded by `with self._lock:` elsewhere is mutated outside "
        "any lock in a thread-reachable method"
    )

    def run(self) -> None:
        for model in _iter_class_models(self.ctx):
            if not model.is_thread_reachable():
                continue
            for write in model.unguarded_writes():
                self.report(
                    write.node,
                    f"'{model.class_def.name}.{write.attr}' is guarded by a lock "
                    f"elsewhere in the class but mutated without it in "
                    f"'{write.method}' — every writer must take the lock",
                )


@register_rule
class LocklessClassRule(Rule):
    """A thread-reachable class mutates state without owning any lock."""

    rule_id = "race-lockless-class"
    family = "race"
    description = (
        "class in a thread-reachable module mutates instance state in regular "
        "methods without any lock (the pre-PR-6 _LRUCache shape)"
    )

    def run(self) -> None:
        for model in _iter_class_models(self.ctx):
            if not model.is_thread_reachable():
                continue
            mutations = model.lockless_mutations()
            if not mutations:
                continue
            example = mutations[0]
            self.report(
                model.class_def,
                f"class '{model.class_def.name}' is thread-reachable but mutates "
                f"instance state (e.g. 'self.{example.attr}' in '{example.method}' "
                f"at line {example.node.lineno}) without any lock — add a lock or "
                "baseline it with the reason it is single-writer",
            )
