"""Rule base class and the rule registry.

A rule is an :class:`ast.NodeVisitor` with identity (``rule_id``, ``family``,
``description``): the engine instantiates each registered rule per module and
hands it the :class:`~repro.analysis.context.ModuleContext`; the rule walks
the tree with standard visitor dispatch and reports findings through
``self.report(...)``.  Registration is by decorator, and the registry is what
the CLI's ``--rules`` selection and the API-surface lockfile enumerate.

Adding a rule is three steps: subclass :class:`Rule` in a module under
``repro/analysis/rules/``, decorate it with :func:`register_rule`, and import
it from this package's ``_load_builtin_rules`` — plus a fixture trio
(violating / suppressed / clean) in ``tests/test_analysis.py``.
"""

from __future__ import annotations

import ast
from typing import Callable, ClassVar, Iterable, Type

from repro.analysis.context import ModuleContext


class Rule(ast.NodeVisitor):
    """One invariant checker: visitor dispatch over a module's AST."""

    rule_id: ClassVar[str] = ""
    family: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path scoping)."""
        return True

    def run(self) -> None:
        """Walk the module; override for rules that need multiple passes."""
        self.visit(self.ctx.tree)

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.report(node, self.rule_id, self.family, message)


_REGISTRY: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.rule_id or not cls.family:
        raise ValueError(f"{cls.__name__} must define rule_id and family")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _load_builtin_rules() -> None:
    from repro.analysis.rules import determinism, dtype, layering, race  # noqa: F401


def available_rules() -> dict[str, Type[Rule]]:
    """All registered rules, keyed by id (loads the built-ins on first use)."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def rule_families() -> dict[str, tuple[str, ...]]:
    """Family name → sorted rule ids in that family."""
    families: dict[str, list[str]] = {}
    for rule_id, cls in available_rules().items():
        families.setdefault(cls.family, []).append(rule_id)
    return {family: tuple(sorted(ids)) for family, ids in sorted(families.items())}


def select_rules(selection: Iterable[str] | None = None) -> list[Type[Rule]]:
    """Resolve a ``--rules`` selection (ids and/or family names) to classes."""
    registry = available_rules()
    if selection is None:
        return [registry[rule_id] for rule_id in sorted(registry)]
    chosen: dict[str, Type[Rule]] = {}
    for token in selection:
        matched = {
            rule_id: cls
            for rule_id, cls in registry.items()
            if rule_id == token or cls.family == token
        }
        if not matched:
            known = ", ".join(sorted(set(registry) | {c.family for c in registry.values()}))
            raise ValueError(f"unknown rule or family {token!r} (known: {known})")
        chosen.update(matched)
    return [chosen[rule_id] for rule_id in sorted(chosen)]


#: Shared helper: dotted-name rendering for Call targets (``a.b.c`` or None).
def dotted_name(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


ReportFn = Callable[[ast.AST, str], None]
