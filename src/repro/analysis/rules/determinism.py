"""Determinism lint (``det-*``).

The repository's north-star contract is bit-stable results: snapshots
restore bit-identically, batched queries equal sequential queries, restarts
replay to the same index.  Library code that reads wall clocks, draws from
process-global RNGs, or iterates environment-ordered collections breaks
that silently.  Three checks:

``det-wallclock``
    ``time.time()``/``time.monotonic()``/``datetime.now()`` and friends
    anywhere outside the clock abstraction (``utils/clock.py``) — library
    code must take an injected :class:`~repro.utils.clock.Clock` (timing
    *measurement* via ``time.perf_counter`` is deliberately not flagged).

``det-global-rng``
    ``random.*`` module calls and global ``np.random.*`` draws, plus
    *unseeded* ``np.random.default_rng()`` — randomness must come from an
    explicitly seeded ``np.random.Generator`` passed in by the caller
    (``utils/seeding.py`` is the one sanctioned place that touches the
    global state, and ``*.seed(...)`` calls inject determinism rather than
    consume it).

``det-env-iteration``
    Environment-ordered iteration feeding results: ``os.listdir``/
    ``Path.iterdir``/``glob`` results consumed without ``sorted(...)``, and
    iteration over ``set`` values flowing into ordered sinks (``list``,
    ``extend``, ``for`` loops) — set order varies with hash seeding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.rules import Rule, dotted_name, register_rule

#: Calls returning environment-ordered listings, as dotted-name suffixes.
_ENV_LISTING_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})

#: Attribute calls on path objects returning environment-ordered listings.
_ENV_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})


class _DeterminismRule(Rule):
    """Shared scoping: the clock/seeding modules are exempt."""

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.config.determinism.is_exempt(ctx.rel_path)


@register_rule
class WallclockRule(_DeterminismRule):
    """Wall-clock reads in library code (use an injected Clock)."""

    rule_id = "det-wallclock"
    family = "det"
    description = "time.time()/datetime.now() outside utils/clock.py"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            for entry in self.ctx.config.determinism.wallclock_calls:
                if dotted == entry or dotted.endswith("." + entry):
                    self.report(
                        node,
                        f"'{dotted}()' reads the wall clock in library code — "
                        "inject a repro.utils.clock.Clock instead",
                    )
                    break
        self.generic_visit(node)


@register_rule
class GlobalRngRule(_DeterminismRule):
    """Process-global / unseeded randomness in library code."""

    rule_id = "det-global-rng"
    family = "det"
    description = "module-level random.* or unseeded np.random.* usage"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            self._check(node, dotted)
        self.generic_visit(node)

    def _check(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if (
            parts[0] == "random"
            and len(parts) == 2
            and "random" in self.ctx.imported_modules
            and parts[1] != "seed"
        ):
            self.report(
                node,
                f"'{dotted}()' draws from the process-global random module — "
                "take an explicit np.random.Generator instead",
            )
            return
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            method = parts[2]
            if method == "seed":
                return
            if method == "default_rng":
                if not node.args and not node.keywords:
                    self.report(
                        node,
                        "'np.random.default_rng()' without a seed is "
                        "run-to-run nondeterministic — pass an explicit seed "
                        "or accept a Generator from the caller",
                    )
                return
            self.report(
                node,
                f"'{dotted}()' uses NumPy's global RNG state — take an "
                "explicit np.random.Generator instead",
            )


def _iter_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
    """Yield ``(scope, nodes)`` per scope, not descending into inner scopes."""
    scopes: list[ast.AST] = [tree]
    collected: list[tuple[ast.AST, list[ast.AST]]] = []
    while scopes:
        scope = scopes.pop()
        nodes: list[ast.AST] = []
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                scopes.append(node)
                continue
            nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))
        collected.append((scope, nodes))
    yield from collected


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register_rule
class EnvIterationRule(_DeterminismRule):
    """Environment-ordered iteration feeding results."""

    rule_id = "det-env-iteration"
    family = "det"
    description = "unsorted os.listdir/iterdir results or set iteration into results"

    def run(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Call):
                self._check_listing_call(node)
        for _scope, nodes in _iter_scopes(self.ctx.tree):
            self._check_set_flow(nodes)

    # -- directory listings -------------------------------------------- #
    def _check_listing_call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        is_listing = False
        label = dotted or ""
        if dotted is not None and any(
            dotted == entry or dotted.endswith("." + entry)
            for entry in _ENV_LISTING_CALLS
        ):
            is_listing = True
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _ENV_LISTING_METHODS
        ):
            is_listing = True
            label = node.func.attr
        if not is_listing or self._ordered_downstream(node):
            return
        self.report(
            node,
            f"'{label}' returns entries in filesystem order — wrap the "
            "consumer in sorted(...) before results depend on it",
        )

    def _ordered_downstream(self, node: ast.AST) -> bool:
        """True when an enclosing expression imposes/ignores order (sorted…)."""
        wrappers = self.ctx.config.determinism.order_insensitive_wrappers
        current: ast.AST | None = self.ctx.parents.get(node)
        while current is not None and not isinstance(current, ast.stmt):
            if (
                isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id in wrappers
            ):
                return True
            current = self.ctx.parents.get(current)
        return False

    # -- set-ordered values flowing into ordered sinks ------------------ #
    def _check_set_flow(self, nodes: list[ast.AST]) -> None:
        set_names: set[str] = set()
        for node in nodes:
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)

        def is_set_value(expr: ast.AST) -> bool:
            if _is_set_expr(expr):
                return True
            return isinstance(expr, ast.Name) and expr.id in set_names

        for node in nodes:
            if isinstance(node, ast.For) and is_set_value(node.iter):
                self.report(
                    node.iter,
                    "iterating a set in hash order — wrap it in sorted(...) "
                    "before the iteration order can reach results",
                )
            elif isinstance(node, ast.comprehension) and is_set_value(node.iter):
                self.report(
                    node.iter,
                    "comprehension over a set iterates in hash order — "
                    "wrap it in sorted(...)",
                )
            elif isinstance(node, ast.Call):
                self._check_set_sink(node, is_set_value)

    def _check_set_sink(self, node: ast.Call, is_set_value) -> None:
        sinks = self.ctx.config.determinism.order_sensitive_sinks
        name: str | None = None
        if isinstance(node.func, ast.Name) and node.func.id in sinks:
            name = node.func.id
        elif isinstance(node.func, ast.Attribute) and node.func.attr in sinks:
            name = node.func.attr
        if name is None or not node.args:
            return
        if is_set_value(node.args[0]):
            self.report(
                node,
                f"'{name}(...)' materialises a set in hash order — "
                "wrap the set in sorted(...) first",
            )
