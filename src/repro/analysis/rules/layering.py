"""Layering lint (``layer-*``): the facade is the only front door.

PR 4 made :class:`repro.api.Engine` the single construction point for the
serving stack, and PR 6 built the server on that guarantee — replica
snapshots restore bit-identically *because* every store/index/service is
built with facade-controlled geometry.  A stray ``ShardedIndex(...)`` in an
experiment reopens the side doors the facade closed.  Two checks:

``layer-direct-construction``
    Calls that construct facade-only classes (``EmbeddingStore``,
    ``SimilarityIndex``, ``ShardedIndex``, ``IngestService``) outside the
    facade and the layers that define them.

``layer-mutable-api-type``
    Dataclasses in ``api/types.py`` not declared ``frozen=True`` — responses
    are cached and shared across callers, so the request/response surface
    must be immutable.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.rules import Rule, dotted_name, register_rule


@register_rule
class DirectConstructionRule(Rule):
    """Facade-only classes constructed outside the facade layers."""

    rule_id = "layer-direct-construction"
    family = "layer"
    description = (
        "EmbeddingStore/SimilarityIndex/ShardedIndex/IngestService constructed "
        "outside repro.api and the layers that define them"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.config.layering.is_allowed_path(ctx.rel_path)

    def visit_Call(self, node: ast.Call) -> None:
        name: str | None = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in self.ctx.config.layering.facade_only:
            self.report(
                node,
                f"'{name}(...)' constructed outside the facade — go through "
                "repro.api.Engine (EngineConfig selects the backend) so "
                "geometry, caching and snapshots stay consistent",
            )
        self.generic_visit(node)


@register_rule
class MutableApiTypeRule(Rule):
    """Non-frozen dataclasses on the shared request/response surface."""

    rule_id = "layer-mutable-api-type"
    family = "layer"
    description = "dataclass in api/types.py not declared frozen=True"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.config.layering.requires_frozen(ctx.rel_path)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for decorator in node.decorator_list:
            if self._is_dataclass_decorator(decorator) and not self._is_frozen(
                decorator
            ):
                self.report(
                    node,
                    f"dataclass '{node.name}' on the API surface is not "
                    "frozen=True — responses are cached and shared, so api "
                    "types must be immutable",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_dataclass_decorator(decorator: ast.AST) -> bool:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        return dotted is not None and dotted.split(".")[-1] == "dataclass"

    @staticmethod
    def _is_frozen(decorator: ast.AST) -> bool:
        if not isinstance(decorator, ast.Call):
            return False  # bare @dataclass: frozen defaults to False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
        return False
