"""The analysis engine: files → parsed modules → rules → findings.

:func:`run_analysis` is the programmatic entry point (the CLI and the repo
invariant test both sit on it); :func:`analyze_source` checks one in-memory
snippet and is what the fixture tests drive.  Findings come back sorted by
location so output is deterministic, and a file that fails to parse yields a
``parse-error`` finding instead of crashing the run — an analyzer that dies
on bad input cannot gate CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, Type

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.config import AnalysisConfig
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, select_rules

#: Pseudo-rule id for files the parser rejects.
PARSE_ERROR_RULE = "parse-error"


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def new_findings(self) -> list[Finding]:
        """Findings neither suppressed inline nor grandfathered — the CI gate."""
        return self.findings

    @property
    def ok(self) -> bool:
        return not self.findings


def package_relative_path(path: Path, root: Path | None = None) -> str:
    """``path`` relative to the nearest enclosing ``repro`` package directory.

    Rules are scoped by package-relative module paths (``server/runtime.py``),
    so the same config works whether the scan root is ``src/repro``, ``src``,
    or the repository root.  Files outside any ``repro`` directory fall back
    to being relative to ``root`` (or their own name).
    """
    resolved = path.resolve()
    for ancestor in resolved.parents:
        if ancestor.name == "repro":
            return resolved.relative_to(ancestor).as_posix()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.name


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated module list."""
    seen: set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            seen.update(p.resolve() for p in sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            seen.add(entry.resolve())
        else:
            raise FileNotFoundError(f"{entry} is neither a directory nor a .py file")
    return sorted(seen)


def analyze_source(
    source: str,
    rel_path: str,
    *,
    config: AnalysisConfig | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the (selected) rules over one in-memory module.

    ``rel_path`` is the package-relative path the module pretends to live at
    (e.g. ``"server/runtime.py"``) — it decides which path-scoped rules
    apply.  Returns the unsuppressed findings, sorted by location.
    """
    config = config or AnalysisConfig()
    rule_classes = select_rules(None if rules is None else list(rules))
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as exc:
        return [
            Finding(
                path=rel_path,
                line=int(getattr(exc, "lineno", None) or 1),
                col=int(getattr(exc, "offset", None) or 0),
                rule=PARSE_ERROR_RULE,
                message=f"could not parse module: {exc}",
            )
        ]
    ctx = ModuleContext(rel_path, source, tree, config)
    _run_rules(ctx, rule_classes)
    return sorted(ctx.findings)


def _run_rules(ctx: ModuleContext, rule_classes: Sequence[Type[Rule]]) -> None:
    for rule_class in rule_classes:
        rule = rule_class(ctx)
        if rule.applies_to(ctx):
            rule.run()


def run_analysis(
    paths: Sequence[str | Path],
    *,
    config: AnalysisConfig | None = None,
    rules: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Analyze every module under ``paths`` and apply the baseline.

    Returns an :class:`AnalysisResult` whose ``findings`` are the *new*
    (non-baselined, non-suppressed) violations — the list that must be empty
    for CI to pass.
    """
    config = config or AnalysisConfig()
    rule_classes = select_rules(None if rules is None else list(rules))
    result = AnalysisResult()
    all_findings: list[Finding] = []
    for path in iter_python_files(paths):
        rel_path = package_relative_path(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            all_findings.append(
                Finding(
                    path=rel_path,
                    line=int(getattr(exc, "lineno", None) or 1),
                    col=int(getattr(exc, "offset", None) or 0),
                    rule=PARSE_ERROR_RULE,
                    message=f"could not parse module: {exc}",
                )
            )
            result.files_scanned += 1
            continue
        ctx = ModuleContext(rel_path, source, tree, config)
        _run_rules(ctx, rule_classes)
        all_findings.extend(ctx.findings)
        result.suppressed.extend(ctx.suppressed)
        result.files_scanned += 1
    all_findings.sort()
    result.suppressed.sort()
    if baseline is None:
        result.findings = all_findings
    else:
        for finding in all_findings:
            (result.baselined if baseline.is_baselined(finding) else result.findings).append(
                finding
            )
        result.stale_baseline = baseline.stale_entries(all_findings)
    return result
