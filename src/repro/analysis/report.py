"""Reporters: one result, two audiences.

The human reporter prints ``path:line:col: [rule-id] message`` lines plus a
summary — the shape editors and CI logs already know how to read.  The JSON
reporter emits the full machine-readable record (new / baselined /
suppressed findings, stale baseline entries, rule inventory) that CI uploads
as the ``analysis.json`` artifact, so a failing gate can be diffed instead
of re-run.
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult
from repro.analysis.rules import available_rules

REPORT_VERSION = 1


def render_human(result: AnalysisResult, *, verbose: bool = False) -> str:
    """The terminal report: findings first, then the one-line verdict."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    if verbose:
        for finding in result.baselined:
            lines.append(f"{finding.render()}  (baselined)")
        for finding in result.suppressed:
            lines.append(f"{finding.render()}  (suppressed inline)")
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: [{entry.rule}] {entry.path} ({entry.match!r}) "
            "matches no finding — delete it"
        )
    lines.append(
        f"{len(result.findings)} new finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed inline, "
        f"{result.files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """The machine report (stable key order, newline-terminated)."""
    payload = {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "rules": {
            rule_id: {"family": cls.family, "description": cls.description}
            for rule_id, cls in sorted(available_rules().items())
        },
        "findings": [finding.to_dict() for finding in result.findings],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "match": e.match, "reason": e.reason}
            for e in result.stale_baseline
        ],
        "summary": {
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "stale_baseline": len(result.stale_baseline),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
