"""Grandfathered findings: the checked-in baseline file.

A baseline entry deliberately accepts one finding — a single-writer class
that needs no lock, a float64 accumulator kept for numerical stability — so
the analyzer can gate CI at zero *new* findings without forcing every
legacy exception through an inline comment.  Every entry must carry a
non-empty ``reason``: a baseline nobody can explain is just a second copy of
the bug list.

Matching is by ``(rule, path, match)`` where ``match`` is a substring of the
finding message (empty matches any message for that rule+path).  Line
numbers are deliberately *not* part of the key — reformatting a file must
not resurrect grandfathered findings.

Entries that no longer match any live finding are reported as *stale* so the
baseline shrinks as the code heals instead of fossilising.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: Default baseline filename, looked up in the current directory by the CLI.
DEFAULT_BASELINE_NAME = "analysis_baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, with the reason it is acceptable."""

    rule: str
    path: str
    match: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and self.match in finding.message
        )


class Baseline:
    """The set of grandfathered findings loaded from a baseline file."""

    def __init__(self, entries: tuple[BaselineEntry, ...] = ()) -> None:
        self.entries = entries

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
        version = int(payload.get("version", 0))
        if version > BASELINE_VERSION:
            raise ValueError(
                f"{path} uses baseline format v{version}; "
                f"this build reads up to v{BASELINE_VERSION}"
            )
        entries = []
        for raw in payload.get("entries", []):
            entry = BaselineEntry(
                rule=str(raw.get("rule", "")),
                path=str(raw.get("path", "")),
                match=str(raw.get("match", "")),
                reason=str(raw.get("reason", "")).strip(),
            )
            if not entry.rule or not entry.path:
                raise ValueError(f"{path}: baseline entry missing rule/path: {raw}")
            if not entry.reason:
                raise ValueError(
                    f"{path}: baseline entry for {entry.rule} at {entry.path} has "
                    "no reason — every grandfathered finding must say why"
                )
            entries.append(entry)
        return cls(tuple(entries))

    def is_baselined(self, finding: Finding) -> bool:
        return any(entry.matches(finding) for entry in self.entries)

    def stale_entries(self, findings: list[Finding]) -> list[BaselineEntry]:
        """Entries matching no live finding — candidates for deletion."""
        return [
            entry
            for entry in self.entries
            if not any(entry.matches(finding) for finding in findings)
        ]
