"""Per-rule configuration for the invariant analyzer.

Every rule reads its knobs from one frozen :class:`AnalysisConfig` instead of
hard-coding repo layout: which modules count as thread-reachable, which are
dtype hot paths, which names are facade-only, and which files are exempt.
Defaults encode this repository's invariants; tests build variants to aim
rules at fixture trees.

Paths everywhere in this module are *relative to the ``repro`` package root*
and compared by prefix, so ``"server/"`` means every module under
``src/repro/server/`` and ``"utils/clock.py"`` means exactly that file.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


def _path_matches(rel_path: str, prefixes: tuple[str, ...]) -> bool:
    """True when ``rel_path`` equals a prefix entry or sits under a ``dir/`` one."""
    return any(
        rel_path == prefix or (prefix.endswith("/") and rel_path.startswith(prefix))
        for prefix in prefixes
    )


@dataclass(frozen=True)
class RaceConfig:
    """Lock-discipline race lint (``race-*``).

    ``thread_paths`` are the modules whose classes are assumed reachable from
    multiple threads; a ``# thread: shared`` comment on a ``class`` line opts
    any other class in.  Methods whose names carry a ``locked_suffixes``
    suffix follow the caller-holds-the-lock convention and are treated as
    guarded; ``exempt_methods`` run before an instance can be shared.
    """

    thread_paths: tuple[str, ...] = ("obs/", "server/", "streaming/")
    shared_marker: str = "# thread: shared"
    locked_suffixes: tuple[str, ...] = ("_locked",)
    exempt_methods: tuple[str, ...] = ("__init__", "__new__", "__post_init__")
    lock_name_hints: tuple[str, ...] = ("lock", "cond", "mutex")

    def is_thread_path(self, rel_path: str) -> bool:
        return _path_matches(rel_path, self.thread_paths)


@dataclass(frozen=True)
class DeterminismConfig:
    """Determinism lint (``det-*``).

    ``exempt_paths`` name the modules *allowed* to touch wall clocks and
    process-global randomness — the clock abstraction itself and the one
    sanctioned seeding helper.  ``wallclock_calls`` are flagged as
    ``module.attr`` dotted names.
    """

    exempt_paths: tuple[str, ...] = ("utils/clock.py", "utils/seeding.py")
    wallclock_calls: tuple[str, ...] = (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    )
    order_sensitive_sinks: tuple[str, ...] = ("list", "tuple", "extend", "array")
    order_insensitive_wrappers: tuple[str, ...] = (
        "sorted",
        "len",
        "set",
        "frozenset",
        "min",
        "max",
        "any",
        "all",
    )

    def is_exempt(self, rel_path: str) -> bool:
        return _path_matches(rel_path, self.exempt_paths)


@dataclass(frozen=True)
class DtypeConfig:
    """Dtype-discipline lint (``dtype-*``) — enforced only on hot paths.

    The float32 contract matters where the arrays are large and the scans
    are hot; experiment scripts may allocate however they like.
    """

    hot_paths: tuple[str, ...] = ("nn/kernels.py", "serving/", "ann/", "server/")
    untyped_allocators: tuple[str, ...] = ("array", "zeros", "ones", "empty", "full")

    def is_hot_path(self, rel_path: str) -> bool:
        return _path_matches(rel_path, self.hot_paths)


@dataclass(frozen=True)
class LayeringConfig:
    """Layering lint (``layer-*``).

    ``facade_only`` classes may be constructed only inside ``allowed_paths``
    (the facade plus the layers that define them); everything else must go
    through :class:`repro.api.Engine`.  Dataclasses in ``frozen_modules``
    must be declared ``frozen=True`` — they are the shared, cached request/
    response surface.
    """

    facade_only: tuple[str, ...] = (
        "EmbeddingStore",
        "SimilarityIndex",
        "ShardedIndex",
        "IngestService",
    )
    allowed_paths: tuple[str, ...] = ("api/", "serving/", "streaming/")
    frozen_modules: tuple[str, ...] = ("api/types.py",)

    def is_allowed_path(self, rel_path: str) -> bool:
        return _path_matches(rel_path, self.allowed_paths)

    def requires_frozen(self, rel_path: str) -> bool:
        return _path_matches(rel_path, self.frozen_modules)


@dataclass(frozen=True)
class AnalysisConfig:
    """All rule configurations in one immutable bundle."""

    race: RaceConfig = field(default_factory=RaceConfig)
    determinism: DeterminismConfig = field(default_factory=DeterminismConfig)
    dtype: DtypeConfig = field(default_factory=DtypeConfig)
    layering: LayeringConfig = field(default_factory=LayeringConfig)

    def variant(self, **overrides: object) -> AnalysisConfig:
        """A modified copy (mirrors ``EngineConfig.variant``)."""
        return replace(self, **overrides)
