"""`repro.api` — the typed public facade over the whole reproduction.

This package is the **only supported public surface** for driving the
end-to-end loop of the paper: pre-train START (or any baseline), bulk-encode
trajectories, index the vectors behind a pluggable backend, ingest streams,
and answer similarity queries — all through one :class:`Engine` configured
by one :class:`EngineConfig` and spoken to with typed requests/responses.

>>> from repro.api import Engine, EngineConfig, QueryRequest
>>> engine = Engine.from_dataset(dataset, EngineConfig(backend="sharded"))
>>> engine.pretrain(dataset.train_trajectories(), epochs=5)
>>> engine.ingest(dataset.test_trajectories())
>>> engine.query(QueryRequest(queries=query_vectors, k=5))

Index backends are selected by config string from a registry
(:func:`register_backend` / :func:`available_backends`) so new index
implementations plug in without touching any caller; see
:mod:`repro.api.backends` for the contract.  The exported names and the
dataclass fields below are locked by ``tests/test_api_surface.py`` —
changing them is a reviewed API break, never an accident.
"""

from repro.api.backends import (
    IndexBackend,
    UnsupportedOperation,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.api.engine import SNAPSHOT_FORMAT_VERSION, Engine, EngineConfig
from repro.api.types import (
    EncodeRequest,
    IngestBatch,
    QueryHit,
    QueryRequest,
    QueryResponse,
    SnapshotInfo,
)

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "EncodeRequest",
    "Engine",
    "EngineConfig",
    "IndexBackend",
    "IngestBatch",
    "QueryHit",
    "QueryRequest",
    "QueryResponse",
    "SnapshotInfo",
    "UnsupportedOperation",
    "available_backends",
    "create_backend",
    "register_backend",
    "unregister_backend",
]
