"""The :class:`Engine` facade: one typed surface over the whole loop.

Everything the paper's end-to-end story needs — pre-train START, bulk-encode
trajectories, index the vectors, serve similarity queries, persist and
restore both the model and the index — is reachable from one object
configured by one :class:`EngineConfig`.  Callers above this layer
(``repro.eval``, ``repro.experiments``, ``examples/``) never construct
stores, indexes or ingest services directly; they pick a backend by config
string and talk requests/responses (:mod:`repro.api.types`).

The engine wraps *any* encoder with the shared
``encode(trajectories) -> (N, d)`` contract: a :class:`STARTModel`, any
baseline from :mod:`repro.baselines`, or a bare callable (used by tests and
by evaluation harnesses that only have a function).
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.api.backends import IndexBackend, create_backend
from repro.api.types import (
    EncodeRequest,
    IngestBatch,
    QueryRequest,
    QueryResponse,
    SnapshotInfo,
)
from repro.core.config import StartConfig
from repro.core.model import STARTModel
from repro.core.pretraining import Pretrainer
from repro.nn.serialization import load_checkpoint, read_metadata, save_checkpoint
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
)
from repro.serving.index import DEFAULT_DATABASE_CHUNK, DEFAULT_QUERY_CHUNK, as_float32_matrix
from repro.serving.store import DEFAULT_ENCODE_BATCH, EmbeddingStore
from repro.streaming.reader import TrajectoryStreamReader
from repro.streaming.service import DEFAULT_QUERY_CACHE_SIZE, _LRUCache
from repro.streaming.shards import DEFAULT_SHARD_CAPACITY
from repro.utils.clock import Clock, SystemClock

#: Bump when the engine snapshot layout changes; readers refuse newer formats.
SNAPSHOT_FORMAT_VERSION = 1

_MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class EngineConfig:
    """Every knob of an engine in one place.

    ``start`` configures the model built by :meth:`Engine.from_dataset` and
    reconstructed by :meth:`Engine.load`; ``backend`` selects the index
    implementation from the :mod:`repro.api.backends` registry; the geometry
    fields flow into whichever backend is chosen (backends may ignore hints
    that do not apply to them).  ``backend_params`` is the passthrough for
    backend-*specific* knobs the shared geometry fields cannot name — e.g.
    ``{"nlist": 128, "nprobe": 8}`` for ``backend="ivf"``, or ``pq_m`` /
    ``pq_bits`` / ``rerank`` / ``train_size`` for ``"ivfpq"``; a knob the
    chosen backend does not take raises ``TypeError`` at construction.
    """

    start: StartConfig | None = None
    backend: str = "sharded"
    encode_batch_size: int | None = None
    shard_capacity: int = DEFAULT_SHARD_CAPACITY
    query_chunk_size: int = DEFAULT_QUERY_CHUNK
    database_chunk_size: int = DEFAULT_DATABASE_CHUNK
    cache_size: int = DEFAULT_QUERY_CACHE_SIZE
    pretrain_epochs: int | None = None
    backend_params: dict | None = None

    def __post_init__(self) -> None:
        if self.shard_capacity < 1:
            raise ValueError("shard_capacity must be >= 1")
        if self.query_chunk_size < 1 or self.database_chunk_size < 1:
            raise ValueError("chunk sizes must be positive")
        if self.encode_batch_size is not None and self.encode_batch_size < 1:
            raise ValueError("encode_batch_size must be >= 1")
        if self.backend_params is not None and not isinstance(self.backend_params, dict):
            raise ValueError("backend_params must be a dict of keyword arguments (or None)")

    def variant(self, **overrides) -> "EngineConfig":
        """A modified copy (mirrors :meth:`StartConfig.variant`)."""
        return replace(self, **overrides)


class Engine:
    """Train → encode → index → stream → query, behind one typed facade.

    The engine owns three things:

    * the **encoder lifecycle** — pre-training (START or any baseline with a
      ``pretrain`` method), checkpoint ``save``/``load``;
    * **bulk encoding** — length-bucketed no-grad batches, identical row
      order to the input (:meth:`encode`);
    * **query serving** — an :class:`~repro.api.backends.IndexBackend`
      selected by ``config.backend``, fed by :meth:`ingest`/:meth:`drain`,
      queried through :meth:`query`/:meth:`ranks_of`, persisted with
      :meth:`snapshot`/:meth:`restore`, all behind a generation-keyed LRU
      query cache.

    Any (pre-)training resets the index: vectors encoded by the old weights
    must never be served against queries encoded by the new ones.
    """

    def __init__(
        self,
        encoder,
        config: EngineConfig | None = None,
        *,
        metrics: "MetricsRegistry | None" = None,
        clock: Clock | None = None,
    ) -> None:
        if encoder is None:
            raise ValueError("Engine requires an encoder (model or callable)")
        self.config = config or EngineConfig()
        self.model = encoder
        self._encode_fn: Callable = encoder.encode if hasattr(encoder, "encode") else encoder
        if not callable(self._encode_fn):
            raise TypeError("encoder must be callable or expose an .encode method")
        self._backend: IndexBackend = self._new_backend()
        self._cache = _LRUCache(self.config.cache_size)
        self._trajectory_ids: dict[int, int] = {}
        self._encode_calls = 0
        self._clock: Clock = clock if clock is not None else SystemClock()
        self.bind_metrics(metrics)

    def bind_metrics(
        self, metrics: "MetricsRegistry | None" = None, *, clock: Clock | None = None
    ) -> None:
        """(Re-)attach a metrics registry; ``None`` detaches to the no-op default.

        Resolves every instrument handle once, so the query/encode hot paths
        pay method calls on pre-bound children, never registry lookups.  The
        serving runtime calls this to pull a user-constructed engine into its
        own registry (and clock) when the engine was built without one.
        """
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        if clock is not None:
            self._clock = clock
        cache = self._metrics.counter_family(
            "engine_cache_requests_total",
            "query-cache lookups by result",
            labels=("result",),
        )
        self._m_cache_hits = cache.labels(result="hit")
        self._m_cache_misses = cache.labels(result="miss")
        self._m_encode_batch = self._metrics.histogram(
            "engine_encode_batch_size",
            "trajectories per underlying encoder call",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_query_latency = self._metrics.histogram_family(
            "engine_query_seconds",
            "index top_k scan latency by backend",
            labels=("backend",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        ).labels(backend=self.config.backend)

    @property
    def metrics_registry(self) -> "MetricsRegistry":
        """The registry this engine reports into (the no-op one by default)."""
        return self._metrics

    # ------------------------------------------------------------------ #
    # Construction / lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(cls, dataset, config: EngineConfig | None = None) -> "Engine":
        """Build a fresh START model for ``dataset`` and wrap it.

        The transfer-probability matrix is derived from the dataset's
        training split, exactly as :meth:`STARTModel.from_dataset` does.
        """
        config = config or EngineConfig()
        model = STARTModel.from_dataset(dataset, config.start)
        return cls(model, config)

    def pretrain(self, trajectories: list, epochs: int | None = None, verbose: bool = False):
        """Pre-train the wrapped encoder in place; returns the loss history.

        START models run the two self-supervised tasks through
        :class:`~repro.core.pretraining.Pretrainer`; baselines dispatch to
        their own ``pretrain``.  Defaults to ``config.pretrain_epochs`` and
        falls back to the model's own schedule when both are ``None``.
        Resets the index: previously ingested vectors are stale.
        """
        epochs = epochs if epochs is not None else self.config.pretrain_epochs
        if isinstance(self.model, STARTModel):
            trainer = Pretrainer(self.model, self.model.config)
            history = trainer.pretrain(trajectories, epochs=epochs, verbose=verbose)
        elif hasattr(self.model, "pretrain"):
            kwargs = {} if epochs is None else {"epochs": epochs}
            history = self.model.pretrain(trajectories, **kwargs)
        else:
            raise TypeError(
                f"{type(self.model).__name__} is not trainable "
                "(no pretrain method and not a STARTModel)"
            )
        self.reset_index()
        return history

    def save(self, path: str | Path) -> Path:
        """Checkpoint the wrapped model's weights (+ its config) to ``path``."""
        if not hasattr(self.model, "state_dict"):
            raise TypeError(f"{type(self.model).__name__} has no state_dict; cannot save")
        metadata: dict = {
            "engine_backend": self.config.backend,
            "model_class": type(self.model).__name__,
        }
        if isinstance(self.model, STARTModel):
            metadata["start_config"] = asdict(self.model.config)
        return save_checkpoint(self.model, path, metadata=metadata)

    @classmethod
    def load(
        cls,
        path: str | Path,
        dataset=None,
        *,
        network=None,
        transfer_probability: np.ndarray | None = None,
        config: EngineConfig | None = None,
    ) -> "Engine":
        """Rebuild an engine from a :meth:`save` checkpoint.

        START's stage-one graph constants are functions of the road network
        and the transfer-probability matrix, which a checkpoint does not
        carry — pass the ``dataset`` the model was built from (the matrix is
        re-derived from its training split) or an explicit ``network`` (+
        optional ``transfer_probability``).  The stored
        :class:`~repro.core.config.StartConfig` overrides ``config.start``.
        """
        metadata = read_metadata(path)
        if "start_config" not in metadata:
            model_class = metadata.get("model_class")
            if model_class:
                raise ValueError(
                    f"{path} checkpoints a {model_class}, which Engine.load cannot "
                    "rebuild — reconstruct the model yourself, load the weights with "
                    "repro.nn.serialization.load_checkpoint, and wrap it in Engine(model)"
                )
            raise ValueError(f"{path} was not saved by Engine.save (no start_config)")
        raw = dict(metadata["start_config"])
        for key in ("gat_heads", "augmentations"):
            if key in raw and isinstance(raw[key], list):
                raw[key] = tuple(raw[key])
        start_config = StartConfig(**raw)
        if dataset is not None:
            model = STARTModel.from_dataset(dataset, start_config)
        elif network is not None:
            model = STARTModel(network, start_config, transfer_probability=transfer_probability)
        else:
            raise ValueError("Engine.load needs a dataset or a network to rebuild the model")
        load_checkpoint(model, path)
        model.eval()
        if config is None:
            config = EngineConfig(backend=metadata.get("engine_backend", EngineConfig.backend))
        config = config.variant(start=start_config)
        return cls(model, config)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Alive (queryable) rows in the index."""
        return len(self._backend)

    @property
    def backend(self) -> IndexBackend:
        """The live index backend (mutate through the engine, not directly)."""
        return self._backend

    @property
    def dim(self) -> int | None:
        """Representation dimensionality (``None`` until first encode/ingest)."""
        return self._backend.dim

    @property
    def encode_calls(self) -> int:
        """Underlying encoder invocations so far (one per encode batch)."""
        return self._encode_calls

    @property
    def cache_stats(self) -> dict[str, int]:
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "entries": len(self._cache),
        }

    def trajectory_ids(self, row_ids: np.ndarray) -> np.ndarray:
        """Map global row ids (as reported in responses) to trajectory ids."""
        rows = np.asarray(row_ids, dtype=np.int64)
        return np.array(
            [self._trajectory_ids.get(int(r), int(r)) for r in rows.ravel()], dtype=np.int64
        ).reshape(rows.shape)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def _counted_encode(self, batch: list) -> np.ndarray:
        self._encode_calls += 1
        self._m_encode_batch.observe(len(batch))
        return self._encode_fn(batch)

    def encode(self, request: "EncodeRequest | Sequence") -> np.ndarray:
        """Bulk-encode trajectories into an ``(N, d)`` float32 matrix.

        Accepts an :class:`EncodeRequest` or a plain sequence.  Batches are
        length-bucketed (each batch pads to its own longest member) and run
        under ``no_grad``; row ``i`` always corresponds to input ``i``.  The
        returned matrix is read-only — copy before mutating.
        """
        if isinstance(request, EncodeRequest):
            trajectories, batch_size = list(request.trajectories), request.batch_size
        else:
            trajectories, batch_size = list(request), None
        if batch_size is None:
            batch_size = self.config.encode_batch_size or DEFAULT_ENCODE_BATCH
        if not trajectories:
            return np.zeros((0, self._backend.dim or 0), dtype=np.float32)
        store = EmbeddingStore.build(self._counted_encode, trajectories, batch_size=batch_size)
        return store.vectors

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, batch: "IngestBatch | Iterable") -> np.ndarray:
        """Encode one wave of trajectories and add it to the index.

        Returns the assigned global row ids (one per trajectory, in input
        order).  Encoding is length-bucketed per wave; rows already indexed
        are never re-encoded or re-indexed.
        """
        if isinstance(batch, IngestBatch):
            trajectories = list(batch.trajectories)
            source_ids = batch.trajectory_ids
        else:
            trajectories = list(batch)
            source_ids = None
        if not trajectories:
            return np.zeros(0, dtype=np.int64)
        if source_ids is None:
            # Objects without a trajectory_id fall back to their global row
            # id (a wave-local position would collide across waves).
            source_ids = [getattr(t, "trajectory_id", None) for t in trajectories]
        elif len(source_ids) != len(trajectories):
            raise ValueError("trajectory_ids must have one entry per trajectory")
        vectors = self.encode(trajectories)
        return self.ingest_vectors(vectors, trajectory_ids=source_ids)

    def ingest_vectors(
        self, vectors: np.ndarray, trajectory_ids: Sequence[int | None] | None = None
    ) -> np.ndarray:
        """Add pre-encoded vectors to the index (the encode-free ingest path).

        Useful when the same vectors feed several engines (cross-backend
        checks) or arrive from a store archive.  ``trajectory_ids`` defaults
        to the assigned global row ids; individual ``None`` entries take the
        same default.
        """
        vectors = as_float32_matrix(vectors)
        row_ids = self._backend.add(vectors)
        if trajectory_ids is not None:
            if len(trajectory_ids) != vectors.shape[0]:
                raise ValueError("trajectory_ids must have one entry per vector row")
            for row_id, source_id in zip(row_ids, trajectory_ids):
                if source_id is not None:
                    self._trajectory_ids[int(row_id)] = int(source_id)
        return row_ids

    def drain(self, reader: TrajectoryStreamReader, max_records: int | None = None) -> np.ndarray:
        """Ingest one poll of a stream reader (records appended since last poll)."""
        return self.ingest(reader.poll(max_records=max_records))

    def remove(self, row_ids) -> int:
        """Remove rows by global id; returns how many were alive.

        Only backends with tombstone support (``"sharded"``) implement this;
        append-only backends raise
        :class:`~repro.api.backends.UnsupportedOperation`.
        """
        removed = self._backend.remove(row_ids)
        for row_id in np.atleast_1d(np.asarray(row_ids, dtype=np.int64)):
            self._trajectory_ids.pop(int(row_id), None)
        return removed

    def compact(self, *, min_tombstones: int = 1) -> bool:
        """Reclaim tombstoned rows (no-op ``False`` on append-only backends)."""
        return self._backend.compact(min_tombstones=min_tombstones)

    def reset_index(self) -> None:
        """Drop all indexed rows (fresh backend, empty cache, clean id map)."""
        self._backend = self._new_backend()
        self._cache = _LRUCache(self.config.cache_size)
        self._trajectory_ids = {}

    def _new_backend(self) -> IndexBackend:
        return create_backend(
            self.config.backend,
            shard_capacity=self.config.shard_capacity,
            query_chunk_size=self.config.query_chunk_size,
            database_chunk_size=self.config.database_chunk_size,
            **(self.config.backend_params or {}),
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _query_vectors(self, queries) -> np.ndarray:
        if isinstance(queries, np.ndarray):
            return as_float32_matrix(queries, "queries")
        return self.encode(queries)

    def _timed_top_k(self, vectors: np.ndarray, k: int):
        """One backend scan, timed into the per-backend latency histogram.

        The clock read is gated on registry enablement so the disabled
        default pays exactly one attribute check per scan.
        """
        if not self._metrics.enabled:
            return self._backend.top_k(vectors, k)
        started = self._clock.monotonic()
        result = self._backend.top_k(vectors, k)
        self._m_query_latency.observe(self._clock.monotonic() - started)
        return result

    def query(self, request: "QueryRequest | np.ndarray", k: int | None = None) -> QueryResponse:
        """Top-k most-similar rows for each query; served through the cache.

        Accepts a :class:`QueryRequest` or a raw ``(Q, d)`` vector array plus
        ``k``.  Responses carry per-hit ``(id, distance, trajectory_id)``
        with arrays frozen (cached responses are shared between callers).
        """
        if isinstance(request, QueryRequest):
            if k is not None:
                raise ValueError("pass k inside the QueryRequest, not alongside it")
            vectors = self._query_vectors(request.queries)
            k = request.k
        else:
            vectors = self._query_vectors(request)
            k = 5 if k is None else k
        digest = hashlib.blake2b(vectors.tobytes(), digest_size=16).hexdigest()
        key = (self._backend.generation, vectors.shape, int(k), digest)
        cached = self._cache.get(key)
        if cached is not None:
            self._m_cache_hits.inc()
            return cached
        self._m_cache_misses.inc()
        result = self._timed_top_k(vectors, k)
        response = QueryResponse(
            ids=result.indices,
            distances=result.distances,
            trajectory_ids=self.trajectory_ids(result.indices),
        )
        for array in (response.ids, response.distances, response.trajectory_ids):
            array.flags.writeable = False
        self._cache.put(key, response)
        return response

    def most_similar(self, queries) -> QueryResponse:
        """The single nearest row per query (:meth:`query` with ``k=1``)."""
        return self.query(QueryRequest(queries=queries, k=1))

    def query_many(
        self, requests: Sequence["QueryRequest | np.ndarray"], *, coalesce: str = "aligned"
    ) -> list[QueryResponse]:
        """Answer a batch of concurrent-caller requests in one call.

        This is the execution primitive behind the serving runtime's batch
        aggregator; the ``coalesce`` mode decides what may be amortised
        across the callers:

        ``"aligned"`` (default)
            Each request runs through :meth:`query` with its *own* kernel
            shapes.  Responses are **bitwise identical** to the same
            requests issued sequentially — BLAS reduction order is not
            shape-invariant (a ``(1, d)`` matvec and a row of a ``(32, d)``
            GEMM differ in the last ulps), so matching shapes is the only
            way to guarantee it (the same doctrine as the sharded/chunked
            bit-identity contract).
        ``"fused"``
            Cache-missing requests are grouped by ``k``, their query rows
            stacked, and each group is answered by **one** scan over the
            index — one GEMM amortising the database read across callers.
            Distances may drift from the sequential answer in the last ulps
            (and neighbour order may flip across a genuine distance tie);
            use it when throughput matters more than bit-reproducibility.

        Both modes consult and fill the engine's LRU query cache per
        request, and return one :class:`QueryResponse` per request, in
        request order.
        """
        normalised = [
            request if isinstance(request, QueryRequest) else QueryRequest(queries=request)
            for request in requests
        ]
        if coalesce == "aligned":
            return [self.query(request) for request in normalised]
        if coalesce != "fused":
            raise ValueError(f"unknown coalesce mode '{coalesce}' (use 'aligned' or 'fused')")
        responses: list[QueryResponse | None] = [None] * len(normalised)
        misses: dict[int, list[tuple[int, np.ndarray, tuple]]] = {}
        for position, request in enumerate(normalised):
            vectors = self._query_vectors(request.queries)
            digest = hashlib.blake2b(vectors.tobytes(), digest_size=16).hexdigest()
            key = (self._backend.generation, vectors.shape, int(request.k), digest)
            cached = self._cache.get(key)
            if cached is not None:
                self._m_cache_hits.inc()
                responses[position] = cached
            else:
                self._m_cache_misses.inc()
                misses.setdefault(int(request.k), []).append((position, vectors, key))
        for k, group in misses.items():
            if len(group) == 1:
                stacked = group[0][1]
            else:
                stacked = np.concatenate([vectors for _, vectors, _ in group], axis=0)
            result = self._timed_top_k(stacked, k)
            row = 0
            for position, vectors, key in group:
                rows = vectors.shape[0]
                ids = result.indices[row : row + rows]
                distances = result.distances[row : row + rows]
                row += rows
                response = QueryResponse(
                    ids=ids,
                    distances=distances,
                    trajectory_ids=self.trajectory_ids(ids),
                )
                for array in (response.ids, response.distances, response.trajectory_ids):
                    array.flags.writeable = False
                self._cache.put(key, response)
                responses[position] = response
        return responses

    def ranks_of(self, queries, truth_ids: np.ndarray) -> np.ndarray:
        """1-based rank of ``truth_ids[i]`` among query ``i``'s neighbours.

        The exact counting semantics of the serving layer: one plus the
        number of rows sorting strictly before the truth row (smaller
        distance, or equal distance and smaller id).
        """
        vectors = self._query_vectors(queries)
        return self._backend.ranks_of(vectors, np.asarray(truth_ids, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # Index persistence
    # ------------------------------------------------------------------ #
    def snapshot(self, directory: str | Path) -> SnapshotInfo:
        """Write the index state under ``directory``; returns what was written.

        One versioned :class:`~repro.serving.store.EmbeddingStore` npz per
        backend segment (vectors + global row ids, with tombstoned ids and
        the trajectory-id map in metadata) plus ``manifest.json`` recording
        the backend name and geometry.  A restored replica answers
        bit-identically to the original — the model is not needed.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        segment_files: list[str] = []
        for number, (vectors, ids, dead) in enumerate(self._backend.segments()):
            name = f"segment_{number:05d}.npz"
            store = EmbeddingStore(
                vectors,
                ids=ids,
                metadata={
                    "deleted_ids": [int(i) for i in ids[dead]],
                    "trajectory_ids": [self._trajectory_ids.get(int(i), int(i)) for i in ids],
                },
            )
            store.save(directory / name)
            segment_files.append(name)
        manifest = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "backend": self.config.backend,
            "segments": segment_files,
            "shard_capacity": self.config.shard_capacity,
            "query_chunk_size": self.config.query_chunk_size,
            "database_chunk_size": self.config.database_chunk_size,
            "backend_params": self.config.backend_params or {},
            "next_id": self._backend.next_id,
            "dim": self._backend.dim,
        }
        with open(directory / _MANIFEST_NAME, "w") as handle:
            json.dump(manifest, handle, indent=2)
        return SnapshotInfo(
            path=directory,
            backend=self.config.backend,
            rows=len(self._backend),
            dim=int(self._backend.dim or 0),
            segments=len(segment_files),
            format_version=SNAPSHOT_FORMAT_VERSION,
        )

    def replicate(self, directory: str | Path | None = None, *, encoder=None) -> "Engine":
        """A bit-stable read replica of this engine (snapshot + restore).

        Snapshots the index under ``directory`` (a private temporary
        directory when ``None``, cleaned up when the replica is garbage
        collected) and restores it into a fresh engine.  The replica
        answers vector queries **bit-identically** to this engine at the
        moment of the call and shares no index state with it afterwards —
        this is how the serving runtime's query workers get their per-thread
        indexes.  ``encoder`` defaults to sharing this engine's encoder
        object; replicas queried with pre-encoded vectors never touch it
        (callers that encode on replicas concurrently must serialise those
        encodes themselves — the model is not thread-safe).
        """
        tmp = None
        if directory is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-engine-replica-")
            directory = tmp.name
        self.snapshot(directory)
        # Replicas report into this engine's registry: their counters are
        # this engine's traffic, just answered from another thread's copy.
        metrics = self._metrics if self._metrics.enabled else None
        replica = Engine.restore(
            directory,
            encoder if encoder is not None else self.model,
            metrics=metrics,
            clock=self._clock,
        )
        if tmp is not None:
            replica._replica_tmpdir = tmp
        return replica

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        encoder,
        config: EngineConfig | None = None,
        *,
        metrics: "MetricsRegistry | None" = None,
        clock: Clock | None = None,
    ) -> "Engine":
        """Rebuild an engine's index from a :meth:`snapshot` directory.

        Segments are re-added in snapshot order (tombstoned rows included,
        then re-removed), which reproduces the original backend layout row
        for row — queries against the restored engine are bit-identical to
        the original.  The manifest's backend and geometry win unless an
        explicit ``config`` is given.
        """
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(f"{directory} is not an Engine snapshot (no {_MANIFEST_NAME})")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        version = int(manifest.get("format_version", 0))
        if version > SNAPSHOT_FORMAT_VERSION:
            raise ValueError(
                f"{directory} uses snapshot format v{version}; "
                f"this build reads up to v{SNAPSHOT_FORMAT_VERSION}"
            )
        if "backend" not in manifest or "segments" not in manifest:
            # The deprecated IngestService writes the same manifest.json name
            # (with "shards" and no "backend"); give migrators a real answer
            # instead of a KeyError.
            hint = (
                " (this looks like an IngestService snapshot — restore it once "
                "with repro.streaming.service.IngestService.restore, then "
                "re-snapshot through Engine.snapshot)"
                if "shards" in manifest
                else ""
            )
            raise ValueError(f"{directory} is not an Engine snapshot{hint}")
        if config is None:
            config = EngineConfig(
                backend=manifest["backend"],
                shard_capacity=int(manifest["shard_capacity"]),
                query_chunk_size=int(manifest["query_chunk_size"]),
                database_chunk_size=int(manifest["database_chunk_size"]),
                backend_params=manifest.get("backend_params") or None,
            )
        engine = cls(encoder, config, metrics=metrics, clock=clock)
        # Backends with tombstone support replay the exact original layout
        # (add everything, then re-remove — bit-identical to the source);
        # append-only backends get the dead rows filtered out up front, so a
        # cross-backend restore of a tombstoned snapshot still works.
        replay_tombstones = engine._backend.supports_removal
        deleted: list[int] = []
        for name in manifest["segments"]:
            store = EmbeddingStore.load(directory / name)
            dead_ids = {int(i) for i in store.metadata.get("deleted_ids", [])}
            vectors, ids = store.vectors, store.ids
            if dead_ids and not replay_tombstones:
                keep = np.array([int(i) not in dead_ids for i in ids])
                vectors, ids = vectors[keep], ids[keep]
            engine._backend.add(vectors, ids=ids)
            if replay_tombstones:
                # dead_ids is a set: sort so the tombstone replay order (and
                # thus the restored layout) never depends on hash seeding.
                deleted.extend(sorted(dead_ids))
            for row_id, trajectory_id in zip(
                store.ids, store.metadata.get("trajectory_ids", store.ids)
            ):
                if int(row_id) in dead_ids:
                    continue
                engine._trajectory_ids[int(row_id)] = int(trajectory_id)
        if deleted:
            engine.remove(deleted)
        engine._backend.next_id = int(manifest.get("next_id", engine._backend.next_id))
        return engine
