"""Typed request/response surface of :mod:`repro.api`.

Every interaction with the :class:`~repro.api.engine.Engine` facade is
expressed through one of these dataclasses, so the public contract is a fixed
set of named fields rather than an open-ended kwargs soup.  The field lists
are locked by ``tests/test_api_surface.py``: adding, removing or renaming a
field is a deliberate, reviewed API change, never an accident.

Array conventions (shared with the serving layer):

* representation vectors are ``(N, d)`` float32;
* result ids are ``int64`` *global row ids* — assigned in insertion order by
  default, so an engine filled once in database order reports the same ids a
  plain row enumeration would;
* result distances are Euclidean, ascending per query, ties broken by id.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.trajectory.types import Trajectory


@dataclass(frozen=True)
class EncodeRequest:
    """Bulk-encode trajectories into representation vectors.

    ``batch_size`` overrides the engine's configured encode batch; batches are
    length-bucketed (each batch pads to its own longest member), and row ``i``
    of the result always corresponds to ``trajectories[i]``.
    """

    trajectories: Sequence[Trajectory]
    batch_size: int | None = None


@dataclass(frozen=True)
class IngestBatch:
    """One wave of trajectories to encode and index.

    ``trajectory_ids`` overrides the source-id recorded per row (defaults to
    each trajectory's ``trajectory_id`` attribute, falling back to the
    row's assigned global id — a batch-local position would collide across
    waves).  The engine assigns fresh *global row ids* on ingestion and
    returns them; the trajectory ids are what query responses report back so
    hits can be mapped to source data.
    """

    trajectories: Sequence[Trajectory]
    trajectory_ids: Sequence[int] | None = None


@dataclass(frozen=True)
class QueryRequest:
    """Top-k most-similar query.

    ``queries`` is either an ``(Q, d)`` array of representation vectors or a
    sequence of trajectories (encoded through the engine first).  ``k`` is
    clamped to the number of indexed rows.
    """

    queries: "np.ndarray | Sequence[Trajectory]"
    k: int = 5


@dataclass(frozen=True)
class QueryHit:
    """One retrieved neighbour: global row id, distance, and source id."""

    id: int
    distance: float
    trajectory_id: int


@dataclass(frozen=True)
class QueryResponse:
    """Top-k answer for a batch of queries.

    ``ids[i, j]`` is the global row id of query ``i``'s ``j``-th nearest
    neighbour (ascending distance, ties broken by id), ``distances[i, j]``
    its Euclidean distance and ``trajectory_ids[i, j]`` the source trajectory
    behind that row.  Arrays are frozen (read-only): responses may be served
    from the engine's query cache, so one caller's in-place edit must never
    poison another's answer — copy before modifying.
    """

    ids: np.ndarray
    distances: np.ndarray
    trajectory_ids: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def k(self) -> int:
        """Neighbours returned per query (may be less than requested)."""
        return self.ids.shape[1]

    @property
    def hits(self) -> tuple[tuple[QueryHit, ...], ...]:
        """Per-query :class:`QueryHit` rows (ergonomic, non-vectorised view)."""
        return tuple(
            tuple(
                QueryHit(
                    id=int(self.ids[row, col]),
                    distance=float(self.distances[row, col]),
                    trajectory_id=int(self.trajectory_ids[row, col]),
                )
                for col in range(self.ids.shape[1])
            )
            for row in range(self.ids.shape[0])
        )


@dataclass(frozen=True)
class SnapshotInfo:
    """What :meth:`repro.api.Engine.snapshot` wrote to disk."""

    path: Path
    backend: str
    rows: int
    dim: int
    segments: int
    format_version: int
