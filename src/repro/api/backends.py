"""Index backends behind the :class:`~repro.api.engine.Engine` facade.

The engine never touches a concrete index class: it talks to the
:class:`IndexBackend` protocol and obtains instances from a string-keyed
registry, so a new backend (an ANN index, a quantised store, a remote
service) is a one-file drop-in — implement the protocol, call
:func:`register_backend`, and every caller of the facade can select it with
``EngineConfig(backend="your-name")``.

Built-in backends
-----------------
``"bruteforce"``
    Reference implementation: the full ``(Q, D)`` float32 distance matrix
    plus a stable full sort, exactly the pre-serving-layer evaluation path.
    Useful as the semantics oracle in tests and for tiny corpora; memory and
    time are unbounded in the database size.
``"chunked"``
    The monolithic :class:`~repro.serving.index.SimilarityIndex`: bounded
    memory (one ``query_chunk × database_chunk`` block at a time) and
    ``argpartition`` partial selection.  Mutations rebuild lazily — adds are
    cheap, the index itself is reconstructed on the next query.
``"sharded"``
    The :class:`~repro.streaming.shards.ShardedIndex`: append-only segments,
    O(1) tombstone removals, compaction, query fan-out + k-way merge.  The
    exact production serving path.
``"ivf"``
    :class:`~repro.ann.ivf.IVFBackend`: k-means inverted lists, per-query
    ``nprobe`` probing with exact re-ranking of every probed candidate.
    Approximate (recall < 1 when the true neighbour's list is unprobed) but
    sub-linear in the corpus; ``nprobe >= nlist`` degenerates to the exact
    bruteforce scan bit-identically.  Supports remove/compact.
``"ivfpq"``
    :class:`~repro.ann.ivfpq.IVFPQBackend`: IVF + product-quantized residual
    codes scanned with ADC lookup tables, exact re-rank of the best
    ``rerank`` candidates per query.  Supports remove/compact.

The ANN backends take their knobs (``nlist``, ``nprobe``, ``train_size``,
``seed``, ``pq_m``, ``pq_bits``, ``rerank``) through
:func:`create_backend`'s extra keyword arguments — from the facade, set
``EngineConfig(backend_params={...})``.  Every registered backend must pass
the conformance suite in ``tests/backend_conformance.py``.

Bit-identity: ``"chunked"`` and ``"sharded"`` run the same chunked GEMM
kernel, so whenever ``shard_capacity`` is a multiple of
``database_chunk_size`` (the defaults: 8192 and 4096) they return
bit-identical ids *and* distances over the same rows — verified by a
hypothesis property in ``tests/test_api.py``.

Registry contract (for third-party backends)
--------------------------------------------
A backend factory is registered under a unique name and must accept the
keyword arguments ``dim`` (``int | None`` — ``None`` means "fix it on first
add"), ``shard_capacity``, ``query_chunk_size`` and ``database_chunk_size``
(geometry hints a backend may ignore).  The returned object must implement
the :class:`IndexBackend` protocol; backends that do not support removal
should raise :class:`UnsupportedOperation` from ``remove`` and return
``False`` from ``compact``.  Global row ids are assigned by the caller and
must be echoed back verbatim in results (never re-numbered).
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.ann.ivf import IVFBackend
from repro.ann.ivfpq import IVFPQBackend
from repro.serving.index import (
    DEFAULT_DATABASE_CHUNK,
    DEFAULT_QUERY_CHUNK,
    SearchResult,
    SimilarityIndex,
    as_float32_matrix,
    pairwise_squared_euclidean,
    squared_norms,
)
from repro.streaming.shards import DEFAULT_SHARD_CAPACITY, ShardedIndex


class UnsupportedOperation(RuntimeError):
    """An optional :class:`IndexBackend` operation this backend lacks."""


@runtime_checkable
class IndexBackend(Protocol):
    """What the engine requires from an index implementation.

    ``generation`` must increase on every mutation (the engine keys its query
    cache on it), ``next_id`` is the id the next auto-assigned row receives
    (persisted across snapshot/restore so ids are never reused), and
    ``segments()`` exposes the stored rows for snapshotting as
    ``(vectors, ids, dead)`` triples.  ``supports_removal`` declares whether
    ``remove`` works (append-only backends set it ``False`` and raise
    :class:`UnsupportedOperation`); the engine consults it when restoring a
    tombstoned snapshot into a different backend.
    """

    name: str
    generation: int
    supports_removal: bool

    def __len__(self) -> int: ...

    @property
    def dim(self) -> int | None: ...

    @property
    def next_id(self) -> int: ...

    @next_id.setter
    def next_id(self, value: int) -> None: ...

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray: ...

    def remove(self, ids) -> int: ...

    def compact(self, *, min_tombstones: int = 1) -> bool: ...

    def top_k(self, queries: np.ndarray, k: int) -> SearchResult: ...

    def ranks_of(self, queries: np.ndarray, truth_ids: np.ndarray) -> np.ndarray: ...

    def segments(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]: ...


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_REGISTRY: dict[str, Callable[..., IndexBackend]] = {}


def register_backend(name: str, factory: Callable[..., IndexBackend] | None = None):
    """Register a backend factory under ``name`` (usable as a decorator).

    ``factory(dim=None, shard_capacity=..., query_chunk_size=...,
    database_chunk_size=...)`` must return an :class:`IndexBackend`.
    Re-registering an existing name raises — deliberate replacement goes
    through :func:`unregister_backend` first.
    """

    def _register(factory: Callable[..., IndexBackend]):
        if name in _REGISTRY:
            raise ValueError(f"index backend '{name}' is already registered")
        _REGISTRY[name] = factory
        return factory

    return _register if factory is None else _register(factory)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests and plugins)."""
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(
    name: str,
    *,
    dim: int | None = None,
    shard_capacity: int = DEFAULT_SHARD_CAPACITY,
    query_chunk_size: int = DEFAULT_QUERY_CHUNK,
    database_chunk_size: int = DEFAULT_DATABASE_CHUNK,
    **backend_params,
) -> IndexBackend:
    """Instantiate the backend registered under ``name``.

    Extra keyword arguments are forwarded to the factory verbatim — the
    backend-specific knobs (``nlist``/``nprobe``/``pq_m``/… for the ANN
    backends).  A backend that does not take a given knob raises its natural
    ``TypeError``, so typos never pass silently.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown index backend '{name}'; available: {', '.join(available_backends())}"
        ) from None
    return factory(
        dim=dim,
        shard_capacity=shard_capacity,
        query_chunk_size=query_chunk_size,
        database_chunk_size=database_chunk_size,
        **backend_params,
    )


# --------------------------------------------------------------------- #
# Shared id-keyed storage for the immutable (array-backed) backends
# --------------------------------------------------------------------- #
class _ArrayBackend:
    """Append-only ``(vectors, ids)`` storage shared by the non-sharded backends.

    Rows accumulate in blocks; a concatenated view plus the id→row map is
    materialised lazily and invalidated by mutations.  Removal is not
    supported — these backends model the "encode once, freeze, serve" shape.
    """

    name = "array"
    supports_removal = False
    #: Conformance hint (see ``tests/backend_conformance.py``): exact
    #: backends promise oracle-identical neighbour ids; approximate ones
    #: (the ANN package) set this ``False`` and promise faithfulness
    #: invariants instead.
    is_exact = True

    def __init__(
        self,
        dim: int | None = None,
        *,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        query_chunk_size: int = DEFAULT_QUERY_CHUNK,
        database_chunk_size: int = DEFAULT_DATABASE_CHUNK,
    ) -> None:
        self._dim = int(dim) if dim is not None else None
        self.query_chunk_size = int(query_chunk_size)
        self.database_chunk_size = int(database_chunk_size)
        self._blocks: list[tuple[np.ndarray, np.ndarray]] = []
        self._known_ids: set[int] = set()
        self._count = 0
        self._next_id = 0
        self.generation = 0
        self._vectors: np.ndarray | None = None
        self._ids: np.ndarray | None = None
        self._rows_by_id: dict[int, int] | None = None

    def __len__(self) -> int:
        return self._count

    @property
    def dim(self) -> int | None:
        return self._dim

    @property
    def next_id(self) -> int:
        return self._next_id

    @next_id.setter
    def next_id(self, value: int) -> None:
        if int(value) < self._next_id:
            raise ValueError("next_id may only move forward")
        self._next_id = int(value)

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        matrix = as_float32_matrix(vectors)
        if matrix is vectors and matrix.flags.writeable:
            # Copy only a caller's writable alias; frozen matrices (the
            # engine's encode output, store archives) are shared as-is.
            matrix = matrix.copy()
        vectors = matrix
        if self._dim is None:
            self._dim = vectors.shape[1]
        elif vectors.shape[1] != self._dim:
            raise ValueError(f"vector dimension {vectors.shape[1]} != index dimension {self._dim}")
        count = vectors.shape[0]
        if ids is None:
            ids = np.arange(self._next_id, self._next_id + count, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (count,):
                raise ValueError("ids must have exactly one entry per vector row")
            if len(np.unique(ids)) != count:
                raise ValueError("ids must be unique")
            for row_id in ids:
                if int(row_id) in self._known_ids:
                    raise ValueError(f"row id {int(row_id)} already present")
        if count == 0:
            return ids
        self._blocks.append((vectors, ids))
        self._known_ids.update(int(i) for i in ids)
        self._count += count
        self._next_id = max(self._next_id, int(ids.max()) + 1)
        self.generation += 1
        self._invalidate()
        return ids

    def remove(self, ids) -> int:
        raise UnsupportedOperation(
            f"the '{self.name}' backend is append-only and does not support remove(); "
            "use the 'sharded' backend for tombstones and compaction"
        )

    def compact(self, *, min_tombstones: int = 1) -> bool:
        return False

    def segments(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        self._materialise()
        if self._count:
            yield self._vectors, self._ids, np.zeros(self._count, dtype=bool)

    # ------------------------------------------------------------------ #
    def _invalidate(self) -> None:
        self._vectors = None
        self._ids = None
        self._rows_by_id = None

    def _materialise(self) -> None:
        if self._vectors is not None or not self._blocks:
            return
        self._vectors = np.concatenate([block for block, _ in self._blocks], axis=0)
        # The concatenation owns fresh data; freeze it so downstream indexes
        # (SimilarityIndex) share the matrix instead of defensively copying.
        self._vectors.flags.writeable = False
        self._ids = np.concatenate([ids for _, ids in self._blocks])
        self._rows_by_id = {int(row_id): row for row, row_id in enumerate(self._ids)}

    def _check_ready(self, queries: np.ndarray) -> np.ndarray:
        queries = as_float32_matrix(queries, "queries")
        if self._dim is not None and queries.shape[1] != self._dim:
            raise ValueError(
                f"query dimension {queries.shape[1]} does not match index dimension {self._dim}"
            )
        return queries

    def _truth_rows(self, truth_ids: np.ndarray) -> np.ndarray:
        self._materialise()
        if self._rows_by_id is None:
            raise ValueError("the index is empty; no truth rows exist")
        rows = np.empty(truth_ids.shape, dtype=np.int64)
        for i, row_id in enumerate(truth_ids):
            row = self._rows_by_id.get(int(row_id))
            if row is None:
                raise ValueError(f"truth id {int(row_id)} is not a row of the index")
            rows[i] = row
        return rows


@register_backend("chunked")
class ChunkedBackend(_ArrayBackend):
    """The monolithic chunked index (:class:`SimilarityIndex`) as a backend.

    The underlying index freezes its database at construction, so mutation is
    modelled as lazy rebuild: ``add`` appends to the row storage and the
    index is reconstructed on the next query.  Ids are mapped onto the
    index's row numbers; with insertion-ordered ids (the default) tie
    handling is identical to the sharded backend's ``(distance, id)`` order.
    """

    name = "chunked"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._index: SimilarityIndex | None = None

    def _invalidate(self) -> None:
        super()._invalidate()
        self._index = None

    def _materialised_index(self) -> SimilarityIndex:
        self._materialise()
        if self._index is None:
            self._index = SimilarityIndex(
                self._vectors,
                query_chunk_size=self.query_chunk_size,
                database_chunk_size=self.database_chunk_size,
            )
        return self._index

    def top_k(self, queries: np.ndarray, k: int) -> SearchResult:
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = self._check_ready(queries)
        if self._count == 0 or queries.shape[0] == 0:
            k = min(k, self._count)
            return SearchResult(
                indices=np.empty((queries.shape[0], k), dtype=np.int64),
                distances=np.empty((queries.shape[0], k), dtype=np.float32),
            )
        result = self._materialised_index().topk(queries, k)
        return SearchResult(indices=self._ids[result.indices], distances=result.distances)

    def ranks_of(self, queries: np.ndarray, truth_ids: np.ndarray) -> np.ndarray:
        queries = self._check_ready(queries)
        truth = np.asarray(truth_ids, dtype=np.int64)
        index = self._materialised_index()
        return index.ranks_of(queries, self._truth_rows(truth))


@register_backend("bruteforce")
class BruteforceBackend(_ArrayBackend):
    """Full distance matrix + stable full sort — the reference semantics.

    Every query materialises the whole ``(Q, D)`` float32 distance matrix
    and sorts it per row by ``(distance, id)``.  This is the oracle the
    chunked/sharded paths are tested against and the right choice for tiny
    corpora; it is *not* bounded in memory or time.
    """

    name = "bruteforce"

    def _distances(self, queries: np.ndarray) -> np.ndarray:
        self._materialise()
        return pairwise_squared_euclidean(
            queries,
            self._vectors,
            query_norms=squared_norms(queries),
            database_norms=squared_norms(self._vectors),
        )

    def top_k(self, queries: np.ndarray, k: int) -> SearchResult:
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = self._check_ready(queries)
        k = min(k, self._count)
        if self._count == 0 or queries.shape[0] == 0:
            return SearchResult(
                indices=np.empty((queries.shape[0], k), dtype=np.int64),
                distances=np.empty((queries.shape[0], k), dtype=np.float32),
            )
        squared = self._distances(queries)
        id_row = np.broadcast_to(self._ids, squared.shape)
        order = np.lexsort((id_row, squared), axis=-1)[:, :k]
        return SearchResult(
            indices=np.take_along_axis(id_row, order, axis=1),
            distances=np.sqrt(np.take_along_axis(squared, order, axis=1)),
        )

    def ranks_of(self, queries: np.ndarray, truth_ids: np.ndarray) -> np.ndarray:
        queries = self._check_ready(queries)
        truth = np.asarray(truth_ids, dtype=np.int64)
        if truth.shape != (queries.shape[0],):
            raise ValueError("truth_ids must have one entry per query row")
        truth_rows = self._truth_rows(truth)
        squared = self._distances(queries)
        truth_d = squared[np.arange(squared.shape[0]), truth_rows]
        ids = self._ids[None, :]
        not_truth = ids != truth[:, None]
        closer = squared < truth_d[:, None]
        tie_before = (squared == truth_d[:, None]) & (ids < truth[:, None])
        return ((closer | tie_before) & not_truth).sum(axis=1).astype(np.int64) + 1


@register_backend("sharded")
class ShardedBackend:
    """The production sharded index (:class:`ShardedIndex`) as a backend.

    Thin adapter: appends stream into append-only shards, removals are
    tombstones, ``compact`` reclaims them, queries fan out and k-way merge.
    The only built-in backend supporting the full mutation surface.
    """

    name = "sharded"
    supports_removal = True
    is_exact = True

    def __init__(
        self,
        dim: int | None = None,
        *,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        query_chunk_size: int = DEFAULT_QUERY_CHUNK,
        database_chunk_size: int = DEFAULT_DATABASE_CHUNK,
    ) -> None:
        self._index = ShardedIndex(
            dim=dim,
            shard_capacity=shard_capacity,
            query_chunk_size=query_chunk_size,
            database_chunk_size=database_chunk_size,
        )

    def __len__(self) -> int:
        return len(self._index)

    @property
    def dim(self) -> int | None:
        return self._index.dim

    @property
    def generation(self) -> int:
        return self._index.generation

    @property
    def next_id(self) -> int:
        return self._index.next_id

    @next_id.setter
    def next_id(self, value: int) -> None:
        self._index.next_id = value

    @property
    def num_shards(self) -> int:
        return self._index.num_shards

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        return self._index.add(vectors, ids=ids)

    def remove(self, ids) -> int:
        return self._index.remove(ids)

    def compact(self, *, min_tombstones: int = 1) -> bool:
        return self._index.compact(min_tombstones=min_tombstones)

    def top_k(self, queries: np.ndarray, k: int) -> SearchResult:
        return self._index.top_k(queries, k)

    def ranks_of(self, queries: np.ndarray, truth_ids: np.ndarray) -> np.ndarray:
        return self._index.ranks_of(queries, truth_ids)

    def segments(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        for shard in self._index.shards:
            if len(shard):
                yield shard.vectors, shard.ids, shard.dead


# The ANN backends live below this layer (repro.ann imports only the serving
# kernels); they are registered here so `import repro.api` is the single
# point where the built-in registry is assembled.
register_backend("ivf", IVFBackend)
register_backend("ivfpq", IVFPQBackend)
