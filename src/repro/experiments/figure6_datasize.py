"""Figure 6: effect of pre-training as the labelled training set shrinks.

The paper varies the fine-tuning data size and compares START with and
without self-supervised pre-training on travel time estimation and trajectory
classification, showing that pre-training helps most when labels are scarce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import StartConfig, small_config
from repro.core.pretraining import Pretrainer
from repro.eval.tasks import TaskSettings, number_of_classes, run_classification_task, run_travel_time_task
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import build_start
from repro.experiments.reporting import format_series
from repro.trajectory.presets import label_of


@dataclass
class Figure6Settings:
    scale: float = 0.4
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    pretrain_epochs: int = 5
    finetune_epochs: int = 5
    config: StartConfig | None = None

    def resolved_config(self) -> StartConfig:
        return self.config if self.config is not None else small_config()


def run_figure6(dataset_name: str = "synthetic-bj", settings: Figure6Settings | None = None) -> dict:
    """MAPE / classification quality vs. training-set size, with and without pre-training."""
    settings = settings or Figure6Settings()
    config = settings.resolved_config()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)
    label_kind = label_of(dataset_name)
    num_classes = number_of_classes(dataset, label_kind)
    classification_metric = "F1" if num_classes == 2 else "Macro-F1"
    train_pool = dataset.train_trajectories()
    task_settings = TaskSettings(finetune_epochs=settings.finetune_epochs, classification_k=min(5, num_classes))

    result: dict = {
        "train_sizes": [],
        "eta_mape": {"Pre-train": [], "No Pre-train": []},
        "classification": {"Pre-train": [], "No Pre-train": []},
        "classification_metric": classification_metric,
    }
    for fraction in settings.fractions:
        size = max(int(len(train_pool) * fraction), config.batch_size)
        subset = train_pool[:size]
        result["train_sizes"].append(size)
        for variant in ("Pre-train", "No Pre-train"):
            eta_model = build_start(dataset, config)
            if variant == "Pre-train":
                Pretrainer(eta_model, config).pretrain(subset, epochs=settings.pretrain_epochs)
            eta_report = run_travel_time_task(
                eta_model, dataset, config, task_settings, train_trajectories=subset
            )
            result["eta_mape"][variant].append(eta_report["MAPE"])

            cls_model = build_start(dataset, config)
            if variant == "Pre-train":
                Pretrainer(cls_model, config).pretrain(subset, epochs=settings.pretrain_epochs)
            cls_report = run_classification_task(
                cls_model,
                dataset,
                config,
                label_kind=label_kind,
                num_classes=num_classes,
                settings=task_settings,
                train_trajectories=subset,
            )
            result["classification"][variant].append(cls_report[classification_metric])
    return result


def format_figure6(result: dict) -> str:
    lines = ["Figure 6 — effect of pre-training vs. training-set size"]
    for variant in ("Pre-train", "No Pre-train"):
        lines.append(format_series(f"ETA MAPE ({variant})", result["train_sizes"], result["eta_mape"][variant], "{:.1f}"))
    metric = result["classification_metric"]
    for variant in ("Pre-train", "No Pre-train"):
        lines.append(
            format_series(f"{metric} ({variant})", result["train_sizes"], result["classification"][variant])
        )
    return "\n".join(lines)
