"""Figure 3: travel-time MAPE under different scenarios on synthetic-BJ.

The paper slices test-set MAPE by (a) departure hour on weekdays, (b)
departure hour on weekends and (c) trajectory hop count, comparing START, a
variant without the temporal modules and the best baseline (Trembr).  The
reproduction computes the same three series for the same three models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import StartConfig, small_config
from repro.core.finetuning import TravelTimeEstimator
from repro.core.pretraining import Pretrainer
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import build_start
from repro.experiments.reporting import format_series
from repro.baselines import build_baseline
from repro.eval.metrics import mean_absolute_percentage_error
from repro.trajectory.types import hour_of_day, is_weekend


@dataclass
class Figure3Settings:
    scale: float = 0.3
    pretrain_epochs: int = 5
    finetune_epochs: int = 5
    hour_buckets: tuple[tuple[int, int], ...] = ((0, 6), (6, 10), (10, 16), (16, 21), (21, 24))
    hop_buckets: tuple[tuple[int, int], ...] = ((0, 10), (10, 20), (20, 40), (40, 128))
    config: StartConfig | None = None

    def resolved_config(self) -> StartConfig:
        return self.config if self.config is not None else small_config()


def _fit_and_predict(model, config, dataset, epochs):
    estimator = TravelTimeEstimator(model, config)
    estimator.fit(dataset.train_trajectories(), epochs=epochs)
    test = dataset.test_trajectories()
    predictions = estimator.predict(test)
    truth = np.array([t.travel_time for t in test])
    return test, truth, predictions


def _bucket_mape(test, truth, predictions, selector) -> float:
    indices = [i for i, trajectory in enumerate(test) if selector(trajectory)]
    if not indices:
        return float("nan")
    return mean_absolute_percentage_error(truth[indices], predictions[indices])


def run_figure3(settings: Figure3Settings | None = None, dataset_name: str = "synthetic-bj") -> dict:
    """Compute the Figure 3 MAPE series for START, w/o Temporal and Trembr."""
    settings = settings or Figure3Settings()
    config = settings.resolved_config()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)

    models: dict[str, tuple] = {}

    start = build_start(dataset, config)
    Pretrainer(start, config).pretrain(dataset.train_trajectories(), epochs=settings.pretrain_epochs)
    models["START"] = (start, config)

    no_temporal_config = config.variant(use_time_embedding=False, use_time_interval=False)
    no_temporal = build_start(dataset, no_temporal_config)
    Pretrainer(no_temporal, no_temporal_config).pretrain(
        dataset.train_trajectories(), epochs=settings.pretrain_epochs
    )
    models["w/o Temporal"] = (no_temporal, no_temporal_config)

    trembr = build_baseline("Trembr", dataset.network, config)
    trembr.pretrain(dataset.train_trajectories(), epochs=settings.pretrain_epochs)
    models["Trembr"] = (trembr, config)

    result: dict = {
        "hour_buckets": [f"{lo:02d}-{hi:02d}" for lo, hi in settings.hour_buckets],
        "hop_buckets": [f"{lo}-{hi}" for lo, hi in settings.hop_buckets],
        "series": {},
    }
    for name, (model, model_config) in models.items():
        test, truth, predictions = _fit_and_predict(model, model_config, dataset, settings.finetune_epochs)
        weekday = [
            _bucket_mape(
                test,
                truth,
                predictions,
                lambda t, lo=lo, hi=hi: not is_weekend(t.departure_time)
                and lo <= hour_of_day(t.departure_time) < hi,
            )
            for lo, hi in settings.hour_buckets
        ]
        weekend = [
            _bucket_mape(
                test,
                truth,
                predictions,
                lambda t, lo=lo, hi=hi: is_weekend(t.departure_time)
                and lo <= hour_of_day(t.departure_time) < hi,
            )
            for lo, hi in settings.hour_buckets
        ]
        hops = [
            _bucket_mape(test, truth, predictions, lambda t, lo=lo, hi=hi: lo <= t.hops < hi)
            for lo, hi in settings.hop_buckets
        ]
        overall = mean_absolute_percentage_error(truth, predictions)
        result["series"][name] = {
            "weekday_by_hour": weekday,
            "weekend_by_hour": weekend,
            "by_hops": hops,
            "overall": overall,
        }
    return result


def format_figure3(result: dict) -> str:
    lines = ["Figure 3 — MAPE (%) under different scenarios"]
    for name, series in result["series"].items():
        lines.append(f"[{name}] overall MAPE = {series['overall']:.2f}")
        lines.append("  " + format_series("weekday by hour", result["hour_buckets"], series["weekday_by_hour"], "{:.1f}"))
        lines.append("  " + format_series("weekend by hour", result["hour_buckets"], series["weekend_by_hour"], "{:.1f}"))
        lines.append("  " + format_series("by trajectory hops", result["hop_buckets"], series["by_hops"], "{:.1f}"))
    return "\n".join(lines)
