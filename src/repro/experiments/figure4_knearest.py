"""Figure 4: k-nearest trajectory search precision vs. detour proportion.

For each model, the ground truth of a query is its own top-k neighbour set in
the database; the query is then replaced by a detour generated with selection
proportion ``p_d`` and the retrieved top-k set is compared with the ground
truth.  The paper varies ``p_d`` from 0.1 to 0.5 with k fixed at 5 and shows
precision decreasing as ``p_d`` grows, with START staying on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Engine, EngineConfig, QueryRequest
from repro.eval.similarity import evaluate_representation_knearest
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import TABLE2_MODELS, ZooSettings, pretrained_model_zoo
from repro.experiments.reporting import format_series
from repro.core.config import StartConfig
from repro.trajectory.detour import DetourConfig, make_detour
from repro.utils.seeding import get_rng


@dataclass
class Figure4Settings:
    scale: float = 0.3
    pretrain_epochs: int = 5
    proportions: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
    num_queries: int = 15
    database_size: int = 60
    k: int = 5
    models: tuple[str, ...] = TABLE2_MODELS
    config: StartConfig | None = None
    backend: str = "sharded"  # repro.api index backend serving the search


def _build_query_sets(dataset, settings: Figure4Settings) -> tuple[list, dict[float, list], list]:
    """Queries, per-proportion detoured queries and the search database."""
    rng = get_rng(11)
    pool = dataset.test_trajectories()
    database = pool[: settings.database_size]
    queries: list = []
    detours: dict[float, list] = {p: [] for p in settings.proportions}
    for trajectory in pool:
        candidate_detours = {}
        for proportion in settings.proportions:
            detour = make_detour(
                dataset.network,
                trajectory,
                DetourConfig(selection_proportion=proportion),
                rng=rng,
            )
            if detour is None:
                break
            candidate_detours[proportion] = detour
        if len(candidate_detours) != len(settings.proportions):
            continue
        queries.append(trajectory)
        for proportion, detour in candidate_detours.items():
            detours[proportion].append(detour)
        if len(queries) >= settings.num_queries:
            break
    return queries, detours, database


def run_figure4(dataset_name: str = "synthetic-porto", settings: Figure4Settings | None = None) -> dict:
    """Precision@k per model per detour proportion."""
    settings = settings or Figure4Settings()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)
    queries, detours, database = _build_query_sets(dataset, settings)
    if len(queries) < 3:
        raise RuntimeError("could not build enough detour queries; increase the dataset scale")

    zoo_settings = ZooSettings(config=settings.config, pretrain_epochs=settings.pretrain_epochs)
    result: dict = {"proportions": list(settings.proportions), "precision": {}, "num_queries": len(queries)}
    for name, model, _ in pretrained_model_zoo(dataset, zoo_settings, names=settings.models):
        # The database index and the ground-truth neighbour sets depend only
        # on the model, so feed one engine once and reuse it (and the
        # original queries' neighbour ids) across all proportions.
        engine = Engine(model, EngineConfig(backend=settings.backend))
        engine.ingest(database)
        relevant = engine.query(QueryRequest(queries=queries, k=settings.k)).ids
        series = [
            evaluate_representation_knearest(
                model.encode,
                queries,
                detours[proportion],
                database,
                k=settings.k,
                engine=engine,
                relevant_ids=relevant,
            )
            for proportion in settings.proportions
        ]
        result["precision"][name] = series
    return result


def format_figure4(result: dict) -> str:
    lines = [f"Figure 4 — Precision@5 of k-nearest search vs. detour proportion (n={result['num_queries']})"]
    for name, series in result["precision"].items():
        lines.append(format_series(name, result["proportions"], series))
    return "\n".join(lines)
