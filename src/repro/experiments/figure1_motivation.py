"""Figure 1: the motivating statistics for temporal regularities and travel semantics.

* Figure 1(a) — road visit frequencies are highly non-uniform (travel semantics);
* Figure 1(b) — trajectory counts show periodic daily/weekly patterns;
* Figure 1(c) — time intervals between consecutive roads are irregular.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.datasets import experiment_dataset
from repro.experiments.reporting import format_series


def run_figure1(scale: float = 0.3, dataset_name: str = "synthetic-bj") -> dict:
    """Compute the three motivating statistics on a synthetic dataset."""
    dataset = experiment_dataset(dataset_name, scale=scale)

    visit_counts = dataset.road_visit_counts()
    visited = visit_counts[visit_counts > 0]
    visit_stats = {
        "max_visits": int(visit_counts.max()),
        "median_visits": float(np.median(visited)) if visited.size else 0.0,
        "gini": _gini(visit_counts.astype(np.float64)),
    }

    weekday_hourly = dataset.hourly_counts(weekend=False)
    weekend_hourly = dataset.hourly_counts(weekend=True)
    daily = dataset.daily_counts()

    intervals = dataset.interval_distribution()
    interval_stats = {
        "mean_s": float(intervals.mean()),
        "std_s": float(intervals.std()),
        "p10_s": float(np.percentile(intervals, 10)),
        "p90_s": float(np.percentile(intervals, 90)),
    }

    return {
        "dataset": dataset_name,
        "visit_frequencies": visit_stats,
        "weekday_hourly_counts": weekday_hourly.tolist(),
        "weekend_hourly_counts": weekend_hourly.tolist(),
        "daily_counts": daily.tolist(),
        "interval_distribution": interval_stats,
    }


def _gini(values: np.ndarray) -> float:
    """Gini coefficient: 0 = perfectly uniform visits, 1 = all visits on one road."""
    if values.sum() == 0:
        return 0.0
    sorted_values = np.sort(values)
    n = len(values)
    cumulative = np.cumsum(sorted_values)
    return float((n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n)


def format_figure1(result: dict) -> str:
    lines = [f"Figure 1 — motivating statistics on {result['dataset']}"]
    lines.append(
        "(a) travel semantics: visit-frequency Gini = "
        f"{result['visit_frequencies']['gini']:.3f} "
        f"(max={result['visit_frequencies']['max_visits']}, "
        f"median={result['visit_frequencies']['median_visits']:.1f})"
    )
    lines.append(
        format_series("(b) weekday departures by hour", range(24), result["weekday_hourly_counts"], "{:.0f}")
    )
    lines.append(
        format_series("    weekend departures by hour", range(24), result["weekend_hourly_counts"], "{:.0f}")
    )
    lines.append(
        format_series("    departures by day of week (Mon..Sun)", range(1, 8), result["daily_counts"], "{:.0f}")
    )
    stats = result["interval_distribution"]
    lines.append(
        "(c) irregular intervals: mean="
        f"{stats['mean_s']:.1f}s std={stats['std_s']:.1f}s p10={stats['p10_s']:.1f}s p90={stats['p90_s']:.1f}s"
    )
    return "\n".join(lines)
