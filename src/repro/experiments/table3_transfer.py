"""Table III: transferring pre-trained models across datasets.

The paper pre-trains on BJ or Porto and fine-tunes on the small Geolife
dataset (travel time on car trips, transportation-mode classification on all
trips), comparing against training on Geolife from scratch and against
transferring Trembr.  The synthetic reproduction keeps the same structure:
synthetic-Geolife shares synthetic-BJ's road network (homogeneous transfer)
while synthetic-Porto has a different network (heterogeneous transfer, which
exercises the road-network-independent TPE-GAT parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import build_baseline
from repro.core.config import StartConfig, small_config
from repro.core.model import STARTModel
from repro.core.pretraining import Pretrainer
from repro.eval.tasks import TaskSettings, number_of_classes, run_classification_task, run_travel_time_task
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import build_start
from repro.experiments.reporting import format_table, merge_reports
from repro.trajectory.transfer import transfer_probability_matrix


@dataclass
class Table3Settings:
    scale: float = 0.3
    geolife_scale: float = 0.4
    pretrain_epochs: int = 5
    finetune_epochs: int = 5
    config: StartConfig | None = None

    def resolved_config(self) -> StartConfig:
        return self.config if self.config is not None else small_config()


def _start_for(dataset, config):
    return build_start(dataset, config)


def _evaluate_on_geolife(model, config, geolife, settings: Table3Settings) -> dict:
    """Fine-tune a (possibly pre-trained) model on Geolife and report both tasks."""
    task_settings = TaskSettings(finetune_epochs=settings.finetune_epochs, classification_k=2)
    car_trips = [t for t in geolife.trajectories if t.mode == "car"]
    car_train = [t for t in geolife.train_trajectories() if t.mode == "car"] or car_trips[: max(len(car_trips) // 2, 1)]
    car_test = [t for t in geolife.test_trajectories() if t.mode == "car"] or car_trips[len(car_trips) // 2 :]
    eta = run_travel_time_task(
        model, geolife, config, task_settings, train_trajectories=car_train, test_trajectories=car_test
    )
    classification = run_classification_task(
        model,
        geolife,
        config,
        label_kind="mode",
        num_classes=number_of_classes(geolife, "mode"),
        settings=task_settings,
    )
    return merge_reports({"ETA": eta, "CLS": classification})


def run_table3(settings: Table3Settings | None = None) -> list[dict]:
    """Run the cross-dataset transfer comparison of Table III."""
    settings = settings or Table3Settings()
    config = settings.resolved_config()
    geolife = experiment_dataset("synthetic-geolife", scale=settings.geolife_scale)
    bj = experiment_dataset("synthetic-bj", scale=settings.scale)
    porto = experiment_dataset("synthetic-porto", scale=settings.scale)

    rows: list[dict] = []

    # (1) START trained directly on Geolife, without and with pre-training.
    no_pretrain = _start_for(geolife, config)
    rows.append({"Model": "No Pre-train Geolife", **_evaluate_on_geolife(no_pretrain, config, geolife, settings)})

    pretrain_geolife = _start_for(geolife, config)
    Pretrainer(pretrain_geolife, config).pretrain(geolife.train_trajectories(), epochs=settings.pretrain_epochs)
    rows.append({"Model": "Pre-train Geolife", **_evaluate_on_geolife(pretrain_geolife, config, geolife, settings)})

    # (2) START pre-trained on the large datasets, transferred to Geolife.
    for source_name, source in (("Porto", porto), ("BJ", bj)):
        source_model = _start_for(source, config)
        Pretrainer(source_model, config).pretrain(source.train_trajectories(), epochs=settings.pretrain_epochs)
        transferred = _transfer_start(source_model, geolife, config)
        rows.append(
            {"Model": f"{source_name}-START", **_evaluate_on_geolife(transferred, config, geolife, settings)}
        )

    # (3) Trembr transferred the same way (sequence-to-sequence baseline).
    for source_name, source in (("Porto", porto), ("BJ", bj)):
        trembr = build_baseline("Trembr", source.network, config)
        trembr.pretrain(source.train_trajectories(), epochs=settings.pretrain_epochs)
        transferred_trembr = _transfer_trembr(trembr, geolife, config)
        rows.append(
            {
                "Model": f"{source_name}-Trembr",
                **_evaluate_on_geolife(transferred_trembr, config, geolife, settings),
            }
        )
    return rows


def _transfer_start(source_model: STARTModel, target_dataset, config: StartConfig) -> STARTModel:
    """Move START's network-independent weights onto the target dataset.

    The TPE-GAT parameters do not depend on the number of roads, so they (and
    the whole TAT-Enc stack) transfer directly; only the mask head (sized by
    the road vocabulary) is re-initialised when the road networks differ.
    """
    transfer = transfer_probability_matrix(target_dataset.network, target_dataset.train_trajectories())
    target_model = STARTModel(target_dataset.network, config=config, transfer_probability=transfer)
    source_state = source_model.state_dict()
    target_state = target_model.state_dict()
    compatible = {
        key: value
        for key, value in source_state.items()
        if key in target_state and target_state[key].shape == value.shape
    }
    target_state.update(compatible)
    target_model.load_state_dict(target_state)
    return target_model


def _transfer_trembr(source_model, target_dataset, config: StartConfig):
    """Transfer Trembr by copying every shape-compatible parameter."""
    target_model = build_baseline("Trembr", target_dataset.network, config)
    source_state = source_model.state_dict()
    target_state = target_model.state_dict()
    compatible = {
        key: value
        for key, value in source_state.items()
        if key in target_state and target_state[key].shape == value.shape
    }
    target_state.update(compatible)
    target_model.load_state_dict(target_state)
    return target_model


def format_table3(rows: list[dict]) -> str:
    return format_table(rows, title="Table III — transfer across datasets (fine-tuned on synthetic-Geolife)")
