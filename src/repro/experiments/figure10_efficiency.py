"""Figure 10: model efficiency and scalability.

Three panels are reproduced:

* (a) representation-generation (inference) time as the number of trajectories
  grows, for every learned model — self-attention models scale better than
  RNNs because they need O(1) rather than O(L) sequential steps;
* (b) average time of a most-similar-trajectory query as the query/database
  sizes grow, comparing representation-based search (O(d) per comparison,
  embeddings generated once) with classical pairwise measures (O(L^2) per
  comparison);
* (c) the search accuracy (mean rank) of the same methods, showing the deep
  representations are not just faster but also more accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import Engine, EngineConfig, QueryRequest
from repro.baselines import CLASSICAL_MEASURES, ClassicalSimilarity
from repro.core.config import StartConfig
from repro.eval.similarity import (
    most_similar_search_report,
    recall_against_exact,
    search_report_on_index,
)
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import TABLE2_MODELS, ZooSettings, pretrained_model_zoo
from repro.experiments.reporting import format_series
from repro.trajectory.detour import DetourConfig, build_similarity_benchmark
from repro.utils.seeding import get_rng
from repro.utils.timer import Timer


@dataclass
class Figure10Settings:
    scale: float = 0.3
    pretrain_epochs: int = 1
    encode_sizes: tuple[int, ...] = (20, 40, 80)
    query_sizes: tuple[int, ...] = (5, 10, 20)
    database_multiplier: int = 3
    classical_measures: tuple[str, ...] = ("DTW", "LCSS", "Frechet", "EDR")
    deep_models: tuple[str, ...] = ("Trembr", "Toast", "START")
    inference_models: tuple[str, ...] = TABLE2_MODELS
    config: StartConfig | None = None
    backend: str = "chunked"  # repro.api index backend serving the deep queries
    #: Optional ANN sweep: each named backend re-serves the deep vectors and
    #: reports per-query time + top-10 recall against the exact backend.
    ann_backends: tuple[str, ...] = ()
    ann_params: dict | None = None  # backend name -> backend_params dict
    ann_recall_k: int = 10


def run_inference_timing(dataset_name: str = "synthetic-porto", settings: Figure10Settings | None = None) -> dict:
    """Panel (a): encoding wall-clock time vs. number of trajectories."""
    settings = settings or Figure10Settings()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)
    pool = dataset.trajectories
    sizes = [min(size, len(pool)) for size in settings.encode_sizes]
    zoo_settings = ZooSettings(config=settings.config, pretrain_epochs=settings.pretrain_epochs)

    result: dict = {"sizes": sizes, "seconds": {}}
    for name, model, _ in pretrained_model_zoo(dataset, zoo_settings, names=settings.inference_models):
        series = []
        for size in sizes:
            with Timer() as timer:
                model.encode(pool[:size])
            series.append(timer.elapsed)
        result["seconds"][name] = series
    return result


def run_similarity_scalability(
    dataset_name: str = "synthetic-porto", settings: Figure10Settings | None = None
) -> dict:
    """Panels (b) and (c): query time and mean rank vs. query/database size."""
    settings = settings or Figure10Settings()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)
    zoo_settings = ZooSettings(config=settings.config, pretrain_epochs=settings.pretrain_epochs)
    deep_models = dict()
    for name, model, _ in pretrained_model_zoo(dataset, zoo_settings, names=settings.deep_models):
        deep_models[name] = model

    result: dict = {"query_sizes": [], "query_time": {}, "mean_rank": {}}
    for num_queries in settings.query_sizes:
        benchmark = build_similarity_benchmark(
            dataset.network,
            dataset.test_trajectories() + dataset.validation_trajectories(),
            num_queries=num_queries,
            num_negatives=num_queries * settings.database_multiplier,
            config=DetourConfig(),
            rng=get_rng(5),
        )
        if len(benchmark.queries) < max(num_queries // 2, 2):
            continue
        result["query_sizes"].append(f"{len(benchmark.queries)}/{len(benchmark.database)}")

        for name, model in deep_models.items():
            # The facade query path: encode once, index behind the configured
            # backend, rank through the chunked counting kernel.  The timer
            # covers exactly what a cold serving replica would do per batch.
            engine = Engine(model, EngineConfig(backend=settings.backend))
            with Timer() as timer:
                engine.ingest(benchmark.database)
                query_vectors = engine.encode(benchmark.queries)
                report = search_report_on_index(engine, query_vectors, benchmark.ground_truth)
            result["query_time"].setdefault(name, []).append(timer.elapsed / len(benchmark.queries))
            result["mean_rank"].setdefault(name, []).append(report["MR"])

            # Optional ANN sweep: the *same* vectors re-served through the
            # approximate backends — what changes is top-k recall and query
            # time, never the (exactly computed) mean rank.
            if settings.ann_backends:
                k = min(settings.ann_recall_k, len(benchmark.database))
                exact_ids = engine.query(QueryRequest(queries=query_vectors, k=k)).ids
                # The exact engine already encoded the database during ingest;
                # its stored segments are those vectors in insertion order, so
                # the ANN backends reuse them without a second forward pass.
                database_vectors = np.concatenate(
                    [vectors for vectors, _, _ in engine.backend.segments()]
                )
                for ann_name in settings.ann_backends:
                    params = (settings.ann_params or {}).get(ann_name)
                    ann_engine = Engine(
                        model, EngineConfig(backend=ann_name, backend_params=params)
                    )
                    ann_engine.ingest_vectors(database_vectors)
                    ann_engine.backend.top_k(query_vectors, k)  # warm-up build
                    with Timer() as ann_timer:
                        approx = ann_engine.backend.top_k(query_vectors, k)
                    label = f"{name}[{ann_name}]"
                    result["query_time"].setdefault(label, []).append(
                        ann_timer.elapsed / len(benchmark.queries)
                    )
                    result.setdefault("recall_at_k", {}).setdefault(label, []).append(
                        recall_against_exact(exact_ids, approx.indices)
                    )

        for measure in settings.classical_measures:
            similarity = ClassicalSimilarity(dataset.network, measure)
            with Timer() as timer:
                distances = np.zeros((len(benchmark.queries), len(benchmark.database)))
                for row, query in enumerate(benchmark.queries):
                    distances[row] = similarity.distances_to_database(query, benchmark.database)
            report = most_similar_search_report(distances, benchmark.ground_truth)
            result["query_time"].setdefault(measure, []).append(timer.elapsed / len(benchmark.queries))
            result["mean_rank"].setdefault(measure, []).append(report["MR"])
    return result


def run_figure10(dataset_name: str = "synthetic-porto", settings: Figure10Settings | None = None) -> dict:
    """Run all three panels."""
    settings = settings or Figure10Settings()
    return {
        "inference": run_inference_timing(dataset_name, settings),
        "similarity": run_similarity_scalability(dataset_name, settings),
    }


def format_figure10(result: dict) -> str:
    lines = ["Figure 10 — efficiency and scalability"]
    inference = result["inference"]
    lines.append("(a) representation generation time (seconds)")
    for name, series in inference["seconds"].items():
        lines.append("  " + format_series(name, inference["sizes"], series, "{:.3f}"))
    similarity = result["similarity"]
    lines.append("(b) average query time (seconds per query, query/database sizes on the x axis)")
    for name, series in similarity["query_time"].items():
        lines.append("  " + format_series(name, similarity["query_sizes"], series, "{:.4f}"))
    lines.append("(c) mean rank of the ground truth")
    for name, series in similarity["mean_rank"].items():
        lines.append("  " + format_series(name, similarity["query_sizes"], series, "{:.2f}"))
    if similarity.get("recall_at_k"):
        lines.append("(d) ANN top-k recall vs the exact backend")
        for name, series in similarity["recall_at_k"].items():
            lines.append("  " + format_series(name, similarity["query_sizes"], series, "{:.2f}"))
    return "\n".join(lines)
