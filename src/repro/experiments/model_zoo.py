"""Uniform construction and pre-training of START and every baseline.

The Table II / Figure 4 / Figure 10 runners need "one of each model,
pre-trained on the same corpus".  This module provides that loop in one
place, together with the START ablation variants of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import BASELINE_NAMES, build_baseline, node2vec_embeddings, Node2VecConfig
from repro.core.config import StartConfig, small_config
from repro.core.model import STARTModel
from repro.core.pretraining import Pretrainer
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.transfer import transfer_probability_matrix

#: Row order of Table II: the eight baselines followed by START.
TABLE2_MODELS = tuple(BASELINE_NAMES) + ("START",)

#: The ablation variants of Figure 7, name -> StartConfig overrides.
ABLATION_VARIANTS: dict[str, dict] = {
    "w/o TPE-GAT": {"road_encoder": "random"},
    "w/ Node2vec": {"road_encoder": "node2vec"},
    "w/o TransProb": {"use_transfer_prob": False},
    "w/o Time Emb": {"use_time_embedding": False},
    "w/o Time Interval": {"use_time_interval": False},
    "w/ Hop": {"interval_mode": "hop"},
    "w/o Log": {"interval_decay": "inverse"},
    "w/o Adaptive": {"adaptive_interval": False},
    "w/o Mask": {"use_mask_loss": False},
    "w/o Contra": {"use_contrastive_loss": False},
    "START": {},
}


@dataclass
class ZooSettings:
    """How large/long the models in a sweep should be."""

    config: StartConfig | None = None
    pretrain_epochs: int = 5

    def resolved_config(self) -> StartConfig:
        return self.config if self.config is not None else small_config()


def build_start(
    dataset: TrajectoryDataset,
    config: StartConfig,
    overrides: dict | None = None,
) -> STARTModel:
    """Build a START model (or one of its ablation variants) for a dataset."""
    variant_config = config.variant(**overrides) if overrides else config
    node2vec = None
    if variant_config.road_encoder == "node2vec":
        node2vec = node2vec_embeddings(
            dataset.network,
            Node2VecConfig(dimensions=variant_config.d_model, seed=variant_config.seed),
        )
    transfer = transfer_probability_matrix(dataset.network, dataset.train_trajectories())
    return STARTModel(
        dataset.network,
        config=variant_config,
        transfer_probability=transfer,
        node2vec_embeddings=node2vec,
    )


def build_and_pretrain(
    name: str,
    dataset: TrajectoryDataset,
    settings: ZooSettings,
    node2vec_cache: dict[int, np.ndarray] | None = None,
):
    """Build model ``name`` ("START" or a baseline) and pre-train it."""
    config = settings.resolved_config()
    if name == "START":
        model = build_start(dataset, config)
        Pretrainer(model, config).pretrain(
            dataset.train_trajectories(), epochs=settings.pretrain_epochs
        )
        return model, config
    model = build_baseline(name, dataset.network, config, node2vec_cache=node2vec_cache)
    model.pretrain(dataset.train_trajectories(), epochs=settings.pretrain_epochs)
    return model, config


def pretrained_model_zoo(
    dataset: TrajectoryDataset,
    settings: ZooSettings | None = None,
    names: tuple[str, ...] = TABLE2_MODELS,
):
    """Yield ``(name, model, config)`` for each requested model, pre-trained."""
    settings = settings or ZooSettings()
    node2vec_cache: dict[int, np.ndarray] = {}
    for name in names:
        model, config = build_and_pretrain(name, dataset, settings, node2vec_cache)
        yield name, model, config
