"""Table II: overall performance of START and all baselines on three tasks.

For each model (eight baselines + START) and each dataset the runner reports:

* travel time estimation — MAE, MAPE, RMSE;
* trajectory classification — ACC/F1/AUC on synthetic-BJ (binary occupancy)
  or Micro-F1/Macro-F1/Recall@k on synthetic-Porto (driver id);
* most similar trajectory search — MR, HR@1, HR@5.

Absolute values differ from the paper (synthetic data, small CPU models); the
claim being reproduced is the *ordering*: START should lead on all three
tasks, with Trembr the strongest baseline on travel time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import StartConfig
from repro.eval.tasks import (
    TaskSettings,
    number_of_classes,
    run_classification_task,
    run_similarity_task,
    run_travel_time_task,
)
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import TABLE2_MODELS, ZooSettings, pretrained_model_zoo
from repro.experiments.reporting import format_table, merge_reports
from repro.trajectory.presets import label_of


@dataclass
class Table2Settings:
    """Scale knobs for the Table II reproduction."""

    scale: float = 0.3
    pretrain_epochs: int = 5
    finetune_epochs: int = 5
    num_queries: int = 20
    num_negatives: int = 60
    models: tuple[str, ...] = TABLE2_MODELS
    config: StartConfig | None = None
    backend: str = "sharded"  # repro.api index backend for similarity search


def run_table2(
    dataset_name: str = "synthetic-porto", settings: Table2Settings | None = None
) -> list[dict]:
    """Run the full Table II comparison on one dataset."""
    settings = settings or Table2Settings()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)
    label_kind = label_of(dataset_name)
    num_classes = number_of_classes(dataset, label_kind)
    task_settings = TaskSettings(
        finetune_epochs=settings.finetune_epochs,
        num_queries=settings.num_queries,
        num_negatives=settings.num_negatives,
        classification_k=min(5, num_classes),
        backend=settings.backend,
    )
    zoo_settings = ZooSettings(config=settings.config, pretrain_epochs=settings.pretrain_epochs)

    rows: list[dict] = []
    for name, model, config in pretrained_model_zoo(dataset, zoo_settings, names=settings.models):
        # Similarity search uses the *pre-trained* representations (the paper
        # fine-tunes nothing for this task), so it must run before the ETA
        # and classification fine-tunings mutate the shared encoder in place.
        similarity = run_similarity_task(model, dataset, task_settings, seed=config.seed)
        eta = run_travel_time_task(model, dataset, config, task_settings)
        classification = run_classification_task(
            model, dataset, config, label_kind=label_kind, num_classes=num_classes, settings=task_settings
        )
        row = {"Model": name, "Dataset": dataset_name}
        row.update(merge_reports({"ETA": eta, "CLS": classification, "SIM": similarity}))
        rows.append(row)
    return rows


def format_table2(rows: list[dict]) -> str:
    return format_table(rows, title="Table II — overall performance on three downstream tasks")


def summarize_winners(rows: list[dict]) -> dict[str, str]:
    """Which model wins each headline metric (used by EXPERIMENTS.md and tests)."""
    if not rows:
        return {}
    winners: dict[str, str] = {}
    lower_is_better = ("ETA MAE", "ETA MAPE", "ETA RMSE", "SIM MR")
    higher_is_better = tuple(
        key
        for key in rows[0]
        if key.startswith(("CLS", "SIM HR"))
    )
    for key in lower_is_better:
        if key in rows[0]:
            winners[key] = min(rows, key=lambda r: r[key])["Model"]
    for key in higher_is_better:
        winners[key] = max(rows, key=lambda r: r[key])["Model"]
    return winners
