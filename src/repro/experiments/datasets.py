"""Shared dataset construction for the experiment runners.

Experiments repeatedly need the synthetic-BJ / synthetic-Porto / synthetic-
Geolife datasets at a given scale; this module builds them once per process
and caches them, so a benchmark session that regenerates several figures does
not pay the generation cost each time.
"""

from __future__ import annotations

from repro.roadnet.network import RoadNetwork
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.presets import build_dataset, build_network

_DATASET_CACHE: dict[tuple[str, float, int], TrajectoryDataset] = {}
_NETWORK_CACHE: dict[str, RoadNetwork] = {}


def experiment_network(name: str) -> RoadNetwork:
    """Cached road network of a preset."""
    if name not in _NETWORK_CACHE:
        _NETWORK_CACHE[name] = build_network(name)
    return _NETWORK_CACHE[name]


def experiment_dataset(name: str, scale: float = 0.3, seed: int | None = None) -> TrajectoryDataset:
    """Cached preset dataset at the requested scale.

    The Geolife preset always reuses the synthetic-BJ network so that the
    cross-dataset transfer experiment can exercise the "same road network,
    different trajectory distribution" path the paper describes.
    """
    key = (name, scale, seed if seed is not None else -1)
    if key not in _DATASET_CACHE:
        network = experiment_network("synthetic-bj") if name == "synthetic-geolife" else experiment_network(name)
        _DATASET_CACHE[key] = build_dataset(name, scale=scale, network=network, seed=seed)
    return _DATASET_CACHE[key]


def clear_caches() -> None:
    """Drop cached datasets/networks (used by tests that need isolation)."""
    _DATASET_CACHE.clear()
    _NETWORK_CACHE.clear()
