"""Figure 5: case study — top-3 similar trajectories retrieved by START vs Trembr.

The paper shows this qualitatively on a map: for two query trajectories, the
top-3 trajectories retrieved by START follow the query's overall shape and
OD pair more closely than those retrieved by Trembr.  Without a plotting
stack, this runner renders the same comparison quantitatively: for each query
it reports, per model, the road-set Jaccard overlap and the origin/destination
distance between the query and each of its top-3 retrieved trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import build_baseline
from repro.core.config import StartConfig, small_config
from repro.core.pretraining import Pretrainer
from repro.eval.similarity import euclidean_distance_matrix, top_k_indices
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import build_start
from repro.experiments.reporting import format_table
from repro.roadnet.network import RoadNetwork
from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng


@dataclass
class Figure5Settings:
    scale: float = 0.3
    pretrain_epochs: int = 3
    num_queries: int = 2
    database_size: int = 60
    top_k: int = 3
    config: StartConfig | None = None

    def resolved_config(self) -> StartConfig:
        return self.config if self.config is not None else small_config()


def _road_jaccard(first: Trajectory, second: Trajectory) -> float:
    a, b = set(first.roads), set(second.roads)
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def _od_distance(network: RoadNetwork, first: Trajectory, second: Trajectory) -> float:
    origin_a = np.array(network.segment(first.origin).midpoint)
    origin_b = np.array(network.segment(second.origin).midpoint)
    dest_a = np.array(network.segment(first.destination).midpoint)
    dest_b = np.array(network.segment(second.destination).midpoint)
    return float(np.linalg.norm(origin_a - origin_b) + np.linalg.norm(dest_a - dest_b))


def run_figure5(dataset_name: str = "synthetic-porto", settings: Figure5Settings | None = None) -> list[dict]:
    """Retrieve top-k similar trajectories with START and Trembr and score them."""
    settings = settings or Figure5Settings()
    config = settings.resolved_config()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)
    rng = get_rng(17)

    pool = dataset.test_trajectories() + dataset.validation_trajectories()
    if len(pool) < settings.database_size + settings.num_queries:
        raise RuntimeError("dataset too small for the Figure 5 case study")
    database = pool[: settings.database_size]
    query_indices = rng.choice(
        np.arange(settings.database_size, len(pool)), size=settings.num_queries, replace=False
    )
    queries = [pool[int(i)] for i in query_indices]

    start = build_start(dataset, config)
    Pretrainer(start, config).pretrain(dataset.train_trajectories(), epochs=settings.pretrain_epochs)
    trembr = build_baseline("Trembr", dataset.network, config)
    trembr.pretrain(dataset.train_trajectories(), epochs=settings.pretrain_epochs)

    rows: list[dict] = []
    for model_name, model in (("START", start), ("Trembr", trembr)):
        database_vectors = model.encode(database)
        query_vectors = model.encode(queries)
        distances = euclidean_distance_matrix(query_vectors, database_vectors)
        retrieved = top_k_indices(distances, settings.top_k)
        for query_position, query in enumerate(queries):
            for rank, database_index in enumerate(retrieved[query_position], start=1):
                match = database[int(database_index)]
                rows.append(
                    {
                        "Model": model_name,
                        "Query": query.trajectory_id,
                        "Rank": rank,
                        "Retrieved": match.trajectory_id,
                        "Road Jaccard": _road_jaccard(query, match),
                        "OD distance (m)": _od_distance(dataset.network, query, match),
                    }
                )
    return rows


def format_figure5(rows: list[dict]) -> str:
    return format_table(
        rows,
        title="Figure 5 — top-3 similar trajectories retrieved by START vs Trembr",
        float_format="{:.3f}",
    )


def summarize_figure5(rows: list[dict]) -> dict[str, float]:
    """Mean road-overlap of the retrieved top-k per model (higher = closer to query)."""
    summary: dict[str, list[float]] = {}
    for row in rows:
        summary.setdefault(row["Model"], []).append(row["Road Jaccard"])
    return {model: float(np.mean(values)) for model, values in summary.items()}
