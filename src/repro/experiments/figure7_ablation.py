"""Figure 7: ablation study of every START sub-module.

Eleven variants are trained and evaluated on travel time estimation (MAPE),
trajectory classification (F1 / Macro-F1) and most-similar search (MR),
matching the panels of Figure 7:

* road-encoder ablations: ``w/o TPE-GAT``, ``w/ Node2vec``, ``w/o TransProb``;
* temporal ablations: ``w/o Time Emb``, ``w/o Time Interval``, ``w/ Hop``,
  ``w/o Log``, ``w/o Adaptive``;
* self-supervised-task ablations: ``w/o Mask``, ``w/o Contra``;
* the full model (``START``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import StartConfig, small_config
from repro.core.pretraining import Pretrainer
from repro.eval.tasks import (
    TaskSettings,
    number_of_classes,
    run_classification_task,
    run_similarity_task,
    run_travel_time_task,
)
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import ABLATION_VARIANTS, build_start
from repro.experiments.reporting import format_table
from repro.trajectory.presets import label_of


@dataclass
class Figure7Settings:
    scale: float = 0.3
    pretrain_epochs: int = 5
    finetune_epochs: int = 5
    num_queries: int = 15
    num_negatives: int = 45
    variants: tuple[str, ...] = tuple(ABLATION_VARIANTS)
    config: StartConfig | None = None

    def resolved_config(self) -> StartConfig:
        return self.config if self.config is not None else small_config()


def run_figure7(dataset_name: str = "synthetic-porto", settings: Figure7Settings | None = None) -> list[dict]:
    """Train every ablation variant and report the three headline metrics."""
    settings = settings or Figure7Settings()
    config = settings.resolved_config()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)
    label_kind = label_of(dataset_name)
    num_classes = number_of_classes(dataset, label_kind)
    classification_metric = "F1" if num_classes == 2 else "Macro-F1"
    task_settings = TaskSettings(
        finetune_epochs=settings.finetune_epochs,
        num_queries=settings.num_queries,
        num_negatives=settings.num_negatives,
        classification_k=min(5, num_classes),
    )

    rows: list[dict] = []
    for variant in settings.variants:
        overrides = ABLATION_VARIANTS[variant]
        variant_config = config.variant(**overrides) if overrides else config
        model = build_start(dataset, config, overrides=overrides)
        Pretrainer(model, variant_config).pretrain(
            dataset.train_trajectories(), epochs=settings.pretrain_epochs
        )
        eta = run_travel_time_task(model, dataset, variant_config, task_settings)
        classification = run_classification_task(
            model,
            dataset,
            variant_config,
            label_kind=label_kind,
            num_classes=num_classes,
            settings=task_settings,
        )
        similarity = run_similarity_task(model, dataset, task_settings, seed=variant_config.seed)
        rows.append(
            {
                "Variant": variant,
                "MAPE": eta["MAPE"],
                classification_metric: classification[classification_metric],
                "MR": similarity["MR"],
            }
        )
    return rows


def format_figure7(rows: list[dict]) -> str:
    return format_table(rows, title="Figure 7 — ablation study")
