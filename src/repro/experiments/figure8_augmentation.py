"""Figure 8: pairwise comparison of contrastive data augmentation strategies.

The paper trains START with every pair of the four augmentation strategies
(Trajectory Trimming, Temporal Shifting, Road Segments Mask, Dropout) and
reports travel-time MAPE as a 4x4 grid; Temporal Shifting + Road Segments
Mask works best because both perturb the temporal dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import StartConfig, small_config
from repro.core.pretraining import Pretrainer
from repro.eval.tasks import TaskSettings, run_travel_time_task
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import build_start
from repro.experiments.reporting import format_table
from repro.trajectory.augmentation import AUGMENTATION_NAMES


@dataclass
class Figure8Settings:
    scale: float = 0.3
    pretrain_epochs: int = 3
    finetune_epochs: int = 4
    augmentations: tuple[str, ...] = AUGMENTATION_NAMES
    config: StartConfig | None = None

    def resolved_config(self) -> StartConfig:
        return self.config if self.config is not None else small_config()


def run_figure8(dataset_name: str = "synthetic-porto", settings: Figure8Settings | None = None) -> dict:
    """Train START with every (unordered) augmentation pair; report ETA MAPE."""
    settings = settings or Figure8Settings()
    base_config = settings.resolved_config()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)
    task_settings = TaskSettings(finetune_epochs=settings.finetune_epochs)

    names = list(settings.augmentations)
    grid: dict[tuple[str, str], float] = {}
    for i, first in enumerate(names):
        for second in names[i:]:
            config = base_config.variant(augmentations=(first, second))
            model = build_start(dataset, config)
            Pretrainer(model, config).pretrain(
                dataset.train_trajectories(), epochs=settings.pretrain_epochs
            )
            report = run_travel_time_task(model, dataset, config, task_settings)
            grid[(first, second)] = report["MAPE"]
            grid[(second, first)] = report["MAPE"]
    return {"augmentations": names, "mape_grid": grid}


def format_figure8(result: dict) -> str:
    names = result["augmentations"]
    rows = []
    for first in names:
        row = {"augmentation": first}
        for second in names:
            row[second] = result["mape_grid"][(first, second)]
        rows.append(row)
    return format_table(rows, title="Figure 8 — ETA MAPE (%) per augmentation pair", float_format="{:.2f}")


def best_pair(result: dict) -> tuple[str, str]:
    """The augmentation pair with the lowest MAPE."""
    grid = result["mape_grid"]
    return min(grid, key=grid.get)
