"""Figure 9: parameter sensitivity (encoder depth, embedding size, batch size).

The paper sweeps the TAT-Enc depth L2, the embedding size d and the batch
size N_b and reports trajectory classification quality, observing an
inverted-U shape: too small underfits, too large overfits (and very large
contrastive batches introduce too many hard negatives).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import StartConfig, small_config
from repro.core.pretraining import Pretrainer
from repro.eval.tasks import TaskSettings, number_of_classes, run_classification_task
from repro.experiments.datasets import experiment_dataset
from repro.experiments.model_zoo import build_start
from repro.experiments.reporting import format_series
from repro.trajectory.presets import label_of


@dataclass
class Figure9Settings:
    scale: float = 0.3
    pretrain_epochs: int = 3
    finetune_epochs: int = 4
    encoder_layers: tuple[int, ...] = (1, 2, 3)
    embedding_sizes: tuple[int, ...] = (16, 32, 64)
    batch_sizes: tuple[int, ...] = (8, 16, 32)
    config: StartConfig | None = None

    def resolved_config(self) -> StartConfig:
        return self.config if self.config is not None else small_config()


def _evaluate(config: StartConfig, dataset, label_kind, num_classes, settings: Figure9Settings) -> float:
    model = build_start(dataset, config)
    Pretrainer(model, config).pretrain(dataset.train_trajectories(), epochs=settings.pretrain_epochs)
    metric = "F1" if num_classes == 2 else "Macro-F1"
    report = run_classification_task(
        model,
        dataset,
        config,
        label_kind=label_kind,
        num_classes=num_classes,
        settings=TaskSettings(finetune_epochs=settings.finetune_epochs, classification_k=min(5, num_classes)),
    )
    return report[metric]


def run_figure9(dataset_name: str = "synthetic-porto", settings: Figure9Settings | None = None) -> dict:
    """Sweep L2, d and N_b; report the classification metric for each value."""
    settings = settings or Figure9Settings()
    base = settings.resolved_config()
    dataset = experiment_dataset(dataset_name, scale=settings.scale)
    label_kind = label_of(dataset_name)
    num_classes = number_of_classes(dataset, label_kind)

    result: dict = {
        "metric": "F1" if num_classes == 2 else "Macro-F1",
        "encoder_layers": {"values": list(settings.encoder_layers), "scores": []},
        "embedding_size": {"values": list(settings.embedding_sizes), "scores": []},
        "batch_size": {"values": list(settings.batch_sizes), "scores": []},
    }
    for depth in settings.encoder_layers:
        config = base.variant(encoder_layers=depth)
        result["encoder_layers"]["scores"].append(_evaluate(config, dataset, label_kind, num_classes, settings))
    for size in settings.embedding_sizes:
        heads = base.encoder_heads if size % base.encoder_heads == 0 else 2
        config = base.variant(d_model=size, encoder_heads=heads)
        result["embedding_size"]["scores"].append(_evaluate(config, dataset, label_kind, num_classes, settings))
    for batch in settings.batch_sizes:
        config = base.variant(batch_size=batch)
        result["batch_size"]["scores"].append(_evaluate(config, dataset, label_kind, num_classes, settings))
    return result


def format_figure9(result: dict) -> str:
    lines = [f"Figure 9 — parameter sensitivity ({result['metric']})"]
    for key, label in (
        ("encoder_layers", "(a) depth of encoder layer"),
        ("embedding_size", "(b) embedding size"),
        ("batch_size", "(c) batch size"),
    ):
        lines.append(format_series(label, result[key]["values"], result[key]["scores"]))
    return "\n".join(lines)
