"""`repro.experiments` — runners that regenerate every table and figure.

Each module maps to one artefact of the paper's evaluation section:

=====================  ====================================================
Module                 Paper artefact
=====================  ====================================================
``table1_datasets``    Table I (dataset statistics)
``figure1_motivation`` Figure 1 (temporal regularities / travel semantics)
``table2_overall``     Table II (overall comparison on three tasks)
``table3_transfer``    Table III (cross-dataset transfer)
``figure3_scenarios``  Figure 3 (MAPE by departure time and hop count)
``figure4_knearest``   Figure 4 (k-nearest precision vs. detour proportion)
``figure6_datasize``   Figure 6 (pre-training vs. training-set size)
``figure7_ablation``   Figure 7 (ablation study)
``figure8_augmentation`` Figure 8 (augmentation-pair grid)
``figure9_sensitivity`` Figure 9 (parameter sensitivity)
``figure10_efficiency`` Figure 10 (efficiency and scalability)
=====================  ====================================================
"""

from repro.experiments.datasets import clear_caches, experiment_dataset, experiment_network
from repro.experiments.model_zoo import (
    ABLATION_VARIANTS,
    TABLE2_MODELS,
    ZooSettings,
    build_and_pretrain,
    build_start,
    pretrained_model_zoo,
)
from repro.experiments.reporting import format_series, format_table, merge_reports
from repro.experiments.table1_datasets import format_table1, run_table1
from repro.experiments.figure1_motivation import format_figure1, run_figure1
from repro.experiments.table2_overall import (
    Table2Settings,
    format_table2,
    run_table2,
    summarize_winners,
)
from repro.experiments.table3_transfer import Table3Settings, format_table3, run_table3
from repro.experiments.figure3_scenarios import Figure3Settings, format_figure3, run_figure3
from repro.experiments.figure4_knearest import Figure4Settings, format_figure4, run_figure4
from repro.experiments.figure5_casestudy import (
    Figure5Settings,
    format_figure5,
    run_figure5,
    summarize_figure5,
)
from repro.experiments.figure6_datasize import Figure6Settings, format_figure6, run_figure6
from repro.experiments.figure7_ablation import Figure7Settings, format_figure7, run_figure7
from repro.experiments.figure8_augmentation import (
    Figure8Settings,
    best_pair,
    format_figure8,
    run_figure8,
)
from repro.experiments.figure9_sensitivity import Figure9Settings, format_figure9, run_figure9
from repro.experiments.figure10_efficiency import (
    Figure10Settings,
    format_figure10,
    run_figure10,
    run_inference_timing,
    run_similarity_scalability,
)

__all__ = [
    "experiment_dataset",
    "experiment_network",
    "clear_caches",
    "TABLE2_MODELS",
    "ABLATION_VARIANTS",
    "ZooSettings",
    "build_start",
    "build_and_pretrain",
    "pretrained_model_zoo",
    "format_table",
    "format_series",
    "merge_reports",
    "run_table1",
    "format_table1",
    "run_figure1",
    "format_figure1",
    "Table2Settings",
    "run_table2",
    "format_table2",
    "summarize_winners",
    "Table3Settings",
    "run_table3",
    "format_table3",
    "Figure3Settings",
    "run_figure3",
    "format_figure3",
    "Figure4Settings",
    "run_figure4",
    "format_figure4",
    "Figure5Settings",
    "run_figure5",
    "format_figure5",
    "summarize_figure5",
    "Figure6Settings",
    "run_figure6",
    "format_figure6",
    "Figure7Settings",
    "run_figure7",
    "format_figure7",
    "Figure8Settings",
    "run_figure8",
    "format_figure8",
    "best_pair",
    "Figure9Settings",
    "run_figure9",
    "format_figure9",
    "Figure10Settings",
    "run_figure10",
    "run_inference_timing",
    "run_similarity_scalability",
    "format_figure10",
]
