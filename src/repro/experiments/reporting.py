"""Plain-text table formatting for experiment results.

Every experiment runner returns structured rows (lists of dictionaries); these
helpers turn them into the aligned text tables printed by the benchmarks and
examples, mirroring the row/column layout of the paper's tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(columns[i]), max(len(r[i]) for r in rendered)) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(name.ljust(width) for name, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Iterable[object], ys: Iterable[float], float_format: str = "{:.3f}") -> str:
    """Render an (x, y) series as one line per point (for figure data)."""
    pairs = ", ".join(f"{x}: {float_format.format(float(y))}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def merge_reports(prefix_to_report: Mapping[str, Mapping[str, float]]) -> dict[str, float]:
    """Flatten several metric dictionaries into one row with prefixed keys."""
    merged: dict[str, float] = {}
    for prefix, report in prefix_to_report.items():
        for key, value in report.items():
            merged[f"{prefix} {key}" if prefix else key] = value
    return merged
