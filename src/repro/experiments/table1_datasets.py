"""Table I: statistics of the datasets after preprocessing.

The paper reports time span, trajectory count, user count, road-segment count
and the train/eval/test split sizes of BJ and Porto; this runner reports the
same columns for the synthetic presets.
"""

from __future__ import annotations

from repro.experiments.datasets import experiment_dataset
from repro.experiments.reporting import format_table


def run_table1(scale: float = 0.3, datasets: tuple[str, ...] = ("synthetic-bj", "synthetic-porto")) -> list[dict]:
    """Collect Table I statistics for the requested dataset presets."""
    rows = []
    for name in datasets:
        dataset = experiment_dataset(name, scale=scale)
        stats = dataset.statistics()
        split = stats.pop("train/eval/test")
        rows.append(
            {
                "Dataset": name,
                "#Trajectory": stats["num_trajectories"],
                "#Usr": stats["num_users"],
                "#Road Segment": stats["num_roads"],
                "#Covered Roads": stats["num_covered_roads"],
                "Mean length": stats["mean_length"],
                "train/eval/test": f"{split[0]}/{split[1]}/{split[2]}",
            }
        )
    return rows


def format_table1(rows: list[dict]) -> str:
    return format_table(rows, title="Table I — dataset statistics after preprocessing")
