"""Trajectory Pattern-Enhanced Graph Attention Network (TPE-GAT).

Stage one of START (Section III-A of the paper).  The layer extends GAT
attention with the road transfer probability computed from historical
trajectories:

.. math::

    e_{ij} = (h_i W_1 + h_j W_2 + p^{trans}_{ij} W_3) W_4^T, \\qquad
    \\alpha_{ij} = \\mathrm{softmax}_{j \\in N_i}(\\mathrm{LeakyReLU}(e_{ij}))

and aggregates neighbours as ``h_i' = ELU(sum_j alpha_ij h_j W_5)`` with
multi-head concatenation.

Implementation notes
--------------------
* The neighbourhood ``N_i`` is the union of in-neighbours, out-neighbours and
  the road itself (a self-loop), which keeps information flowing in a directed
  graph and stabilises the softmax for degree-one roads.
* The per-edge softmax is vectorised through a constant one-hot scatter
  matrix ``S`` of shape ``(V, E)``: group sums are ``S @ exp(e)`` and
  per-destination normalisers are gathered back onto edges.  At the synthetic
  city scale this dense matrix is small; for very large networks it could be
  replaced by a sparse kernel without touching the interface.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Module, ModuleList, Parameter, Tensor, concatenate
from repro.nn import init as nn_init
from repro.nn.tensor import gather_rows
from repro.roadnet.network import RoadNetwork
from repro.utils.seeding import get_rng


class _AttentionGraph:
    """Precomputed constant structures describing the attention neighbourhood."""

    def __init__(self, network: RoadNetwork, transfer_probability: np.ndarray | None) -> None:
        sources: list[int] = []
        destinations: list[int] = []
        transfer: list[float] = []
        for i in network.road_ids():
            neighbours = set(network.successors(i)) | set(network.predecessors(i)) | {i}
            for j in sorted(neighbours):
                destinations.append(i)
                sources.append(j)
                if transfer_probability is not None:
                    transfer.append(float(transfer_probability[i, j]))
                else:
                    transfer.append(0.0)
        self.source = np.array(sources, dtype=np.int64)
        self.destination = np.array(destinations, dtype=np.int64)
        self.transfer = np.array(transfer, dtype=np.float32).reshape(-1, 1)
        self.num_nodes = network.num_roads
        self.num_edges = len(sources)
        # One-hot scatter matrix: S[i, e] = 1 when edge e points at node i.
        scatter = np.zeros((self.num_nodes, self.num_edges), dtype=np.float32)
        scatter[self.destination, np.arange(self.num_edges)] = 1.0
        self.scatter = scatter
        # Same structure keyed by the edge *source*, used as the matmul
        # backward of the source-side edge gathers (see gather_rows).  Like
        # the destination matrix above it is dense V x E — fine at the
        # synthetic-city scale this module documents; a sparse kernel (and
        # gather_rows' scatter_matrix=None fallback) is the upgrade path for
        # very large networks.
        scatter_source = np.zeros((self.num_nodes, self.num_edges), dtype=np.float32)
        scatter_source[self.source, np.arange(self.num_edges)] = 1.0
        self.scatter_source = scatter_source


class TPEGATHead(Module):
    """One attention head of a TPE-GAT layer."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.weight_self = Parameter(nn_init.xavier_uniform((in_dim, out_dim), rng))
        self.weight_neighbor = Parameter(nn_init.xavier_uniform((in_dim, out_dim), rng))
        self.weight_transfer = Parameter(nn_init.xavier_uniform((1, out_dim), rng))
        self.weight_score = Parameter(nn_init.xavier_uniform((out_dim, 1), rng))
        self.weight_value = Parameter(nn_init.xavier_uniform((in_dim, out_dim), rng))

    def forward(self, features: Tensor, graph: _AttentionGraph) -> Tensor:
        projected_self = features @ self.weight_self        # (V, out)
        projected_neighbor = features @ self.weight_neighbor
        transfer_term = Tensor(graph.transfer) @ self.weight_transfer  # (E, out)

        # e_ij for every (destination i, source j) pair in the neighbourhood list.
        edge_features = (
            gather_rows(projected_self, graph.destination, graph.scatter)
            + gather_rows(projected_neighbor, graph.source, graph.scatter_source)
            + transfer_term
        )
        scores = (edge_features @ self.weight_score).leaky_relu(0.2)  # (E, 1)

        # Numerically-stable softmax per destination node.
        scatter = Tensor(graph.scatter)
        max_per_node = np.zeros((graph.num_nodes, 1), dtype=np.float64)
        np.maximum.at(max_per_node[:, 0], graph.destination, scores.data.reshape(-1))
        shifted = scores - Tensor(max_per_node.astype(np.float32))[graph.destination]
        exp_scores = shifted.exp()
        normaliser = gather_rows(scatter @ exp_scores, graph.destination, graph.scatter)  # (E, 1)
        attention = exp_scores / (normaliser + 1e-12)

        values = gather_rows(features @ self.weight_value, graph.source, graph.scatter_source)  # (E, out)
        aggregated = scatter @ (attention * values)              # (V, out)
        return aggregated.elu()


class TPEGATLayer(Module):
    """Multi-head TPE-GAT layer with concatenated head outputs."""

    def __init__(self, in_dim: int, out_dim: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if out_dim % num_heads != 0:
            raise ValueError(f"out_dim={out_dim} not divisible by num_heads={num_heads}")
        head_dim = out_dim // num_heads
        self.heads = ModuleList([TPEGATHead(in_dim, head_dim, rng) for _ in range(num_heads)])

    def forward(self, features: Tensor, graph: _AttentionGraph) -> Tensor:
        outputs = [head(features, graph) for head in self.heads]
        if len(outputs) == 1:
            return outputs[0]
        return concatenate(outputs, axis=-1)


class TPEGAT(Module):
    """The full stage-one encoder: road features -> road representation vectors.

    Parameters
    ----------
    network:
        The road network (defines the neighbourhood structure).
    road_features:
        ``(V, d_in)`` static road feature matrix ``F_V``.
    transfer_probability:
        ``(V, V)`` transfer probability matrix; pass ``None`` for the
        ``w/o TransProb`` ablation (a plain GAT).
    d_model:
        Output dimensionality of the road representations.
    num_layers / heads:
        Stack shape; ``heads[l]`` is the head count of layer ``l``.
    """

    def __init__(
        self,
        network: RoadNetwork,
        road_features: np.ndarray,
        transfer_probability: np.ndarray | None,
        d_model: int,
        num_layers: int = 2,
        heads: tuple[int, ...] = (4, 1),
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        if len(heads) != num_layers:
            raise ValueError("heads must list one head count per layer")
        self.register_buffer("road_features", road_features.astype(np.float32))
        self._graph = _AttentionGraph(network, transfer_probability)
        dims = [road_features.shape[1]] + [d_model] * num_layers
        self.layers = ModuleList(
            [
                TPEGATLayer(dims[i], dims[i + 1], heads[i], rng)
                for i in range(num_layers)
            ]
        )
        self.d_model = d_model

    def forward(self) -> Tensor:
        """Return the ``(V, d_model)`` road representation matrix."""
        hidden = Tensor(self.road_features)
        for layer in self.layers:
            hidden = layer(hidden, self._graph)
        return hidden
