"""Trajectory Time Pattern Extraction module (Section III-B1).

Two embedding tables capture the periodic regularities of urban traffic: a
minute-of-day table (1..1440) for the daily cycle and a day-of-week table
(1..7) for the weekly cycle.  Masked positions use the dedicated ``[MASKT]``
ids and padded positions use id 0.
"""

from __future__ import annotations

import numpy as np

from repro.core.tokens import DAY_VOCAB, MINUTE_VOCAB
from repro.nn import Embedding, Module, Tensor
from repro.utils.seeding import get_rng


class TimePatternEmbedding(Module):
    """Sum of minute-of-day and day-of-week embeddings for each position."""

    def __init__(self, d_model: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        self.minute_embedding = Embedding(MINUTE_VOCAB, d_model, padding_idx=0, rng=rng)
        self.day_embedding = Embedding(DAY_VOCAB, d_model, padding_idx=0, rng=rng)
        self.d_model = d_model

    def forward(self, minute_indices: np.ndarray, day_indices: np.ndarray) -> Tensor:
        """Embed ``(batch, seq)`` integer index arrays into ``(batch, seq, d)``."""
        minute_indices = np.asarray(minute_indices, dtype=np.int64)
        day_indices = np.asarray(day_indices, dtype=np.int64)
        if minute_indices.shape != day_indices.shape:
            raise ValueError("minute and day index arrays must have the same shape")
        return self.minute_embedding(minute_indices) + self.day_embedding(day_indices)
