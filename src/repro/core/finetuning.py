"""Fine-tuning START (or any encoder with the same interface) on downstream tasks.

Two supervised heads are provided (Section III-D):

* **travel time estimation** — a single fully-connected layer regressing the
  trip duration; only the departure time is visible to the encoder during
  fine-tuning to avoid leaking the answer through the time features;
* **trajectory classification** — a fully-connected layer with softmax over
  the task's classes (occupancy, driver id or transportation mode).

The third downstream task, similarity search, uses the pre-trained
representations directly and lives in :mod:`repro.eval.similarity`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import StartConfig
from repro.core.model import STARTModel
from repro.nn import (
    AdamW,
    BatchIterator,
    Linear,
    Module,
    Tensor,
    clip_grad_norm,
    cross_entropy,
    length_bucketed_indices,
    mse_loss,
    no_grad,
)
from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng


class TravelTimeHead(Module):
    """Single fully-connected layer: representation -> normalised travel time."""

    def __init__(self, d_model: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.fc = Linear(d_model, 1, rng=rng)

    def forward(self, pooled: Tensor) -> Tensor:
        return self.fc(pooled).reshape(pooled.shape[0])


class ClassificationHead(Module):
    """Single fully-connected layer producing class logits."""

    def __init__(self, d_model: int, num_classes: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.fc = Linear(d_model, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, pooled: Tensor) -> Tensor:
        return self.fc(pooled)


@dataclass
class FinetuneHistory:
    """Per-epoch training loss of a fine-tuning run."""

    loss: list[float] = field(default_factory=list)


def _length_bucketed_batches(trajectories: list[Trajectory], batch_size: int):
    """Index batches over the length-sorted order (shared serving helper)."""
    return length_bucketed_indices([len(t) for t in trajectories], batch_size)


class TravelTimeEstimator:
    """Fine-tunes an encoder plus regression head for travel time estimation."""

    def __init__(self, model: STARTModel, config: StartConfig | None = None) -> None:
        self.model = model
        self.config = config or model.config
        self._rng = get_rng(self.config.seed + 2)
        self.head = TravelTimeHead(self.config.d_model, rng=self._rng)
        self.builder = model.make_builder(rng=self._rng)
        self._target_mean = 0.0
        self._target_std = 1.0

    def _normalise(self, seconds: np.ndarray) -> np.ndarray:
        return (seconds - self._target_mean) / self._target_std

    def _denormalise(self, values: np.ndarray) -> np.ndarray:
        return values * self._target_std + self._target_mean

    def fit(
        self, trajectories: list[Trajectory], epochs: int | None = None, verbose: bool = False
    ) -> FinetuneHistory:
        """Fine-tune encoder and head with the MSE objective (Equation 16)."""
        if not trajectories:
            raise ValueError("cannot fine-tune on an empty trajectory list")
        epochs = epochs if epochs is not None else self.config.finetune_epochs
        targets = np.array([t.travel_time for t in trajectories], dtype=np.float64)
        self._target_mean = float(targets.mean())
        self._target_std = float(max(targets.std(), 1.0))

        parameters = self.model.parameters() + self.head.parameters()
        optimizer = AdamW(parameters, lr=self.config.learning_rate, weight_decay=self.config.weight_decay)
        history = FinetuneHistory()
        self.model.train()
        self.head.train()
        for _ in range(epochs):
            iterator = BatchIterator(len(trajectories), self.config.batch_size, shuffle=True, rng=self._rng)
            total, steps = 0.0, 0
            for indices in iterator:
                chunk = [trajectories[i] for i in indices]
                batch = self.builder.build(chunk, span_mask=False, time_mode="departure_only")
                optimizer.zero_grad()
                _, pooled = self.model(batch)
                predictions = self.head(pooled)
                loss = mse_loss(predictions, self._normalise(batch.travel_times))
                loss.backward()
                clip_grad_norm(parameters, self.config.gradient_clip)
                optimizer.step()
                total += loss.item()
                steps += 1
            history.loss.append(total / max(steps, 1))
        self.model.eval()
        self.head.eval()
        return history

    def predict(self, trajectories: list[Trajectory]) -> np.ndarray:
        """Predicted travel times in seconds."""
        if not trajectories:
            return np.zeros(0)
        self.model.eval()
        self.head.eval()
        predictions = np.empty(len(trajectories), dtype=np.float64)
        with no_grad():
            for rows in _length_bucketed_batches(trajectories, self.config.batch_size):
                chunk = [trajectories[i] for i in rows]
                batch = self.builder.build(chunk, span_mask=False, time_mode="departure_only")
                _, pooled = self.model(batch)
                predictions[rows] = self.head(pooled).data
        return self._denormalise(predictions)


class TrajectoryClassifier:
    """Fine-tunes an encoder plus softmax head for trajectory classification."""

    def __init__(
        self,
        model: STARTModel,
        num_classes: int,
        label_kind: str = "occupied",
        config: StartConfig | None = None,
    ) -> None:
        self.model = model
        self.config = config or model.config
        self.num_classes = num_classes
        self.label_kind = label_kind
        self._rng = get_rng(self.config.seed + 3)
        self.head = ClassificationHead(self.config.d_model, num_classes, rng=self._rng)
        self.builder = model.make_builder(rng=self._rng)

    def fit(
        self, trajectories: list[Trajectory], epochs: int | None = None, verbose: bool = False
    ) -> FinetuneHistory:
        """Fine-tune encoder and head with cross-entropy (Equation 17)."""
        if not trajectories:
            raise ValueError("cannot fine-tune on an empty trajectory list")
        epochs = epochs if epochs is not None else self.config.finetune_epochs
        parameters = self.model.parameters() + self.head.parameters()
        optimizer = AdamW(parameters, lr=self.config.learning_rate, weight_decay=self.config.weight_decay)
        history = FinetuneHistory()
        self.model.train()
        self.head.train()
        for _ in range(epochs):
            iterator = BatchIterator(len(trajectories), self.config.batch_size, shuffle=True, rng=self._rng)
            total, steps = 0.0, 0
            for indices in iterator:
                chunk = [trajectories[i] for i in indices]
                batch = self.builder.build(chunk, span_mask=False, label_kind=self.label_kind)
                optimizer.zero_grad()
                _, pooled = self.model(batch)
                logits = self.head(pooled)
                loss = cross_entropy(logits, batch.class_labels)
                loss.backward()
                clip_grad_norm(parameters, self.config.gradient_clip)
                optimizer.step()
                total += loss.item()
                steps += 1
            history.loss.append(total / max(steps, 1))
        self.model.eval()
        self.head.eval()
        return history

    def predict_proba(self, trajectories: list[Trajectory]) -> np.ndarray:
        """``(N, num_classes)`` class probabilities."""
        if not trajectories:
            return np.zeros((0, self.num_classes))
        self.model.eval()
        self.head.eval()
        probabilities = np.empty((len(trajectories), self.num_classes), dtype=np.float64)
        with no_grad():
            for rows in _length_bucketed_batches(trajectories, self.config.batch_size):
                chunk = [trajectories[i] for i in rows]
                batch = self.builder.build(chunk, span_mask=False, label_kind=self.label_kind)
                _, pooled = self.model(batch)
                probabilities[rows] = self.head(pooled).softmax(axis=-1).data
        return probabilities

    def predict(self, trajectories: list[Trajectory]) -> np.ndarray:
        """Predicted class ids."""
        probabilities = self.predict_proba(trajectories)
        return probabilities.argmax(axis=1)

    def labels_of(self, trajectories: list[Trajectory]) -> np.ndarray:
        """Ground-truth labels for ``trajectories`` under this task's label kind."""
        from repro.core.batching import _class_label

        return np.array([_class_label(t, self.label_kind) for t in trajectories], dtype=np.int64)
