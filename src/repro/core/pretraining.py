"""Self-supervised pre-training of START (Section III-C).

Two tasks are optimised jointly:

* **span-masked trajectory recovery** — consecutive spans of roads are
  replaced by ``[MASK]`` (and their temporal indices by ``[MASKT]``) and the
  model predicts the original roads with a cross-entropy loss;
* **trajectory contrastive learning** — two augmented views of each
  trajectory form a positive pair for the NT-Xent loss with in-batch
  negatives.

The total loss is ``lambda * L_mask + (1 - lambda) * L_con`` (Equation 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batching import BatchBuilder
from repro.core.config import StartConfig
from repro.core.model import STARTModel
from repro.nn import AdamW, BatchIterator, WarmupCosineSchedule, clip_grad_norm, cross_entropy, nt_xent_loss
from repro.core import tokens as tok
from repro.trajectory.augmentation import TrajectoryAugmenter, historical_travel_times
from repro.trajectory.types import Trajectory
from repro.utils.logging import get_logger
from repro.utils.seeding import get_rng

logger = get_logger(__name__)


@dataclass
class PretrainingHistory:
    """Per-epoch averaged losses recorded during pre-training."""

    total: list[float] = field(default_factory=list)
    mask: list[float] = field(default_factory=list)
    contrastive: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.total)


class Pretrainer:
    """Runs the two self-supervised tasks over a trajectory corpus."""

    def __init__(
        self,
        model: STARTModel,
        config: StartConfig | None = None,
        augmenter: TrajectoryAugmenter | None = None,
    ) -> None:
        self.model = model
        self.config = config or model.config
        self._rng = get_rng(self.config.seed + 1)
        self._augmenter = augmenter
        self.builder: BatchBuilder = model.make_builder(rng=self._rng)

    # ------------------------------------------------------------------ #
    # Loss terms
    # ------------------------------------------------------------------ #
    def _mask_loss(self, trajectories: list[Trajectory], token_table=None):
        batch = self.builder.build(trajectories, span_mask=True)
        sequence_output, _ = self.model(batch, token_table=token_table)
        logits = self.model.mask_logits(sequence_output)
        flat_logits = logits.reshape(batch.batch_size * batch.seq_len, self.model.num_roads)
        flat_labels = batch.mask_labels.reshape(-1)
        return cross_entropy(flat_logits, flat_labels, ignore_index=tok.IGNORE_LABEL)

    def _contrastive_loss(self, trajectories: list[Trajectory], token_table=None):
        first_name, second_name = self.config.augmentations
        first_views, second_views = [], []
        for trajectory in trajectories:
            first, second = self._augmenter.make_views(trajectory, first_name, second_name)
            first_views.append(first)
            second_views.append(second)
        batch_a = self.builder.build_from_views(first_views)
        batch_b = self.builder.build_from_views(second_views)
        _, pooled_a = self.model(batch_a, token_table=token_table)
        _, pooled_b = self.model(batch_b, token_table=token_table)
        return nt_xent_loss(pooled_a, pooled_b, temperature=self.config.temperature)

    # ------------------------------------------------------------------ #
    # Training loop
    # ------------------------------------------------------------------ #
    def pretrain(
        self,
        trajectories: list[Trajectory],
        epochs: int | None = None,
        verbose: bool = False,
    ) -> PretrainingHistory:
        """Pre-train the model in place and return the loss history."""
        if len(trajectories) < 2:
            raise ValueError("pre-training needs at least two trajectories")
        config = self.config
        epochs = epochs if epochs is not None else config.pretrain_epochs
        if self._augmenter is None:
            self._augmenter = TrajectoryAugmenter(
                historical_travel_times(trajectories), rng=self._rng
            )

        optimizer = AdamW(
            self.model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
        )
        batches_per_epoch = max(len(trajectories) // config.batch_size, 1)
        # Clamp the warm-up below the total step count: a 1-epoch run (the
        # Figure 10 smoke setting) would otherwise ask for warmup == total
        # and crash the scheduler's validation.
        total_steps = max(epochs * batches_per_epoch, 2)
        warmup_steps = min(max(config.warmup_epochs * batches_per_epoch, 1), total_steps - 1)
        schedule = WarmupCosineSchedule(
            optimizer,
            warmup_steps=warmup_steps,
            total_steps=total_steps,
        )
        history = PretrainingHistory()
        lambda_mask = config.loss_balance

        self.model.train()
        for epoch in range(epochs):
            iterator = BatchIterator(
                len(trajectories), config.batch_size, shuffle=True, drop_last=len(trajectories) >= 2 * config.batch_size, rng=self._rng
            )
            epoch_total, epoch_mask, epoch_con, steps = 0.0, 0.0, 0.0, 0
            for indices in iterator:
                chunk = [trajectories[i] for i in indices]
                if len(chunk) < 2:
                    continue
                optimizer.zero_grad()
                mask_value, con_value = 0.0, 0.0
                # One stage-one sweep per step: the mask forward and the two
                # contrastive-view forwards share the same token-table graph
                # node, so the TPE-GAT runs (and back-propagates) once
                # instead of three times.
                token_table = self.model._token_table()
                if config.use_mask_loss and config.use_contrastive_loss:
                    mask_loss = self._mask_loss(chunk, token_table)
                    con_loss = self._contrastive_loss(chunk, token_table)
                    loss = mask_loss * lambda_mask + con_loss * (1.0 - lambda_mask)
                    mask_value, con_value = mask_loss.item(), con_loss.item()
                elif config.use_mask_loss:
                    loss = self._mask_loss(chunk, token_table)
                    mask_value = loss.item()
                else:
                    loss = self._contrastive_loss(chunk, token_table)
                    con_value = loss.item()
                loss.backward()
                clip_grad_norm(self.model.parameters(), config.gradient_clip)
                schedule.step()
                optimizer.step()
                epoch_total += loss.item()
                epoch_mask += mask_value
                epoch_con += con_value
                steps += 1
            steps = max(steps, 1)
            history.total.append(epoch_total / steps)
            history.mask.append(epoch_mask / steps)
            history.contrastive.append(epoch_con / steps)
            if verbose:
                logger.info(
                    "pretrain epoch %d/%d: loss=%.4f (mask=%.4f, contrastive=%.4f)",
                    epoch + 1,
                    epochs,
                    history.total[-1],
                    history.mask[-1],
                    history.contrastive[-1],
                )
        self.model.eval()
        return history
