"""Batch construction for the trajectory encoders.

Turns lists of :class:`~repro.trajectory.types.Trajectory` (or augmented
views) into the padded integer/float arrays the model consumes: token ids
with the ``[CLS]`` placeholder at position 0, minute / day-of-week indices,
raw time-interval matrices, padding masks, span-mask labels and downstream
labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import tokens as tok
from repro.core.interval import raw_interval_matrix
from repro.trajectory.augmentation import AugmentedView
from repro.trajectory.types import Trajectory, day_of_week, minute_of_day
from repro.utils.seeding import get_rng


@dataclass
class TrajectoryBatch:
    """Model-ready arrays for one mini-batch (first position is [CLS])."""

    tokens: np.ndarray                 # (B, L) int64
    minute_indices: np.ndarray         # (B, L) int64
    day_indices: np.ndarray            # (B, L) int64
    timestamps: np.ndarray             # (B, L) float64
    padding_mask: np.ndarray           # (B, L) bool, True = padded
    intervals: np.ndarray              # (B, L, L) float64 seconds
    mask_labels: np.ndarray            # (B, L) int64 road ids or IGNORE_LABEL
    lengths: np.ndarray                # (B,) true lengths including [CLS]
    travel_times: np.ndarray           # (B,) float64 seconds
    class_labels: np.ndarray           # (B,) int64
    use_embedding_dropout: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def batch_size(self) -> int:
        return int(self.tokens.shape[0])

    @property
    def seq_len(self) -> int:
        return int(self.tokens.shape[1])


def _span_mask_positions(
    length: int, mask_ratio: float, mask_length: int, rng: np.random.Generator
) -> list[int]:
    """Choose consecutive spans covering ~``mask_ratio`` of the positions."""
    if length <= 1:
        return []
    target = max(int(round(length * mask_ratio)), 1)
    chosen: set[int] = set()
    attempts = 0
    while len(chosen) < target and attempts < 10 * target:
        attempts += 1
        start = int(rng.integers(0, length))
        for offset in range(mask_length):
            if start + offset < length and len(chosen) < target + mask_length:
                chosen.add(start + offset)
    return sorted(chosen)


class BatchBuilder:
    """Builds :class:`TrajectoryBatch` objects for pre-training and fine-tuning."""

    def __init__(
        self,
        num_roads: int,
        max_length: int = 128,
        mask_ratio: float = 0.15,
        mask_length: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.num_roads = num_roads
        self.max_length = max_length
        self.mask_ratio = mask_ratio
        self.mask_length = mask_length
        self._rng = rng if rng is not None else get_rng()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _truncate(self, roads: list[int], timestamps: list[float]) -> tuple[list[int], list[float]]:
        limit = self.max_length - 1  # reserve one position for [CLS]
        return roads[:limit], timestamps[:limit]

    def _allocate(self, batch: int, width: int) -> dict[str, np.ndarray]:
        return {
            "tokens": np.full((batch, width), tok.PAD_TOKEN, dtype=np.int64),
            "minutes": np.full((batch, width), tok.MINUTE_PAD, dtype=np.int64),
            "days": np.full((batch, width), tok.DAY_PAD, dtype=np.int64),
            "times": np.zeros((batch, width), dtype=np.float64),
            "padding": np.ones((batch, width), dtype=bool),
            "labels": np.full((batch, width), tok.IGNORE_LABEL, dtype=np.int64),
            "lengths": np.zeros(batch, dtype=np.int64),
        }

    def _fill_row(
        self,
        arrays: dict[str, np.ndarray],
        row: int,
        roads: list[int],
        timestamps: list[float],
        mask_positions: list[int] | None,
        add_labels: bool,
        time_mode: str,
    ) -> None:
        """Populate one row; ``mask_positions`` are indices into ``roads``."""
        length = len(roads) + 1  # plus [CLS]
        arrays["lengths"][row] = length
        arrays["padding"][row, :length] = False
        departure = timestamps[0] if timestamps else 0.0

        arrays["tokens"][row, 0] = tok.CLS_TOKEN
        arrays["times"][row, 0] = departure
        arrays["minutes"][row, 0] = minute_of_day(departure)
        arrays["days"][row, 0] = day_of_week(departure)

        mask_set = set(mask_positions or [])
        for position, (road, timestamp) in enumerate(zip(roads, timestamps)):
            column = position + 1
            if time_mode == "departure_only":
                arrays["times"][row, column] = departure
                arrays["minutes"][row, column] = minute_of_day(departure)
                arrays["days"][row, column] = day_of_week(departure)
            else:
                arrays["times"][row, column] = timestamp
                arrays["minutes"][row, column] = minute_of_day(timestamp)
                arrays["days"][row, column] = day_of_week(timestamp)
            if position in mask_set:
                arrays["tokens"][row, column] = tok.MASK_TOKEN
                arrays["minutes"][row, column] = tok.MINUTE_MASK
                arrays["days"][row, column] = tok.DAY_MASK
                if add_labels:
                    arrays["labels"][row, column] = road
            else:
                arrays["tokens"][row, column] = tok.road_to_token(road)

    def _finalize(
        self,
        arrays: dict[str, np.ndarray],
        trajectories: list[Trajectory] | None,
        use_embedding_dropout: bool,
        label_kind: str,
    ) -> TrajectoryBatch:
        intervals = raw_interval_matrix(arrays["times"], arrays["padding"])
        travel_times = np.zeros(arrays["tokens"].shape[0], dtype=np.float64)
        class_labels = np.zeros(arrays["tokens"].shape[0], dtype=np.int64)
        if trajectories is not None:
            travel_times = np.array([t.travel_time for t in trajectories], dtype=np.float64)
            class_labels = np.array(
                [_class_label(t, label_kind) for t in trajectories], dtype=np.int64
            )
        return TrajectoryBatch(
            tokens=arrays["tokens"],
            minute_indices=arrays["minutes"],
            day_indices=arrays["days"],
            timestamps=arrays["times"],
            padding_mask=arrays["padding"],
            intervals=intervals,
            mask_labels=arrays["labels"],
            lengths=arrays["lengths"],
            travel_times=travel_times,
            class_labels=class_labels,
            use_embedding_dropout=use_embedding_dropout,
        )

    # ------------------------------------------------------------------ #
    # Public builders
    # ------------------------------------------------------------------ #
    def build(
        self,
        trajectories: list[Trajectory],
        span_mask: bool = False,
        time_mode: str = "full",
        label_kind: str = "occupied",
    ) -> TrajectoryBatch:
        """Build a batch from plain trajectories.

        Parameters
        ----------
        span_mask:
            Apply span-masked recovery masking (pre-training).
        time_mode:
            ``"full"`` uses every visit time; ``"departure_only"`` exposes only
            the departure time (used when fine-tuning travel-time estimation to
            avoid label leakage).
        label_kind:
            Which classification label to extract ('occupied', 'driver', 'mode').
        """
        if time_mode not in ("full", "departure_only"):
            raise ValueError("time_mode must be 'full' or 'departure_only'")
        prepared = [self._truncate(t.roads, t.timestamps) for t in trajectories]
        width = max(len(roads) for roads, _ in prepared) + 1
        arrays = self._allocate(len(trajectories), width)
        for row, (roads, times) in enumerate(prepared):
            mask_positions = None
            if span_mask:
                mask_positions = _span_mask_positions(
                    len(roads), self.mask_ratio, self.mask_length, self._rng
                )
            self._fill_row(
                arrays, row, roads, times, mask_positions, add_labels=span_mask, time_mode=time_mode
            )
        return self._finalize(arrays, trajectories, False, label_kind)

    def build_from_views(self, views: list[AugmentedView]) -> TrajectoryBatch:
        """Build a batch from augmented views (contrastive learning)."""
        prepared = [self._truncate(v.roads, v.timestamps) for v in views]
        width = max(len(roads) for roads, _ in prepared) + 1
        arrays = self._allocate(len(views), width)
        any_dropout = any(v.use_embedding_dropout for v in views)
        for row, ((roads, times), view) in enumerate(zip(prepared, views)):
            mask_positions = [p for p in view.mask_positions if p < len(roads)]
            self._fill_row(
                arrays, row, roads, times, mask_positions, add_labels=False, time_mode="full"
            )
        return self._finalize(arrays, None, any_dropout, "occupied")


def _class_label(trajectory: Trajectory, label_kind: str) -> int:
    if label_kind == "occupied":
        return int(trajectory.occupied)
    if label_kind == "driver":
        return int(trajectory.user_id)
    if label_kind == "mode":
        modes = ("car", "walk", "bike", "bus")
        return modes.index(trajectory.mode) if trajectory.mode in modes else 0
    raise ValueError(f"unknown label_kind '{label_kind}'")
