"""`repro.core` — the START model and its training procedures.

The package implements the paper's primary contribution: the TPE-GAT road
encoder, the time-aware trajectory encoder (TAT-Enc), the two self-supervised
pre-training tasks and the downstream fine-tuning heads.
"""

from repro.core.config import StartConfig, paper_config, small_config, tiny_config
from repro.core import tokens
from repro.core.tokens import (
    CLS_TOKEN,
    IGNORE_LABEL,
    MASK_TOKEN,
    NUM_SPECIAL_TOKENS,
    PAD_TOKEN,
    road_to_token,
    token_to_road,
    vocabulary_size,
)
from repro.core.tpe_gat import TPEGAT, TPEGATLayer
from repro.core.time_features import TimePatternEmbedding
from repro.core.interval import TimeIntervalBias, hop_interval_matrix, raw_interval_matrix
from repro.core.batching import BatchBuilder, TrajectoryBatch
from repro.core.model import STARTModel
from repro.core.pretraining import Pretrainer, PretrainingHistory
from repro.core.finetuning import (
    ClassificationHead,
    FinetuneHistory,
    TravelTimeEstimator,
    TravelTimeHead,
    TrajectoryClassifier,
)

__all__ = [
    "StartConfig",
    "paper_config",
    "small_config",
    "tiny_config",
    "tokens",
    "PAD_TOKEN",
    "CLS_TOKEN",
    "MASK_TOKEN",
    "NUM_SPECIAL_TOKENS",
    "IGNORE_LABEL",
    "road_to_token",
    "token_to_road",
    "vocabulary_size",
    "TPEGAT",
    "TPEGATLayer",
    "TimePatternEmbedding",
    "TimeIntervalBias",
    "raw_interval_matrix",
    "hop_interval_matrix",
    "BatchBuilder",
    "TrajectoryBatch",
    "STARTModel",
    "Pretrainer",
    "PretrainingHistory",
    "TravelTimeEstimator",
    "TravelTimeHead",
    "TrajectoryClassifier",
    "ClassificationHead",
    "FinetuneHistory",
]
