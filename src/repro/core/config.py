"""Configuration of the START model, its training and its ablations.

The defaults follow the paper's architecture shape (Section IV-C1) but at a
CPU-friendly scale: the paper uses ``d=256``, three TPE-GAT layers with heads
``[8, 16, 1]`` and six TAT-Enc layers; the defaults here use ``d=64`` with
lighter stacks so that pre-training runs in seconds-to-minutes on a laptop.
Every paper hyper-parameter is still exposed, and the experiment runners can
request the full-size configuration explicitly.

The ablation flags map one-to-one onto the variants of Figure 7:

====================  =========================================================
Flag                  Paper variant
====================  =========================================================
``road_encoder="random"``        w/o TPE-GAT (random learnable road embeddings)
``road_encoder="node2vec"``      w/ Node2vec (frozen-init learnable embeddings)
``use_transfer_prob=False``      w/o TransProb (TPE-GAT degenerates to GAT)
``use_time_embedding=False``     w/o Time Emb
``use_time_interval=False``      w/o Time Interval
``interval_mode="hop"``          w/ Hop
``interval_decay="inverse"``     w/o Log
``adaptive_interval=False``      w/o Adaptive
``use_mask_loss=False``          w/o Mask
``use_contrastive_loss=False``   w/o Contra
====================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class StartConfig:
    """Hyper-parameters and ablation switches for START."""

    # Architecture.
    d_model: int = 64
    gat_layers: int = 2
    gat_heads: tuple[int, ...] = (4, 1)
    encoder_layers: int = 2
    encoder_heads: int = 4
    feed_forward_dim: int | None = None
    dropout: float = 0.1
    max_trajectory_length: int = 128

    # Road encoder: "tpe-gat" (the paper), "random" or "node2vec" (ablations).
    road_encoder: str = "tpe-gat"
    use_transfer_prob: bool = True

    # Content-embedding scale applied before the sinusoidal position table is
    # added (Equation 5).  The TPE-GAT road signal has RMS ~0.2 against the
    # position table's ~0.7, so without rescaling the [CLS] representation
    # learns sequence *shape* instead of road *content* and similarity search
    # collapses; pure sqrt(d) scaling (the original Transformer recipe)
    # overshoots the other way and starves travel-time estimation of the
    # length/position signal.  2.0 balances the two tasks at smoke scale.
    embedding_scale: float = 2.0

    # Temporal modules.
    use_time_embedding: bool = True
    use_time_interval: bool = True
    interval_mode: str = "time"      # "time" (|t_i - t_j|) or "hop" (|i - j|)
    interval_decay: str = "log"      # "log" (1/log(e+x)) or "inverse" (1/x)
    adaptive_interval: bool = True   # learnable two-linear transform of Eq. (9)
    interval_hidden: int = 8

    # Self-supervised tasks.
    use_mask_loss: bool = True
    use_contrastive_loss: bool = True
    mask_length: int = 2             # l_m
    mask_ratio: float = 0.15         # p_m
    temperature: float = 0.05        # tau
    loss_balance: float = 0.6        # lambda
    augmentations: tuple[str, str] = ("trim", "shift")

    # Optimisation (paper: AdamW, lr 2e-4, batch 64, 30 epochs, 5-epoch warm-up).
    learning_rate: float = 2e-4
    weight_decay: float = 0.01
    batch_size: int = 16
    pretrain_epochs: int = 3
    finetune_epochs: int = 3
    warmup_epochs: int = 1
    gradient_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_model % self.encoder_heads != 0:
            raise ValueError("d_model must be divisible by encoder_heads")
        if len(self.gat_heads) != self.gat_layers:
            raise ValueError("gat_heads must provide one head count per GAT layer")
        if self.road_encoder not in ("tpe-gat", "random", "node2vec"):
            raise ValueError(f"unknown road_encoder '{self.road_encoder}'")
        if self.interval_mode not in ("time", "hop"):
            raise ValueError(f"unknown interval_mode '{self.interval_mode}'")
        if self.interval_decay not in ("log", "inverse"):
            raise ValueError(f"unknown interval_decay '{self.interval_decay}'")
        if not 0.0 <= self.loss_balance <= 1.0:
            raise ValueError("loss_balance (lambda) must be in [0, 1]")
        if self.embedding_scale <= 0.0:
            raise ValueError("embedding_scale must be positive")
        if not 0.0 < self.mask_ratio < 1.0:
            raise ValueError("mask_ratio must be in (0, 1)")
        if not self.use_mask_loss and not self.use_contrastive_loss:
            raise ValueError("at least one self-supervised loss must be enabled")

    @property
    def ffn_dim(self) -> int:
        return self.feed_forward_dim if self.feed_forward_dim is not None else 2 * self.d_model

    def variant(self, **overrides) -> "StartConfig":
        """Create a modified copy (used heavily by the ablation experiments)."""
        return replace(self, **overrides)


def paper_config() -> StartConfig:
    """The full-size configuration reported in the paper (Section IV-C1)."""
    return StartConfig(
        d_model=256,
        gat_layers=3,
        gat_heads=(8, 16, 1),
        encoder_layers=6,
        encoder_heads=8,
        dropout=0.1,
        mask_length=2,
        mask_ratio=0.15,
        temperature=0.05,
        loss_balance=0.6,
        learning_rate=2e-4,
        batch_size=64,
        pretrain_epochs=30,
        warmup_epochs=5,
    )


def small_config(**overrides) -> StartConfig:
    """The configuration used by the experiment runners and benchmarks.

    Large enough for the paper's orderings to emerge on the synthetic
    datasets (two GAT layers so road identity is recoverable from the
    neighbourhood structure, two TAT-Enc layers), small enough that the whole
    benchmark suite runs on a CPU in minutes.
    """
    base = StartConfig(
        d_model=48,
        gat_layers=2,
        gat_heads=(4, 1),
        encoder_layers=2,
        encoder_heads=4,
        batch_size=16,
        pretrain_epochs=5,
        finetune_epochs=5,
        warmup_epochs=1,
        dropout=0.1,
        learning_rate=1e-3,
    )
    return base.variant(**overrides) if overrides else base


def tiny_config(**overrides) -> StartConfig:
    """A very small configuration for unit tests and smoke benchmarks.

    The learning rate is higher than the paper's 2e-4 because the smoke
    datasets are orders of magnitude smaller: with only a few hundred
    gradient steps in total, the paper's rate would barely move the weights.
    """
    base = StartConfig(
        d_model=32,
        gat_layers=1,
        gat_heads=(2,),
        encoder_layers=1,
        encoder_heads=2,
        batch_size=8,
        pretrain_epochs=1,
        finetune_epochs=2,
        warmup_epochs=0,
        dropout=0.1,
        learning_rate=1e-3,
    )
    return base.variant(**overrides) if overrides else base
