"""Adaptive time-interval matrix for Time Interval-Aware Self-Attention.

Section III-B2 of the paper: the raw matrix ``Delta`` of absolute time
differences ``|t_i - t_j|`` is passed through a decay ``1 / log(e + delta)``
(so nearer-in-time roads interact more strongly) and an adaptive two-linear
transform ``LeakyReLU(delta' w1) w2^T`` before being added to the attention
logits.  The ablation switches reproduce the ``w/ Hop``, ``w/o Log`` and
``w/o Adaptive`` variants of Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Module, Parameter, Tensor
from repro.nn import init as nn_init
from repro.utils.seeding import get_rng


def raw_interval_matrix(timestamps: np.ndarray, padding_mask: np.ndarray | None = None) -> np.ndarray:
    """``(batch, seq, seq)`` matrix of absolute time differences in seconds."""
    timestamps = np.asarray(timestamps, dtype=np.float64)
    delta = np.abs(timestamps[:, :, None] - timestamps[:, None, :])
    if padding_mask is not None:
        mask = np.asarray(padding_mask, dtype=bool)
        delta = np.where(mask[:, :, None] | mask[:, None, :], 0.0, delta)
    return delta


def hop_interval_matrix(batch_size: int, seq_len: int) -> np.ndarray:
    """``|i - j|`` hop-distance matrix (the ``w/ Hop`` ablation)."""
    positions = np.arange(seq_len, dtype=np.float64)
    hops = np.abs(positions[:, None] - positions[None, :])
    return np.broadcast_to(hops, (batch_size, seq_len, seq_len)).copy()


class TimeIntervalBias(Module):
    """Produces the additive attention bias ``tilde{Delta}``.

    Parameters
    ----------
    decay:
        ``"log"`` for ``1/log(e + x)`` (paper default) or ``"inverse"`` for
        ``1/x`` (the ``w/o Log`` ablation).
    adaptive:
        Whether to apply the learnable two-linear transform of Eq. (9); when
        False the decayed matrix is used as a constant bias (``w/o Adaptive``).
    hidden:
        Width of the intermediate dimension of the two-linear transform.
    """

    def __init__(
        self,
        decay: str = "log",
        adaptive: bool = True,
        hidden: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if decay not in ("log", "inverse"):
            raise ValueError("decay must be 'log' or 'inverse'")
        rng = rng if rng is not None else get_rng()
        self.decay = decay
        self.adaptive = adaptive
        self.omega1 = Parameter(nn_init.xavier_uniform((1, hidden), rng))
        self.omega2 = Parameter(nn_init.xavier_uniform((hidden, 1), rng))

    def _decayed(self, intervals: np.ndarray) -> np.ndarray:
        intervals = np.asarray(intervals, dtype=np.float64)
        if self.decay == "log":
            return 1.0 / np.log(np.e + intervals)
        return 1.0 / np.maximum(intervals, 1.0)

    def forward(self, intervals: np.ndarray) -> Tensor:
        """Compute the attention bias ``(batch, 1, seq, seq)`` from raw intervals."""
        decayed = self._decayed(intervals).astype(np.float32)
        batch, seq, _ = decayed.shape
        if not self.adaptive:
            return Tensor(decayed[:, None, :, :])
        flat = Tensor(decayed.reshape(batch * seq * seq, 1))
        transformed = (flat @ self.omega1).leaky_relu(0.2) @ self.omega2
        return transformed.reshape(batch, 1, seq, seq)
