"""The START model: TPE-GAT road encoder + Time-Aware Trajectory Encoder.

The model maps a batch of road-network constrained trajectories to

* per-position hidden states ``Z`` (used by span-masked recovery), and
* a pooled trajectory representation ``p`` (the hidden state of the ``[CLS]``
  placeholder inserted at position 0), used by contrastive learning, the
  downstream heads and similarity search.

Every ablation of Figure 7 is reachable through :class:`~repro.core.config.StartConfig`.
"""

from __future__ import annotations

import numpy as np

from repro.core import tokens as tok
from repro.core.batching import BatchBuilder, TrajectoryBatch
from repro.core.config import StartConfig
from repro.core.interval import TimeIntervalBias, hop_interval_matrix
from repro.core.time_features import TimePatternEmbedding
from repro.core.tpe_gat import TPEGAT
from repro.nn import (
    Dropout,
    Embedding,
    Linear,
    Module,
    PositionalEncoding,
    Tensor,
    TransformerEncoder,
    concatenate,
    embedding_lookup,
    is_grad_enabled,
    no_grad,
)
from repro.roadnet.features import road_feature_matrix
from repro.roadnet.network import RoadNetwork
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.transfer import transfer_probability_matrix
from repro.trajectory.types import Trajectory
from repro.utils.seeding import get_rng


class STARTModel(Module):
    """Self-supervised trajectory representation model (the paper's START)."""

    def __init__(
        self,
        network: RoadNetwork,
        config: StartConfig | None = None,
        transfer_probability: np.ndarray | None = None,
        node2vec_embeddings: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        self.config = config or StartConfig()
        self.network = network
        self.num_roads = network.num_roads
        rng = get_rng(self.config.seed)

        # ----- Stage 1: road representations ---------------------------------
        if self.config.road_encoder == "tpe-gat":
            features = road_feature_matrix(network)
            if not self.config.use_transfer_prob:
                transfer_probability = None
            self.road_encoder = TPEGAT(
                network,
                features,
                transfer_probability,
                d_model=self.config.d_model,
                num_layers=self.config.gat_layers,
                heads=self.config.gat_heads,
                rng=rng,
            )
            self.road_embedding = None
        else:
            self.road_encoder = None
            self.road_embedding = Embedding(self.num_roads, self.config.d_model, rng=rng)
            if self.config.road_encoder == "node2vec":
                if node2vec_embeddings is None:
                    raise ValueError("road_encoder='node2vec' requires node2vec_embeddings")
                if node2vec_embeddings.shape != (self.num_roads, self.config.d_model):
                    raise ValueError("node2vec_embeddings has the wrong shape")
                self.road_embedding.weight.data = node2vec_embeddings.astype(np.float32).copy()

        # ----- Stage 2: time-aware trajectory encoder ------------------------
        self.special_embedding = Embedding(tok.NUM_SPECIAL_TOKENS, self.config.d_model, rng=rng)
        self.time_embedding = (
            TimePatternEmbedding(self.config.d_model, rng=rng)
            if self.config.use_time_embedding
            else None
        )
        self.positional_encoding = PositionalEncoding(
            self.config.d_model, max_len=self.config.max_trajectory_length + 1
        )
        self.embedding_dropout = Dropout(self.config.dropout, rng=rng)
        self.interval_bias = (
            TimeIntervalBias(
                decay=self.config.interval_decay,
                adaptive=self.config.adaptive_interval,
                hidden=self.config.interval_hidden,
                rng=rng,
            )
            if self.config.use_time_interval
            else None
        )
        self.encoder = TransformerEncoder(
            d_model=self.config.d_model,
            num_heads=self.config.encoder_heads,
            num_layers=self.config.encoder_layers,
            d_hidden=self.config.ffn_dim,
            dropout=self.config.dropout,
            rng=rng,
        )
        self.mask_head = Linear(self.config.d_model, self.num_roads, rng=rng)
        # Frozen-weights road-representation cache used on the no-grad
        # inference path (invalidated whenever the model re-enters train mode
        # or loads new weights).
        self._road_cache: Tensor | None = None

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def road_representations(self) -> Tensor:
        """``(V, d)`` road representation matrix (stage-one output).

        On the no-grad inference path (eval mode inside ``no_grad()``) the
        matrix is a pure function of frozen weights, so it is computed once
        and cached until the model re-enters train mode or loads a new state
        dict.  Bulk encoding and streaming ingest hit this path for every
        micro-batch; without the cache the full TPE-GAT sweep dominated
        their cost.
        """
        if self.road_encoder is None:
            return embedding_lookup(self.road_embedding.weight, np.arange(self.num_roads))
        if not self.training and not is_grad_enabled():
            if self._road_cache is None:
                self._road_cache = self.road_encoder()
            return self._road_cache
        return self.road_encoder()

    def train(self, mode: bool = True) -> "STARTModel":
        if mode:
            self._road_cache = None
        return super().train(mode)

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        self._road_cache = None
        super().load_state_dict(state, strict=strict)

    def _token_table(self) -> Tensor:
        """``(num_specials + V, d)`` lookup table for token embeddings."""
        return concatenate(
            [
                embedding_lookup(self.special_embedding.weight, np.arange(tok.NUM_SPECIAL_TOKENS)),
                self.road_representations(),
            ],
            axis=0,
        )

    def _fuse_embeddings(
        self, batch: TrajectoryBatch, force_dropout: bool, token_table: Tensor | None = None
    ) -> Tensor:
        """Equation (5): x_i = r_i + tm_i + td_i + pe_i (plus embedding dropout).

        The content embeddings are scaled by ``config.embedding_scale``
        before the sinusoidal position encoding is added.  Without it the
        position table (RMS ~0.7) drowns the road-identity signal coming out
        of the TPE-GAT (RMS ~0.2) and the [CLS] representation learns
        sequence *shape* instead of *content*, which is exactly what the
        similarity-search task punishes; see the config field for why the
        factor is moderate rather than the Transformer's sqrt(d).
        """
        table = token_table if token_table is not None else self._token_table()
        embedded = embedding_lookup(table, batch.tokens)
        if self.time_embedding is not None:
            embedded = embedded + self.time_embedding(batch.minute_indices, batch.day_indices)
        if self.config.embedding_scale != 1.0:
            embedded = embedded * float(self.config.embedding_scale)
        embedded = self.positional_encoding(embedded)
        if force_dropout and not self.training:
            # SimCSE-style augmentation needs dropout noise even in eval mode.
            self.embedding_dropout.train()
            embedded = self.embedding_dropout(embedded)
            self.embedding_dropout.eval()
        else:
            embedded = self.embedding_dropout(embedded)
        return embedded

    def _attention_bias(self, batch: TrajectoryBatch) -> Tensor | None:
        if self.interval_bias is None:
            return None
        if self.config.interval_mode == "hop":
            intervals = hop_interval_matrix(batch.batch_size, batch.seq_len)
        else:
            intervals = batch.intervals
        return self.interval_bias(intervals)

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def forward(
        self, batch: TrajectoryBatch, token_table: Tensor | None = None
    ) -> tuple[Tensor, Tensor]:
        """Return ``(sequence_output, pooled)`` for a batch.

        ``sequence_output`` is ``(B, L, d)`` and ``pooled`` is the ``[CLS]``
        hidden state ``(B, d)`` — the trajectory representation ``p_i``.

        ``token_table`` lets callers that run several forwards against the
        same weights (the pre-trainer's mask + two contrastive views, bulk
        encoding) compute the stage-one road table once and share the graph
        node; gradients still accumulate correctly because autograd handles
        reused subgraphs.
        """
        embedded = self._fuse_embeddings(
            batch, force_dropout=batch.use_embedding_dropout, token_table=token_table
        )
        bias = self._attention_bias(batch)
        hidden = self.encoder(embedded, attention_bias=bias, key_padding_mask=batch.padding_mask)
        pooled = hidden[:, 0, :]
        return hidden, pooled

    def mask_logits(self, sequence_output: Tensor) -> Tensor:
        """Project hidden states to road logits for span-masked recovery."""
        return self.mask_head(sequence_output)

    # ------------------------------------------------------------------ #
    # Inference helpers
    # ------------------------------------------------------------------ #
    def make_builder(self, rng: np.random.Generator | None = None) -> BatchBuilder:
        """A :class:`BatchBuilder` matching this model's configuration."""
        return BatchBuilder(
            num_roads=self.num_roads,
            max_length=self.config.max_trajectory_length,
            mask_ratio=self.config.mask_ratio,
            mask_length=self.config.mask_length,
            rng=rng if rng is not None else get_rng(self.config.seed),
        )

    def encode(
        self,
        trajectories: list[Trajectory],
        batch_size: int | None = None,
        time_mode: str = "full",
    ) -> np.ndarray:
        """Encode trajectories into ``(N, d)`` representation vectors (no grad)."""
        if not trajectories:
            return np.zeros((0, self.config.d_model), dtype=np.float32)
        batch_size = batch_size or self.config.batch_size
        builder = self.make_builder()
        was_training = self.training
        self.eval()
        outputs: list[np.ndarray] = []
        with no_grad():
            table = self._token_table()  # one stage-one sweep for all batches
            for start in range(0, len(trajectories), batch_size):
                chunk = trajectories[start : start + batch_size]
                batch = builder.build(chunk, span_mask=False, time_mode=time_mode)
                _, pooled = self.forward(batch, token_table=table)
                outputs.append(pooled.data.astype(np.float32))
        if was_training:
            self.train()
        return np.concatenate(outputs, axis=0)

    @classmethod
    def from_dataset(
        cls,
        dataset: TrajectoryDataset,
        config: StartConfig | None = None,
        node2vec_embeddings: np.ndarray | None = None,
    ) -> "STARTModel":
        """Convenience constructor: derives the transfer matrix from the training split."""
        transfer = transfer_probability_matrix(dataset.network, dataset.train_trajectories())
        return cls(
            dataset.network,
            config=config,
            transfer_probability=transfer,
            node2vec_embeddings=node2vec_embeddings,
        )
