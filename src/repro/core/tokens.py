"""Token-id conventions shared by the trajectory encoders.

Road ids from the road network are shifted by :data:`NUM_SPECIAL_TOKENS` so
that the first ids are reserved for the special tokens the paper uses:

* ``[PAD]`` — padding of short trajectories inside a batch;
* ``[CLS]`` — the placeholder inserted at position 0 whose final hidden state
  is the trajectory representation (Section III-B3);
* ``[MASK]`` — the mask token of span-masked trajectory recovery.

Temporal indices have their own specials: minute indices are 1..1440 and
day-of-week indices 1..7 (both 1-based as in the paper), with 0 used for
padding and a dedicated ``[MASKT]`` id appended after the valid range.
"""

from __future__ import annotations

PAD_TOKEN = 0
CLS_TOKEN = 1
MASK_TOKEN = 2
NUM_SPECIAL_TOKENS = 3

#: Label id used for positions that do not contribute to the masked-recovery loss.
IGNORE_LABEL = -100

# Minute-of-day vocabulary: 0 = PAD, 1..1440 = minutes, 1441 = [MASKT].
MINUTE_PAD = 0
MINUTE_MASK = 1441
MINUTE_VOCAB = 1442

# Day-of-week vocabulary: 0 = PAD, 1..7 = Monday..Sunday, 8 = [MASKT].
DAY_PAD = 0
DAY_MASK = 8
DAY_VOCAB = 9


def road_to_token(road_id: int) -> int:
    """Map a road id to its token id."""
    return road_id + NUM_SPECIAL_TOKENS


def token_to_road(token_id: int) -> int:
    """Map a token id back to a road id (negative for special tokens)."""
    return token_id - NUM_SPECIAL_TOKENS


def vocabulary_size(num_roads: int) -> int:
    """Size of the token vocabulary for a network with ``num_roads`` roads."""
    return num_roads + NUM_SPECIAL_TOKENS
