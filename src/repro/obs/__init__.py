"""Observability for the serving stack: metrics, SLO snapshots, monitoring.

Public surface:

* :class:`~repro.obs.metrics.MetricsRegistry` — thread-safe named-metric
  namespace: :class:`~repro.obs.metrics.Counter`,
  :class:`~repro.obs.metrics.Gauge`, fixed-bucket
  :class:`~repro.obs.metrics.Histogram`, plain or labeled
  (:class:`~repro.obs.metrics.MetricFamily` keyed by frozen label tuples),
  with a deterministic versioned :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
* :data:`~repro.obs.metrics.NULL_REGISTRY` /
  :class:`~repro.obs.metrics.NullRegistry` — the disabled default every
  instrumented constructor falls back to (no-op instruments, zero cost).
* :class:`~repro.obs.monitor.SystemMonitor` — optional background CPU/RSS
  sampling through an injectable sampler and clock.
* :func:`~repro.obs.metrics.dump_metrics` — atomic JSON snapshot writer;
  :func:`~repro.obs.metrics.format_snapshot` — human-readable rendering.

Nothing in this package reads a wall clock on a record path: durations are
measured by callers against the injectable :mod:`repro.utils.clock` and
handed in, which is what keeps every instrumented layer drivable by the
deterministic test-kits.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    dump_metrics,
    format_snapshot,
)
from repro.obs.monitor import DEFAULT_SAMPLE_INTERVAL, SystemMonitor, default_process_sampler

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SAMPLE_INTERVAL",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_VERSION",
    "SystemMonitor",
    "default_process_sampler",
    "dump_metrics",
    "format_snapshot",
]
