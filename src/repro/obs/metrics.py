"""Thread-safe, dependency-free metrics: counters, gauges, histograms.

A server nobody can watch cannot claim production scale.  This module is
the measurement substrate of the serving stack: a :class:`MetricsRegistry`
that owns named metric families (plain or labeled), three instrument kinds
(:class:`Counter`, :class:`Gauge`, fixed-bucket :class:`Histogram`), a
deterministic :meth:`MetricsRegistry.snapshot` with a versioned schema, and
an atomic :func:`dump_metrics` JSON writer.

Design rules, all load-bearing:

* **No wall-clock reads in record paths.**  Instruments record what callers
  hand them; durations are measured by the caller against the injectable
  :class:`repro.utils.clock.Clock` it already owns.  That keeps every
  record path drivable by a :class:`~repro.utils.clock.VirtualClock` and
  keeps this module out of the determinism lint's wall-clock business.
* **Explicit histogram buckets.**  Bounds are fixed at registration, so two
  snapshots of the same traffic are structurally identical — the perf
  trajectory (``BENCH_*.json``) can be diffed across PRs without bucket
  drift.  A value lands in the first bucket whose upper bound it does not
  exceed (``value <= bound``); values above the last bound land in the
  overflow count.
* **Frozen label keys.**  A labeled family keys its children by the tuple
  of label *values* in label-name order; the tuple is the identity, so the
  same labels always return the same child object — instrument handles can
  be resolved once at construction time and shared freely across threads.
* **Every mutation under a lock.**  Instruments carry their own
  :class:`threading.Lock`; the registry and families lock their structure
  maps.  The race lint (``race-*``) covers this package.
* **One branch when disabled.**  :data:`NULL_REGISTRY` hands out no-op
  instruments whose record methods are ``pass``; code paths that must pay
  nothing extra gate their timing reads on :attr:`MetricsRegistry.enabled`.
"""

from __future__ import annotations

import json
import math
import os
import threading
from pathlib import Path
from typing import Mapping, Sequence

#: Bump when the snapshot layout changes; consumers refuse newer schemas.
SNAPSHOT_SCHEMA_VERSION = 1

#: Schema identifier embedded in every snapshot.
SNAPSHOT_SCHEMA = "repro.obs/v1"

#: Default latency buckets (seconds): 100us to 10s, roughly 1-2.5-5 spaced.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default size buckets (counts): powers of two up to 4096.
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0)


class Counter:
    """A monotonically increasing total (queries served, bytes read, ...)."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only ever go up)."""
        if amount < 0:
            raise ValueError("counters cannot decrease; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _series(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, ingest lag, RSS, ...).

    Alongside the current value the gauge tracks its **peak** (the largest
    value ever set), so an SLO snapshot taken after a burst has drained
    still shows how deep the burst got.
    """

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._peak = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if self._value > self._peak:
                self._peak = self._value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._peak:
                self._peak = self._value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def peak(self) -> float:
        with self._lock:
            return self._peak

    def _series(self) -> dict:
        with self._lock:
            return {"value": self._value, "peak": self._peak}


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``bounds`` are the explicit, strictly increasing upper bucket bounds
    fixed at registration; an observation lands in the first bucket whose
    bound it does not exceed, or in the overflow count when it exceeds the
    last bound.  Exact-bound observations belong to their bound's bucket
    (``value <= bound``).
    """

    kind = "histogram"

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (overflow is implicit)")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)
        self._overflow = 0
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = self._bucket_index(value)
        with self._lock:
            if index is None:
                self._overflow += 1
            else:
                self._counts[index] += 1
            self._count += 1
            self._sum += value

    def _bucket_index(self, value: float) -> int | None:
        """First bucket whose bound ``value`` does not exceed (binary search)."""
        bounds = self.bounds
        if value > bounds[-1]:
            return None
        lo, hi = 0, len(bounds) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``0 <= q <= 1``).

        Walks the cumulative counts to the bucket holding the ``q``-th
        observation and interpolates linearly inside it (the first bucket
        interpolates from 0, the overflow bucket reports the last bound —
        there is no upper edge to interpolate toward).  An estimate, not an
        order statistic: its resolution is the bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total
            cumulative = 0
            for bound, count in zip(self.bounds, self._counts):
                previous = cumulative
                cumulative += count
                if cumulative >= rank and count:
                    lower = 0.0 if bound == self.bounds[0] else self.bounds[self._bucket_below(bound)]
                    fraction = (rank - previous) / count
                    return lower + fraction * (bound - lower)
            return self.bounds[-1]

    def _bucket_below(self, bound: float) -> int:
        return self.bounds.index(bound) - 1

    def _series(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "bucket_counts": list(self._counts),
                "overflow": self._overflow,
            }


#: Instrument classes by kind name (used by the registry's family factory).
_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric: label names plus a child instrument per label tuple.

    Children are keyed by the frozen tuple of label *values* in label-name
    order and created on first use; :meth:`labels` with the same values
    always returns the same child object, so handles can be resolved once
    and cached.  An unlabeled family owns exactly one child, reachable by
    :meth:`labels` with no arguments (the registry's ``counter``/``gauge``/
    ``histogram`` helpers return that child directly).
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(float(b) for b in buckets) if buckets is not None else None
        if kind == "histogram" and self.buckets is None:
            raise ValueError("histogram families need explicit bucket bounds")
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, **label_values: str) -> "Counter | Gauge | Histogram":
        """The child instrument for these label values (created on first use)."""
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"metric '{self.name}' takes labels {list(self.label_names)}, "
                f"got {sorted(label_values)}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self.buckets)
                else:
                    child = _INSTRUMENTS[self.kind]()
                self._children[key] = child
            return child

    def _snapshot(self) -> dict:
        with self._lock:
            children = sorted(self._children.items())
        series = [
            {"labels": dict(zip(self.label_names, key)), **child._series()}
            for key, child in children
        ]
        family: dict = {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "series": series,
        }
        if self.buckets is not None:
            family["buckets"] = list(self.buckets)
        return family


class MetricsRegistry:  # thread: shared
    """The named-metric namespace every instrumented layer reports into.

    Registration is get-or-create: asking for an existing name with the
    same kind, label names and buckets returns the existing family (this is
    what lets replica engines and the runtime share one set of children);
    asking with a conflicting shape raises ``ValueError`` — one name, one
    meaning.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # -- registration -------------------------------------------------- #
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        if not name or not isinstance(name, str):
            raise ValueError("metric name must be a non-empty string")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, label_names, buckets)
                self._families[name] = family
                return family
        requested_buckets = tuple(float(b) for b in buckets) if buckets is not None else None
        if (
            family.kind != kind
            or family.label_names != tuple(label_names)
            or family.buckets != requested_buckets
        ):
            raise ValueError(
                f"metric '{name}' is already registered as a {family.kind} with "
                f"labels {list(family.label_names)} — one name, one meaning"
            )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        """Get-or-create an unlabeled counter."""
        return self._family(name, "counter", help, ()).labels()

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get-or-create an unlabeled gauge."""
        return self._family(name, "gauge", help, ()).labels()

    def histogram(
        self, name: str, help: str = "", *, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        """Get-or-create an unlabeled fixed-bucket histogram."""
        return self._family(name, "histogram", help, (), buckets).labels()

    def counter_family(self, name: str, help: str = "", *, labels: Sequence[str]) -> MetricFamily:
        """Get-or-create a labeled counter family."""
        return self._family(name, "counter", help, labels)

    def gauge_family(self, name: str, help: str = "", *, labels: Sequence[str]) -> MetricFamily:
        """Get-or-create a labeled gauge family."""
        return self._family(name, "gauge", help, labels)

    def histogram_family(
        self,
        name: str,
        help: str = "",
        *,
        labels: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        """Get-or-create a labeled fixed-bucket histogram family."""
        return self._family(name, "histogram", help, labels, buckets)

    # -- introspection ------------------------------------------------- #
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def snapshot(self) -> dict:
        """A plain-dict dump of every family, deterministic in structure.

        Metric names are sorted and each family's series are sorted by
        label-value tuple, so two snapshots of the same recorded traffic
        are byte-identical after JSON serialisation.
        """
        with self._lock:
            families = sorted(self._families.items())
        return {
            "schema": SNAPSHOT_SCHEMA,
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "metrics": {name: family._snapshot() for name, family in families},
        }


class _NullInstrument:
    """The do-nothing counter/gauge/histogram handed out when metrics are off.

    Every record method is a ``pass`` and every read reports zero, so
    instrumented code can hold one of these and never branch on enablement
    (except to skip the clock reads that would feed it).
    """

    bounds: tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **label_values: str) -> "_NullInstrument":
        return self

    @property
    def value(self) -> float:
        return 0.0

    @property
    def peak(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    @property
    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0


class NullRegistry:
    """The disabled registry: every lookup returns the shared no-op instrument.

    ``enabled`` is ``False`` so hot paths can skip the clock reads that only
    exist to feed instruments; everything else is safe to call and free.
    """

    enabled = False

    _instrument = _NullInstrument()

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return self._instrument

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return self._instrument

    def histogram(self, name: str, help: str = "", *, buckets=DEFAULT_LATENCY_BUCKETS) -> _NullInstrument:
        return self._instrument

    def counter_family(self, name: str, help: str = "", *, labels=()) -> _NullInstrument:
        return self._instrument

    def gauge_family(self, name: str, help: str = "", *, labels=()) -> _NullInstrument:
        return self._instrument

    def histogram_family(
        self, name: str, help: str = "", *, labels=(), buckets=DEFAULT_LATENCY_BUCKETS
    ) -> _NullInstrument:
        return self._instrument

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "metrics": {},
        }


#: The shared disabled registry: the default for every instrumented constructor.
NULL_REGISTRY = NullRegistry()


def dump_metrics(path: str | Path, snapshot: Mapping) -> Path:
    """Atomically write ``snapshot`` (any JSON-serialisable mapping) to ``path``.

    The same tmp + fsync + ``os.replace`` commit the checkpointer uses: a
    reader (or a crash) never sees a half-written file — ``path`` is either
    wholly old or wholly new.  Returns the path written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def format_snapshot(snapshot: Mapping) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as an aligned text table.

    Counters and gauges print one line per series; histograms print count,
    sum and the estimated p50/p99 recomputed from the bucket counts.  Used
    by ``examples/serving_runtime.py`` to print the shutdown snapshot.
    """
    lines: list[str] = [f"metrics snapshot ({snapshot.get('schema', '?')})"]
    metrics = snapshot.get("metrics", {})
    if not metrics:
        lines.append("  (no metrics recorded)")
    width = max((len(name) for name in metrics), default=0)
    for name in sorted(metrics):
        family = metrics[name]
        for series in family.get("series", []):
            labels = series.get("labels", {})
            label_text = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if family["type"] == "histogram":
                bounds = family.get("buckets", [])
                detail = (
                    f"count={series['count']} sum={series['sum']:.6g} "
                    f"p50~{_series_quantile(bounds, series, 0.5):.6g} "
                    f"p99~{_series_quantile(bounds, series, 0.99):.6g}"
                )
            elif family["type"] == "gauge":
                detail = f"{series['value']:.6g} (peak {series['peak']:.6g})"
            else:
                detail = f"{series['value']:.6g}"
            lines.append(f"  {name:<{width}} {label_text:<24} {detail}")
    if "slo" in snapshot:
        lines.append("  --- slo ---")
        for key in sorted(snapshot["slo"]):
            value = snapshot["slo"][key]
            text = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"  {key:<{width}} {'':<24} {text}")
    return "\n".join(lines)


def _series_quantile(bounds: Sequence[float], series: Mapping, q: float) -> float:
    """Quantile estimate from a snapshot histogram series (same math as live)."""
    histogram = Histogram(bounds) if bounds else None
    if histogram is None:
        return 0.0
    histogram._counts = list(series.get("bucket_counts", [0] * len(bounds)))
    histogram._overflow = int(series.get("overflow", 0))
    histogram._count = int(series.get("count", 0))
    histogram._sum = float(series.get("sum", 0.0))
    return histogram.quantile(q)
