"""Optional process sampling: CPU seconds and RSS bytes into the registry.

:class:`SystemMonitor` runs one daemon thread that samples a process-level
*sampler* every ``interval`` clock seconds and publishes the readings as
gauges.  Two injection points keep it deterministic and dependency-free:

* the **sampler** is any callable returning ``(cpu_seconds, rss_bytes)``;
  the default reads :func:`resource.getrusage` (stdlib, no psutil);
* the **clock** is a :class:`repro.utils.clock.Clock` — under a
  :class:`~repro.utils.clock.VirtualClock` the thread wakes exactly when a
  test advances virtual time, so the lifecycle test needs no sleeps.

The monitor takes one sample synchronously in :meth:`start` (so a snapshot
is never empty while the monitor runs) and one thread-loop sample per
interval after that.
"""

from __future__ import annotations

import resource
import sys
import threading
from typing import Callable

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.utils.clock import Clock, SystemClock

#: Default sampling cadence (clock seconds).
DEFAULT_SAMPLE_INTERVAL = 1.0


def default_process_sampler() -> tuple[float, float]:
    """``(cpu_seconds, rss_bytes)`` of this process, from stdlib ``resource``.

    CPU is user + system time; RSS is ``ru_maxrss`` — the *peak* resident
    set, which is what the stdlib can report portably (kilobytes on Linux,
    bytes on macOS).
    """
    usage = resource.getrusage(resource.RUSAGE_SELF)
    cpu_seconds = usage.ru_utime + usage.ru_stime
    scale = 1 if sys.platform == "darwin" else 1024
    return cpu_seconds, float(usage.ru_maxrss * scale)


class SystemMonitor:  # thread: shared
    """Background CPU/RSS sampling into three process-level metrics.

    Publishes ``process_cpu_seconds`` (gauge: cumulative CPU time at the
    last sample), ``process_rss_bytes`` (gauge: resident set at the last
    sample) and ``process_samples_total`` (counter).  Use as a context
    manager, or call :meth:`start` / :meth:`stop` explicitly; both are
    idempotent.
    """

    def __init__(
        self,
        registry: "MetricsRegistry | NullRegistry",
        *,
        interval: float = DEFAULT_SAMPLE_INTERVAL,
        sampler: Callable[[], tuple[float, float]] | None = None,
        clock: Clock | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = float(interval)
        self._sampler = sampler if sampler is not None else default_process_sampler
        self._clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._stop = self._clock.make_event()
        self._thread: threading.Thread | None = None
        self._cpu = registry.gauge(
            "process_cpu_seconds", "cumulative process CPU (user+system) at last sample"
        )
        self._rss = registry.gauge("process_rss_bytes", "resident set size at last sample")
        self._samples = registry.counter("process_samples_total", "monitor samples taken")

    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None

    def sample_once(self) -> tuple[float, float]:
        """Take one sample on the calling thread; returns ``(cpu, rss)``."""
        cpu_seconds, rss_bytes = self._sampler()
        self._cpu.set(cpu_seconds)
        self._rss.set(rss_bytes)
        self._samples.inc()
        return cpu_seconds, rss_bytes

    def start(self) -> "SystemMonitor":
        """Sample once, then start the periodic sampler thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            thread = threading.Thread(
                target=self._run, name="repro-obs-monitor", daemon=True
            )
            self._thread = thread
        self.sample_once()
        thread.start()
        return self

    def stop(self) -> None:
        """Stop and join the sampler thread (idempotent)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join()

    def __enter__(self) -> "SystemMonitor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _run(self) -> None:
        while True:
            if self._clock.wait(self._stop, timeout=self.interval):
                return
            self.sample_once()
