"""A reverse-mode automatic differentiation tensor built on NumPy.

This module is the substrate that replaces PyTorch in this reproduction.
It implements the subset of autograd needed by the START model and all
baselines: broadcasting arithmetic, (batched) matrix multiplication,
reductions, indexing/embedding lookups, concatenation, element-wise
non-linearities and numerically-stable softmax / log-softmax.

Design notes
------------
* ``Tensor`` wraps a ``numpy.ndarray`` (float32 by default) plus an optional
  gradient buffer and a closure that propagates gradients to its parents.
* The graph is built eagerly.  ``Tensor.backward()`` performs a topological
  sort and runs the stored backward closures in reverse order.
* Broadcasting in the forward pass is undone in the backward pass by
  :func:`unbroadcast`, which sums gradient entries over broadcast axes.
* Gradients are accumulated (``+=``), matching PyTorch semantics, so
  parameters that appear several times in a graph receive the full gradient.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float32

_grad_enabled = True


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad)."""

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._previous = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for autodiff."""
    return _grad_enabled


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it has ``shape``.

    NumPy broadcasting can add leading axes and stretch length-1 axes; the
    gradient of a broadcast input is the sum over every axis that was
    expanded.
    """
    if grad.shape == shape:
        return grad
    # Remove extra leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape but expanded.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _is_basic_index(index) -> bool:
    """True when ``index`` uses only basic indexing (no integer/bool arrays).

    Basic indexing never selects the same element twice, which lets the
    gradient scatter use a plain ``+=`` instead of ``np.add.at``.
    """
    items = index if isinstance(index, tuple) else (index,)
    return all(
        item is None or item is Ellipsis or isinstance(item, (int, np.integer, slice))
        for item in items
    )


def _as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, (np.ndarray, np.generic)):
        # Preserve explicit floating dtypes (float64 is used by the
        # finite-difference gradient checks); cast everything else.
        value = np.asarray(value)
        if value.dtype in (np.float32, np.float64):
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A NumPy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless an ndarray with a
        floating dtype is given.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = _backward
        self._parents = _parents if self.requires_grad or _parents else ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result node, recording the graph only when needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the objective with respect to this tensor.  Defaults
            to ones, which is only meaningful for scalar outputs (losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad * other.data, self.shape))
            other._accumulate(unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.expand_dims(grad, -1) * other.data
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, grad)
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(unbroadcast(grad_other, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Element-wise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return Tensor._make(out_data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        mask = self.data > 0
        exp_part = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        out_data = np.where(mask, self.data, exp_part)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, exp_part + alpha))

        return Tensor._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        c = np.sqrt(2.0 / np.pi).astype(self.data.dtype)
        inner = c * (self.data + 0.044715 * self.data**3)
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * self.data * (1.0 + tanh_inner)

        def backward(grad: np.ndarray) -> None:
            sech2 = 1.0 - tanh_inner**2
            d_inner = c * (1.0 + 3 * 0.044715 * self.data**2)
            local = 0.5 * (1.0 + tanh_inner) + 0.5 * self.data * sech2 * d_inner
            self._accumulate(grad * local)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_full = grad
            if axis is not None and not keepdims:
                grad_full = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad_full, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        if eps:
            out = out + eps
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_full = grad
            out_full = out_data
            if axis is not None and not keepdims:
                grad_full = np.expand_dims(grad, axis=axis)
                out_full = np.expand_dims(out_data, axis=axis)
            mask = (self.data == out_full).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad_full)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.expand_dims(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        basic = _is_basic_index(index)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            if basic:
                # Basic (slice/int) indexing selects each element at most
                # once, so a direct in-place add is safe and avoids the much
                # slower element-wise ``np.add.at`` scatter.
                full[index] += grad
            else:
                np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def flip(self, axis: int) -> "Tensor":
        """Reverse along ``axis`` (a strided view forward, one copy backward)."""
        out_data = np.flip(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.flip(grad, axis=axis))

        return Tensor._make(np.ascontiguousarray(out_data), (self,), backward)

    # ------------------------------------------------------------------ #
    # Softmax family (numerically stable, fused backward)
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - logsumexp
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> "Tensor":
        # Unseeded fallback on purpose: ad-hoc tensors for callers that did
        # not ask for reproducibility; training paths always pass an rng.
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow[det-global-rng]
        return Tensor(rng.standard_normal(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad)


# ---------------------------------------------------------------------- #
# Free functions on tensors
# ---------------------------------------------------------------------- #
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each part."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Element-wise select: ``condition`` is a boolean ndarray (not differentiated)."""
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad * condition, a.shape))
        b._accumulate(unbroadcast(grad * (~condition), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` (the embedding matrix) for integer ``indices``.

    Gradients are scattered back with ``np.add.at`` so repeated indices
    accumulate correctly.
    """
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.shape[-1]))
        weight._accumulate(full)

    return Tensor._make(out_data, (weight,), backward)


def take_rows(tensor: Tensor, rows: np.ndarray) -> Tensor:
    """Select *unique* rows of a 2-D tensor.

    The caller guarantees ``rows`` has no repeated index (e.g. the output of
    ``np.where`` on a boolean row mask), which lets the backward pass use a
    direct fancy-index assignment instead of the much slower element-wise
    ``np.add.at`` scatter.
    """
    rows = np.asarray(rows, dtype=np.int64)
    out_data = tensor.data[rows]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(tensor.data)
        full[rows] = grad
        tensor._accumulate(full)

    return Tensor._make(out_data, (tensor,), backward)


def gather_rows(tensor: Tensor, indices: np.ndarray, scatter_matrix: np.ndarray | None) -> Tensor:
    """Row gather with (possibly repeated) ``indices`` and a matmul backward.

    ``scatter_matrix`` is the constant one-hot ``(num_rows, len(indices))``
    matrix with ``scatter_matrix[indices[e], e] = 1``; the gradient of the
    gather is ``scatter_matrix @ grad``, a BLAS GEMM instead of an
    ``np.add.at`` scatter.  Used by the TPE-GAT edge gathers, whose scatter
    structure is fixed per graph.  Pass ``None`` (graphs too large for a
    dense one-hot) to fall back to the ``np.add.at`` scatter — identical
    gradients, no O(rows x indices) memory.
    """
    indices = np.asarray(indices, dtype=np.int64)
    out_data = tensor.data[indices]

    def backward(grad: np.ndarray) -> None:
        if scatter_matrix is not None:
            tensor._accumulate(scatter_matrix @ grad)
        else:
            full = np.zeros_like(tensor.data)
            np.add.at(full, indices, grad)
            tensor._accumulate(full)

    return Tensor._make(out_data, (tensor,), backward)


def masked_fill(tensor: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Set positions where ``mask`` is True to ``value`` (no gradient there)."""
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, np.array(value, dtype=tensor.dtype), tensor.data)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(unbroadcast(grad * (~mask), tensor.shape))

    return Tensor._make(out_data, (tensor,), backward)
