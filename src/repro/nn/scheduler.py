"""Learning-rate schedules.

START uses a linear warm-up over the first five epochs followed by cosine
annealing; :class:`WarmupCosineSchedule` reproduces that behaviour.  Simpler
schedules are included for baseline defaults and ablations.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class Scheduler:
    """Base class: scales the optimizer's learning rate per epoch/step."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_step = -1

    def get_lr(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one unit (epoch or iteration, caller's choice) and apply."""
        self.last_step += 1
        lr = self.get_lr(self.last_step)
        self.optimizer.lr = lr
        return lr


class ConstantSchedule(Scheduler):
    """Keep the base learning rate."""

    def get_lr(self, step: int) -> float:
        return self.base_lr


class StepDecaySchedule(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` units."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        return self.base_lr * (self.gamma ** (step // self.step_size))


class WarmupCosineSchedule(Scheduler):
    """Linear warm-up to ``base_lr`` then cosine annealing to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def get_lr(self, step: int) -> float:
        if step < self.warmup_steps:
            # Linear ramp from base_lr / warmup_steps up to base_lr.
            return self.base_lr * (step + 1) / max(self.warmup_steps, 1)
        progress = (step - self.warmup_steps) / max(self.total_steps - self.warmup_steps, 1)
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
