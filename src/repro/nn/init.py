"""Weight initialisation schemes used across the library."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import DEFAULT_DTYPE


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Fan-in/fan-out are taken from the trailing two dimensions, which matches
    the convention used for linear layers and attention projections.
    """
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, nonlinearity: str = "relu") -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU-family activations."""
    fan_in = shape[-2] if len(shape) >= 2 else shape[0]
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    limit = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Small-variance normal initialisation (used for embedding tables)."""
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, layer-norm shifts)."""
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (layer-norm scales)."""
    return np.ones(shape, dtype=DEFAULT_DTYPE)
