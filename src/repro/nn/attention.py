"""Multi-head self-attention with optional additive attention bias.

The additive-bias hook is what the START model uses to inject its adaptive
time-interval matrix (Equation 7 of the paper): the bias is added to the
scaled dot-product scores *before* the softmax.  The same layer with a zero
bias is the standard Transformer attention used by the baselines.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dropout, FeedForward, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, masked_fill
from repro.utils.seeding import get_rng

_NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention over ``(batch, seq, d_model)``."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} is not divisible by num_heads={num_heads}")
        rng = rng if rng is not None else get_rng()
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.query_proj = Linear(d_model, d_model, rng=rng)
        self.key_proj = Linear(d_model, d_model, rng=rng)
        self.value_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(batch, seq, d_model) -> (batch, heads, seq, d_head)."""
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(
        self,
        x: Tensor,
        attention_bias: Tensor | None = None,
        key_padding_mask: np.ndarray | None = None,
        return_weights: bool = False,
    ):
        """Apply self-attention.

        Parameters
        ----------
        x:
            Input of shape ``(batch, seq, d_model)``.
        attention_bias:
            Optional tensor broadcastable to ``(batch, heads, seq, seq)`` added
            to the attention scores before the softmax (the time-interval
            matrix in START).
        key_padding_mask:
            Boolean ndarray ``(batch, seq)`` where ``True`` marks padding
            positions that must not be attended to.
        return_weights:
            If True also return the attention weights (averaged over heads).
        """
        batch, seq, _ = x.shape
        query = self._split_heads(self.query_proj(x), batch, seq)
        key = self._split_heads(self.key_proj(x), batch, seq)
        value = self._split_heads(self.value_proj(x), batch, seq)

        scores = (query @ key.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.d_head))
        if attention_bias is not None:
            scores = scores + attention_bias
        if key_padding_mask is not None:
            mask = np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
            mask = np.broadcast_to(mask, (batch, self.num_heads, seq, seq))
            scores = masked_fill(scores, mask, _NEG_INF)

        weights = scores.softmax(axis=-1)
        weights = self.dropout(weights)
        context = weights @ value
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        output = self.out_proj(context)
        if return_weights:
            return output, weights.mean(axis=1)
        return output


class TransformerEncoderLayer(Module):
    """Post-norm Transformer encoder layer (attention + FFN, residuals)."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_hidden: int | None = None,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        d_hidden = d_hidden if d_hidden is not None else 4 * d_model
        self.attention = MultiHeadSelfAttention(d_model, num_heads, dropout, rng=rng)
        self.feed_forward = FeedForward(d_model, d_hidden, dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        attention_bias: Tensor | None = None,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        attended = self.attention(x, attention_bias=attention_bias, key_padding_mask=key_padding_mask)
        x = self.norm1(x + self.dropout(attended))
        transformed = self.feed_forward(x)
        x = self.norm2(x + self.dropout(transformed))
        return x


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer`."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        num_layers: int,
        d_hidden: int | None = None,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        from repro.nn.module import ModuleList

        self.layers = ModuleList(
            [
                TransformerEncoderLayer(d_model, num_heads, d_hidden, dropout, rng=rng)
                for _ in range(num_layers)
            ]
        )

    def forward(
        self,
        x: Tensor,
        attention_bias: Tensor | None = None,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, attention_bias=attention_bias, key_padding_mask=key_padding_mask)
        return x
