"""Multi-head self-attention with optional additive attention bias.

The additive-bias hook is what the START model uses to inject its adaptive
time-interval matrix (Equation 7 of the paper): the bias is added to the
scaled dot-product scores *before* the softmax.  The same layer with a zero
bias is the standard Transformer attention used by the baselines.

Hot-path notes
--------------
The Q/K/V projections are packed into a single ``(d, 3d)`` parameter so the
projection of a batch is one GEMM instead of three, and the query is scaled
*before* the score GEMM so no ``(B, heads, L, L)`` score copy is needed for
the scaling.  Under ``no_grad()`` in eval mode the layer (and the encoder
layer around it) dispatches to the pure-NumPy kernels in
:mod:`repro.nn.kernels`, which allocate no autograd machinery at all.
"""

from __future__ import annotations

import numpy as np

from repro.nn import kernels
from repro.nn.init import xavier_uniform, zeros
from repro.nn.layers import Dropout, FeedForward, LayerNorm, Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, is_grad_enabled, masked_fill
from repro.utils.seeding import get_rng

_NEG_INF = kernels.NEG_INF


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention over ``(batch, seq, d_model)``."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} is not divisible by num_heads={num_heads}")
        rng = rng if rng is not None else get_rng()
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        # One packed parameter for Q, K and V.  Drawing three (d, d) Xavier
        # matrices keeps the per-projection fan-in/fan-out (and the RNG
        # stream) identical to three separate Linear layers.
        packed = np.concatenate(
            [xavier_uniform((d_model, d_model), rng) for _ in range(3)], axis=1
        )
        self.qkv_weight = Parameter(packed)
        self.qkv_bias = Parameter(zeros((3 * d_model,)))
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _fast_path(self) -> bool:
        return not is_grad_enabled() and not self.training

    def forward(
        self,
        x: Tensor,
        attention_bias: Tensor | None = None,
        key_padding_mask: np.ndarray | None = None,
        return_weights: bool = False,
    ):
        """Apply self-attention.

        Parameters
        ----------
        x:
            Input of shape ``(batch, seq, d_model)``.
        attention_bias:
            Optional tensor broadcastable to ``(batch, heads, seq, seq)`` added
            to the attention scores before the softmax (the time-interval
            matrix in START).
        key_padding_mask:
            Boolean ndarray ``(batch, seq)`` where ``True`` marks padding
            positions that must not be attended to.
        return_weights:
            If True also return the attention weights (averaged over heads).
        """
        if self._fast_path():
            bias = attention_bias.data if isinstance(attention_bias, Tensor) else attention_bias
            result = kernels.fused_attention(
                x.data,
                self.qkv_weight.data,
                self.qkv_bias.data,
                self.out_proj.weight.data,
                self.out_proj.bias.data,
                self.num_heads,
                attention_bias=bias,
                key_padding_mask=key_padding_mask,
                return_weights=return_weights,
            )
            if return_weights:
                output, weights = result
                return Tensor(output), Tensor(weights)
            return Tensor(result)

        batch, seq, _ = x.shape
        qkv = x @ self.qkv_weight + self.qkv_bias  # (B, L, 3d)
        qkv = qkv.reshape(batch, seq, 3, self.num_heads, self.d_head)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, heads, L, d_head)
        query = qkv[0] * (1.0 / np.sqrt(self.d_head))
        key = qkv[1]
        value = qkv[2]

        scores = query @ key.transpose(0, 1, 3, 2)
        if attention_bias is not None:
            scores = scores + attention_bias
        if key_padding_mask is not None:
            mask = np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
            mask = np.broadcast_to(mask, (batch, self.num_heads, seq, seq))
            scores = masked_fill(scores, mask, _NEG_INF)

        weights = scores.softmax(axis=-1)
        weights = self.dropout(weights)
        context = weights @ value
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        output = self.out_proj(context)
        if return_weights:
            return output, weights.mean(axis=1)
        return output


class TransformerEncoderLayer(Module):
    """Post-norm Transformer encoder layer (attention + FFN, residuals)."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_hidden: int | None = None,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        d_hidden = d_hidden if d_hidden is not None else 4 * d_model
        self.attention = MultiHeadSelfAttention(d_model, num_heads, dropout, rng=rng)
        self.feed_forward = FeedForward(d_model, d_hidden, dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        attention_bias: Tensor | None = None,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        if not is_grad_enabled() and not self.training:
            # The attention module dispatches to its own fused kernel under
            # the same gating; only the norm/FFN halves are inlined here.
            attended = self.attention(
                x, attention_bias=attention_bias, key_padding_mask=key_padding_mask
            )
            hidden = kernels.layer_norm(
                x.data + attended.data, self.norm1.gamma.data, self.norm1.beta.data, self.norm1.eps
            )
            transformed = kernels.feed_forward(
                hidden,
                self.feed_forward.linear1.weight.data,
                self.feed_forward.linear1.bias.data,
                self.feed_forward.linear2.weight.data,
                self.feed_forward.linear2.bias.data,
            )
            return Tensor(
                kernels.layer_norm(
                    hidden + transformed, self.norm2.gamma.data, self.norm2.beta.data, self.norm2.eps
                )
            )

        attended = self.attention(x, attention_bias=attention_bias, key_padding_mask=key_padding_mask)
        x = self.norm1(x + self.dropout(attended))
        transformed = self.feed_forward(x)
        x = self.norm2(x + self.dropout(transformed))
        return x


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer`."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        num_layers: int,
        d_hidden: int | None = None,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        from repro.nn.module import ModuleList

        self.layers = ModuleList(
            [
                TransformerEncoderLayer(d_model, num_heads, d_hidden, dropout, rng=rng)
                for _ in range(num_layers)
            ]
        )

    def forward(
        self,
        x: Tensor,
        attention_bias: Tensor | None = None,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, attention_bias=attention_bias, key_padding_mask=key_padding_mask)
        return x
