"""Mini-batching utilities for variable-length sequences.

The trajectory encoders all consume padded ``(batch, seq)`` integer arrays
plus a key-padding mask; :func:`pad_sequences` and :class:`BatchIterator`
provide that plumbing.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.utils.seeding import get_rng


def pad_sequences(
    sequences: Sequence[Sequence[int]],
    pad_value: int = 0,
    max_len: int | None = None,
    dtype=np.int64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad a list of integer sequences to a rectangle.

    Returns
    -------
    padded:
        ``(batch, max_len)`` array filled with ``pad_value`` beyond each
        sequence's length.
    lengths:
        ``(batch,)`` true lengths (possibly truncated to ``max_len``).
    padding_mask:
        Boolean ``(batch, max_len)`` array, ``True`` where padded.
    """
    lengths = np.array([min(len(s), max_len) if max_len else len(s) for s in sequences], dtype=np.int64)
    width = int(max_len if max_len is not None else (lengths.max() if len(lengths) else 0))
    padded = np.full((len(sequences), width), pad_value, dtype=dtype)
    for row, seq in enumerate(sequences):
        truncated = list(seq)[:width]
        padded[row, : len(truncated)] = truncated
    positions = np.arange(width)[None, :]
    padding_mask = positions >= lengths[:, None]
    return padded, lengths, padding_mask


def pad_float_sequences(
    sequences: Sequence[Sequence[float]],
    pad_value: float = 0.0,
    max_len: int | None = None,
) -> np.ndarray:
    """Pad float sequences (timestamps, speeds) to a rectangle."""
    padded, _, _ = pad_sequences(sequences, pad_value=pad_value, max_len=max_len, dtype=np.float64)
    return padded


class BatchIterator:
    """Iterate over indices of a dataset in (optionally shuffled) mini-batches."""

    def __init__(
        self,
        num_items: int,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.num_items = num_items
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else get_rng()

    def __len__(self) -> int:
        if self.drop_last:
            return self.num_items // self.batch_size
        return (self.num_items + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[np.ndarray]:
        order = np.arange(self.num_items)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, self.num_items, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield batch


def length_bucketed_indices(lengths: Sequence[int], batch_size: int) -> Iterator[np.ndarray]:
    """Yield index batches over the length-sorted order (stable argsort).

    Padding work in the encoders grows with the longest member of a batch,
    so batching length-neighbours keeps short sequences out of wide batches.
    The sort is stable, so equal-length items keep their relative order;
    callers scatter results back through the yielded index arrays
    (``EmbeddingStore.build`` and the fine-tuning ``predict`` sweeps share
    this helper).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = np.argsort(np.asarray(lengths, dtype=np.int64), kind="stable")
    for start in range(0, len(order), batch_size):
        yield order[start : start + batch_size]
