"""Pure-NumPy float32 inference kernels for the no-grad fast path.

Training goes through the autograd :class:`~repro.nn.tensor.Tensor`; inference
does not need a graph at all, so the hot modules (attention, GRU/LSTM, the
Transformer encoder layer) dispatch to these kernels automatically when
``repro.nn.tensor.is_grad_enabled()`` is False and the module is in eval mode.
Each kernel operates on raw ``np.ndarray`` weights (the ``.data`` of the
module's parameters), allocates no intermediate ``Tensor`` objects, and fuses
what NumPy lets us fuse:

* attention runs off a single packed ``(d, 3d)`` Q/K/V GEMM and scales the
  query before the score GEMM instead of scaling the score matrix;
* the recurrent kernels hoist the input projection of *all* timesteps into
  one GEMM outside the step loop, so the Python-level loop does only the
  ``(B, H) @ (H, 3H)`` recurrent half;
* ``gather_last`` / ``reverse_within_lengths`` are single fancy-indexing
  expressions instead of per-row Python loops.

The kernel-equivalence tests in ``tests/test_nn_kernels.py`` pin these
implementations to the autograd path (and to the seed per-step reference)
within ``rtol=1e-5``.
"""

from __future__ import annotations

import numpy as np

NEG_INF = -1e9


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None) -> np.ndarray:
    out = x @ weight
    if bias is not None:
        out += bias
    return out


def layer_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    return centered / np.sqrt(variance + eps) * gamma + beta


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def fused_attention(
    x: np.ndarray,
    qkv_weight: np.ndarray,
    qkv_bias: np.ndarray,
    out_weight: np.ndarray,
    out_bias: np.ndarray,
    num_heads: int,
    attention_bias: np.ndarray | None = None,
    key_padding_mask: np.ndarray | None = None,
    return_weights: bool = False,
):
    """Multi-head self-attention with one packed Q/K/V projection.

    ``x`` is ``(B, L, d)``; returns ``(B, L, d)`` (plus head-averaged weights
    when requested).  Mirrors :class:`repro.nn.MultiHeadSelfAttention`.
    """
    batch, seq, d_model = x.shape
    d_head = d_model // num_heads
    qkv = linear(x, qkv_weight, qkv_bias)  # (B, L, 3d)
    qkv = qkv.reshape(batch, seq, 3, num_heads, d_head)
    # (3, B, heads, L, d_head) — one transpose for all of Q/K/V.
    qkv = qkv.transpose(2, 0, 3, 1, 4)
    query, key, value = qkv[0], qkv[1], qkv[2]

    query = query * np.float32(1.0 / np.sqrt(d_head))
    scores = query @ key.transpose(0, 1, 3, 2)  # (B, heads, L, L)
    if attention_bias is not None:
        scores = scores + attention_bias
    if key_padding_mask is not None:
        mask = np.asarray(key_padding_mask, dtype=bool)
        scores = np.where(mask[:, None, None, :], np.float32(NEG_INF), scores)

    weights = softmax(scores, axis=-1)
    context = weights @ value  # (B, heads, L, d_head)
    context = context.transpose(0, 2, 1, 3).reshape(batch, seq, d_model)
    output = linear(context, out_weight, out_bias)
    if return_weights:
        return output, weights.mean(axis=1)
    return output


def feed_forward(
    x: np.ndarray,
    weight1: np.ndarray,
    bias1: np.ndarray,
    weight2: np.ndarray,
    bias2: np.ndarray,
) -> np.ndarray:
    hidden = linear(x, weight1, bias1)
    np.maximum(hidden, 0.0, out=hidden)
    return linear(hidden, weight2, bias2)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    np.negative(x, out=out)
    np.exp(out, out=out)
    out += 1.0
    np.reciprocal(out, out=out)
    return out


def gru_sequence(
    x: np.ndarray,
    weight_ih: np.ndarray,
    bias_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias_hh: np.ndarray,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """All hidden states ``(B, L, H)`` of a full GRU sweep.

    The input half of the gates for every timestep is one ``(B*L, in)`` GEMM;
    the loop carries only the ``(B, H) @ (H, 3H)`` recurrent half.
    """
    batch, seq_len, _ = x.shape
    hidden_size = weight_hh.shape[0]
    gates_x = (x.reshape(batch * seq_len, -1) @ weight_ih + bias_ih).reshape(
        batch, seq_len, 3 * hidden_size
    )
    hidden = (
        initial.astype(np.float32, copy=True)
        if initial is not None
        else np.zeros((batch, hidden_size), dtype=np.float32)
    )
    outputs = np.empty((batch, seq_len, hidden_size), dtype=np.float32)
    h = hidden_size
    for step in range(seq_len):
        gx = gates_x[:, step, :]
        gh = hidden @ weight_hh + bias_hh
        reset = _sigmoid(gx[:, :h] + gh[:, :h])
        update = _sigmoid(gx[:, h : 2 * h] + gh[:, h : 2 * h])
        candidate = np.tanh(gx[:, 2 * h :] + reset * gh[:, 2 * h :])
        hidden = update * hidden + (1.0 - update) * candidate
        outputs[:, step, :] = hidden
    return outputs


def lstm_sequence(
    x: np.ndarray,
    weight_ih: np.ndarray,
    bias_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias_hh: np.ndarray,
    initial: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """All hidden states ``(B, L, H)`` of a full LSTM sweep (same layout as GRU)."""
    batch, seq_len, _ = x.shape
    hidden_size = weight_hh.shape[0]
    gates_x = (x.reshape(batch * seq_len, -1) @ weight_ih + bias_ih).reshape(
        batch, seq_len, 4 * hidden_size
    )
    if initial is not None:
        hidden = initial[0].astype(np.float32, copy=True)
        cell = initial[1].astype(np.float32, copy=True)
    else:
        hidden = np.zeros((batch, hidden_size), dtype=np.float32)
        cell = np.zeros((batch, hidden_size), dtype=np.float32)
    outputs = np.empty((batch, seq_len, hidden_size), dtype=np.float32)
    h = hidden_size
    for step in range(seq_len):
        gates = gates_x[:, step, :] + hidden @ weight_hh + bias_hh
        input_gate = _sigmoid(gates[:, :h])
        forget_gate = _sigmoid(gates[:, h : 2 * h])
        cell_candidate = np.tanh(gates[:, 2 * h : 3 * h])
        output_gate = _sigmoid(gates[:, 3 * h :])
        cell = forget_gate * cell + input_gate * cell_candidate
        hidden = output_gate * np.tanh(cell)
        outputs[:, step, :] = hidden
    return outputs


def gather_last(all_hidden: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Row ``i``'s hidden state at position ``lengths[i] - 1`` (vectorised)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    last = np.maximum(lengths - 1, 0)
    return all_hidden[np.arange(all_hidden.shape[0]), last]


def reverse_within_lengths_index(lengths: np.ndarray, seq_len: int) -> np.ndarray:
    """Column gather index that reverses each row within its true length.

    ``index[b, t] = lengths[b] - 1 - t`` for ``t < lengths[b]`` and ``t``
    (identity) on padding, so padded positions stay in place.  Applying the
    same index twice is the identity, which is what lets a BiGRU reverse the
    input and un-reverse the backward outputs with one helper.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    positions = np.arange(seq_len, dtype=np.int64)[None, :]
    reversed_cols = lengths[:, None] - 1 - positions
    return np.where(positions < lengths[:, None], reversed_cols, positions)
