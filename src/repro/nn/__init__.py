"""`repro.nn` — the NumPy autodiff / neural-network substrate.

This package replaces PyTorch for the purposes of this reproduction.  It
offers a small but complete toolkit: an autograd :class:`~repro.nn.tensor.Tensor`,
modules and layers, attention and recurrent encoders, losses (including
NT-Xent), optimizers with warm-up + cosine scheduling, checkpointing and
mini-batching helpers.
"""

from repro.nn.tensor import (
    Tensor,
    concatenate,
    embedding_lookup,
    is_grad_enabled,
    masked_fill,
    no_grad,
    stack,
    where,
)
from repro.nn import kernels
from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.layers import (
    Dropout,
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    PositionalEncoding,
)
from repro.nn.attention import (
    MultiHeadSelfAttention,
    TransformerEncoder,
    TransformerEncoderLayer,
)
from repro.nn.rnn import GRU, LSTM, BiGRU, GRUCell, LSTMCell
from repro.nn.loss import (
    binary_cross_entropy_with_logits,
    cosine_similarity_matrix,
    cross_entropy,
    info_nce_loss,
    mae_loss,
    mse_loss,
    nt_xent_loss,
)
from repro.nn.optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from repro.nn.scheduler import (
    ConstantSchedule,
    Scheduler,
    StepDecaySchedule,
    WarmupCosineSchedule,
)
from repro.nn.serialization import load_checkpoint, load_state, save_checkpoint
from repro.nn.data import (
    BatchIterator,
    length_bucketed_indices,
    pad_float_sequences,
    pad_sequences,
)

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "where",
    "masked_fill",
    "embedding_lookup",
    "no_grad",
    "is_grad_enabled",
    "kernels",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "PositionalEncoding",
    "FeedForward",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "GRUCell",
    "LSTMCell",
    "GRU",
    "LSTM",
    "BiGRU",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "mae_loss",
    "nt_xent_loss",
    "info_nce_loss",
    "cosine_similarity_matrix",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "Scheduler",
    "ConstantSchedule",
    "StepDecaySchedule",
    "WarmupCosineSchedule",
    "save_checkpoint",
    "load_checkpoint",
    "load_state",
    "pad_sequences",
    "pad_float_sequences",
    "BatchIterator",
    "length_bucketed_indices",
]
