"""Optimizers: SGD (with momentum), Adam and AdamW, plus gradient clipping.

The paper trains START with AdamW, batch size 64, learning rate 2e-4, a
5-epoch linear warm-up and cosine annealing afterwards; the schedule lives in
:mod:`repro.nn.scheduler`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and a learning rate."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        self.parameters = [p for p in parameters if isinstance(p, Parameter)]
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with (coupled) L2 regularisation."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 2e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr, betas, eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        # Decoupled decay is applied directly to the weights, independent of
        # the adaptive gradient statistics.
        if self.decoupled_weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data -= self.lr * self.decoupled_weight_decay * param.data
        super().step()


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; return the pre-clip norm."""
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad.astype(np.float64) ** 2).sum())
    total_norm = float(np.sqrt(total))
    if total_norm > max_norm and total_norm > 0:
        scale = max_norm / total_norm
        for grad in grads:
            grad *= scale
    return total_norm
