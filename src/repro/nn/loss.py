"""Loss functions: cross-entropy, MSE, and the NT-Xent contrastive loss.

The NT-Xent implementation follows SimCLR / the paper's Equation (14): for a
batch of ``N`` anchors and their ``N`` augmented views, every other sample in
the ``2N``-sized batch acts as a negative.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, concatenate, masked_fill, take_rows


def cross_entropy(
    logits: Tensor, targets: np.ndarray, ignore_index: int | None = None
) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    Positions whose target equals ``ignore_index`` contribute nothing to the
    loss (used for padded / unmasked positions in span-mask recovery).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (N, C), got shape {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("logits and targets disagree on the batch dimension")

    if ignore_index is not None:
        valid = targets != ignore_index
        if not valid.any():
            return (logits * 0.0).sum()
        # np.where yields unique rows, so the selection backward is a direct
        # fancy-index write instead of an np.add.at scatter.
        logits = take_rows(logits, np.where(valid)[0])
        targets = targets[valid]

    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(targets.shape[0]), targets]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically-stable BCE on raw logits; ``targets`` are 0/1 floats."""
    targets = Tensor(np.asarray(targets, dtype=np.float32))
    max_part = logits.relu()
    return (max_part - logits * targets + (1.0 + (-logits.abs()).exp()).log()).mean()


def mse_loss(predictions: Tensor, targets: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    if not isinstance(targets, Tensor):
        targets = Tensor(np.asarray(targets, dtype=np.float32))
    diff = predictions - targets
    return (diff * diff).mean()


def mae_loss(predictions: Tensor, targets: np.ndarray | Tensor) -> Tensor:
    """Mean absolute error (useful as a robust alternative for travel time)."""
    if not isinstance(targets, Tensor):
        targets = Tensor(np.asarray(targets, dtype=np.float32))
    return (predictions - targets).abs().mean()


def cosine_similarity_matrix(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Pairwise cosine similarity between rows of ``a`` (N, d) and ``b`` (M, d)."""
    a_norm = ((a * a).sum(axis=-1, keepdims=True) + eps).sqrt()
    b_norm = ((b * b).sum(axis=-1, keepdims=True) + eps).sqrt()
    return (a / a_norm) @ (b / b_norm).transpose()


def nt_xent_loss(anchor: Tensor, positive: Tensor, temperature: float = 0.05) -> Tensor:
    """Normalized temperature-scaled cross-entropy with in-batch negatives.

    Parameters
    ----------
    anchor, positive:
        ``(N, d)`` representations of the two augmented views of the same
        ``N`` trajectories (row ``i`` of both tensors is a positive pair).
    temperature:
        The ``tau`` hyper-parameter from Equation (14); the paper uses 0.05.
    """
    if anchor.shape != positive.shape:
        raise ValueError("anchor and positive must have the same shape")
    batch = anchor.shape[0]
    if batch < 2:
        raise ValueError("NT-Xent needs at least two samples per batch")

    merged = concatenate([anchor, positive], axis=0)  # (2N, d)
    similarity = cosine_similarity_matrix(merged, merged) * (1.0 / temperature)
    # Mask self-similarity on the diagonal so it never acts as a candidate.
    diagonal = np.eye(2 * batch, dtype=bool)
    similarity = masked_fill(similarity, diagonal, -1e9)

    # Positive for row i is i+N (and for i+N it is i).
    targets = np.concatenate([np.arange(batch) + batch, np.arange(batch)])
    log_probs = similarity.log_softmax(axis=-1)
    picked = log_probs[np.arange(2 * batch), targets]
    return -picked.mean()


def info_nce_loss(query: Tensor, keys: Tensor, positive_index: np.ndarray, temperature: float = 0.07) -> Tensor:
    """InfoNCE against an explicit key set (used by the PIM baseline).

    ``query`` is ``(N, d)``, ``keys`` is ``(M, d)`` and ``positive_index[i]``
    names the row of ``keys`` that is the positive for query ``i``.
    """
    similarity = cosine_similarity_matrix(query, keys) * (1.0 / temperature)
    log_probs = similarity.log_softmax(axis=-1)
    picked = log_probs[np.arange(query.shape[0]), np.asarray(positive_index, dtype=np.int64)]
    return -picked.mean()
