"""Core neural-network layers built on the autodiff tensor.

These layers cover what the START model and all baselines need:
``Linear``, ``Embedding`` (with padding index), ``LayerNorm``, ``Dropout``,
``PositionalEncoding`` and a generic position-wise ``FeedForward`` block.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import DEFAULT_DTYPE, Tensor, embedding_lookup
from repro.utils.seeding import get_rng


class Linear(Module):
    """Affine transform ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    ``padding_idx`` rows are initialised to zero and keep receiving gradient
    updates only through usage, mirroring how the paper's [PAD]/[MASK] tokens
    behave in a standard implementation.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        padding_idx: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.normal((num_embeddings, embedding_dim), rng, std=0.02)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.normalized_shape = normalized_shape
        self.gamma = Parameter(init.ones((normalized_shape,)))
        self.beta = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The paper additionally uses dropout *as a contrastive-learning data
    augmentation* (SimCSE style); that use goes through the same layer with
    ``training=True`` during view generation.
    """

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else get_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(DEFAULT_DTYPE) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class PositionalEncoding(Module):
    """Sinusoidal position encoding from the Transformer paper.

    The table is precomputed up to ``max_len`` and stored as a buffer so it is
    saved/restored with checkpoints but never trained.
    """

    def __init__(self, d_model: int, max_len: int = 512) -> None:
        super().__init__()
        position = np.arange(max_len, dtype=np.float64)[:, None]
        div_term = np.exp(
            np.arange(0, d_model, 2, dtype=np.float64) * (-np.log(10000.0) / d_model)
        )
        table = np.zeros((max_len, d_model), dtype=np.float64)
        table[:, 0::2] = np.sin(position * div_term)
        table[:, 1::2] = np.cos(position * div_term)
        self.register_buffer("table", table.astype(DEFAULT_DTYPE))
        self.d_model = d_model
        self.max_len = max_len

    def forward(self, x: Tensor) -> Tensor:
        """Add position encodings to a ``(batch, seq, d)`` tensor."""
        seq_len = x.shape[-2]
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds max_len {self.max_len}")
        return x + Tensor(self.table[:seq_len])

    def encoding(self, seq_len: int) -> np.ndarray:
        """Return the raw ``(seq_len, d_model)`` encoding matrix."""
        return self.table[:seq_len]


class FeedForward(Module):
    """Position-wise feed-forward network: Linear -> ReLU -> Dropout -> Linear."""

    def __init__(
        self,
        d_model: int,
        d_hidden: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        self.linear1 = Linear(d_model, d_hidden, rng=rng)
        self.linear2 = Linear(d_hidden, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.linear2(self.dropout(self.linear1(x).relu()))
