"""Checkpoint persistence for modules (``.npz`` state dicts).

Keys inside a module state dict may contain dots, which ``numpy.savez`` is
happy to round-trip, so the format is simply one array per parameter/buffer
plus a small JSON metadata blob.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.module import Module

_META_KEY = "__repro_meta__"


def _resolve_checkpoint_path(path: str | Path) -> Path:
    """``np.savez`` appends ``.npz`` when missing; accept both spellings on read."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def save_checkpoint(module: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Serialize ``module.state_dict()`` (plus optional metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    arrays = dict(state)
    meta = dict(metadata or {})
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)
    # np.savez appends .npz when missing; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_checkpoint(module: Module, path: str | Path, strict: bool = True) -> dict:
    """Load a checkpoint produced by :func:`save_checkpoint` into ``module``.

    Returns the metadata dictionary stored alongside the weights.
    """
    path = _resolve_checkpoint_path(path)
    with np.load(path, allow_pickle=False) as archive:
        state = {key: archive[key] for key in archive.files if key != _META_KEY}
        metadata: dict = {}
        if _META_KEY in archive.files:
            metadata = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
    module.load_state_dict(state, strict=strict)
    return metadata


def read_metadata(path: str | Path) -> dict:
    """Read only the metadata blob of a checkpoint (no module required).

    Lets callers inspect what a checkpoint contains (e.g. the model config it
    was trained with) before deciding how to reconstruct the module.
    """
    path = _resolve_checkpoint_path(path)
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive.files:
            return {}
        return json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Load the raw state dict from disk without needing a module instance."""
    path = _resolve_checkpoint_path(path)
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files if key != _META_KEY}
