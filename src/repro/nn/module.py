"""Module/Parameter abstractions mirroring the familiar torch.nn API surface.

A :class:`Module` owns :class:`Parameter` tensors and child modules, exposes
``parameters()`` / ``named_parameters()`` for optimizers, ``train()`` /
``eval()`` for dropout-style layers and ``state_dict()`` /
``load_state_dict()`` for checkpointing and cross-dataset transfer
(Table III of the paper relies on loading a pre-trained encoder into a new
model instance).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable weight of a module."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Store a non-trainable array that should be saved with the model."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Modes and gradients
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for module_name, module in self.named_modules():
            for buf_name, buf in module._buffers.items():
                key = f"{module_name}.{buf_name}" if module_name else buf_name
                state[key] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {}
        for module_name, module in self.named_modules():
            for buf_name in module._buffers:
                key = f"{module_name}.{buf_name}" if module_name else buf_name
                own_buffers[key] = (module, buf_name)

        missing = [k for k in list(own_params) + list(own_buffers) if k not in state]
        unexpected = [k for k in state if k not in own_params and k not in own_buffers]
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for key, value in state.items():
            if key in own_params:
                param = own_params[key]
                if param.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: model {param.data.shape} vs state {value.shape}"
                    )
                param.data = value.astype(param.data.dtype).copy()
            elif key in own_buffers:
                module, buf_name = own_buffers[key]
                module.register_buffer(buf_name, value)

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of sub-modules registered in order."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)


class Sequential(Module):
    """Apply modules one after another."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.add_module(str(len(self._items)), module)
            self._items.append(module)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)
