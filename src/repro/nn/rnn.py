"""Recurrent layers (GRU and LSTM) used by the RNN-family baselines.

traj2vec, t2vec, Trembr and PIM in the paper are built on RNN encoders or
encoder-decoders; this module provides the cells and full-sequence wrappers
they need, including packed-style handling of per-sequence lengths so padded
positions do not contribute to the final hidden state.

Hot-path notes
--------------
The full-sequence wrappers are time-parallel where the recurrence allows it:
``x @ W_ih + b_ih`` for *all* timesteps is hoisted into a single GEMM outside
the step loop (both in the autograd path and in the no-grad NumPy kernels in
:mod:`repro.nn.kernels`), so the Python-level loop only carries the
``(B, H) @ (H, 3H)`` recurrent half.  ``_gather_last`` and ``_reverse_time``
are single fancy-indexing/strided expressions instead of per-row loops, and
:class:`BiGRU` reverses each sequence *within its true length* so the
backward direction never consumes padding first.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init, kernels
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concatenate, is_grad_enabled, stack
from repro.utils.seeding import get_rng


class GRUCell(Module):
    """A single gated recurrent unit step."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng))
        self.weight_hh = Parameter(init.xavier_uniform((hidden_size, 3 * hidden_size), rng))
        self.bias_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((3 * hidden_size,)))

    def step(self, gates_x: Tensor, hidden: Tensor) -> Tensor:
        """One step from precomputed input gates ``x @ W_ih + b_ih``."""
        gates_h = hidden @ self.weight_hh + self.bias_hh
        h = self.hidden_size
        reset = (gates_x[:, :h] + gates_h[:, :h]).sigmoid()
        update = (gates_x[:, h : 2 * h] + gates_h[:, h : 2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h :] + reset * gates_h[:, 2 * h :]).tanh()
        return update * hidden + (1.0 - update) * candidate

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """One step: ``x`` is (batch, input), ``hidden`` is (batch, hidden)."""
        return self.step(x @ self.weight_ih + self.bias_ih, hidden)


class LSTMCell(Module):
    """A single long short-term memory step."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.weight_hh = Parameter(init.xavier_uniform((hidden_size, 4 * hidden_size), rng))
        self.bias_ih = Parameter(init.zeros((4 * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((4 * hidden_size,)))

    def step(self, gates_x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """One step from precomputed input gates ``x @ W_ih + b_ih``."""
        hidden, cell = state
        gates = gates_x + hidden @ self.weight_hh + self.bias_hh
        h = self.hidden_size
        input_gate = gates[:, :h].sigmoid()
        forget_gate = gates[:, h : 2 * h].sigmoid()
        cell_candidate = gates[:, 2 * h : 3 * h].tanh()
        output_gate = gates[:, 3 * h :].sigmoid()
        new_cell = forget_gate * cell + input_gate * cell_candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """One step; ``state`` is ``(hidden, cell)``."""
        return self.step(x @ self.weight_ih + self.bias_ih, state)


class GRU(Module):
    """Full-sequence GRU returning all hidden states and the final state.

    Sequences are processed as ``(batch, seq, input)``.  When ``lengths`` is
    supplied, the "final" hidden state of each sequence is the state at its
    true last step rather than at the padded end.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, lengths: np.ndarray | None = None, initial: Tensor | None = None
    ) -> tuple[Tensor, Tensor]:
        batch, seq_len, _ = x.shape
        if not is_grad_enabled():
            cell = self.cell
            all_np = kernels.gru_sequence(
                x.data,
                cell.weight_ih.data,
                cell.bias_ih.data,
                cell.weight_hh.data,
                cell.bias_hh.data,
                initial=initial.data if initial is not None else None,
            )
            all_hidden = Tensor(all_np)
            if lengths is None:
                return all_hidden, Tensor(all_np[:, -1, :].copy())
            return all_hidden, Tensor(kernels.gather_last(all_np, lengths))

        hidden = initial if initial is not None else Tensor.zeros((batch, self.hidden_size))
        # One GEMM for the input half of every timestep's gates.
        gates_x_all = (
            x.reshape(batch * seq_len, -1) @ self.cell.weight_ih + self.cell.bias_ih
        ).reshape(batch, seq_len, 3 * self.hidden_size)
        outputs: list[Tensor] = []
        for step in range(seq_len):
            hidden = self.cell.step(gates_x_all[:, step, :], hidden)
            outputs.append(hidden)
        all_hidden = stack(outputs, axis=1)
        if lengths is None:
            return all_hidden, hidden
        final = _gather_last(all_hidden, lengths)
        return all_hidden, final


class LSTM(Module):
    """Full-sequence LSTM; the API mirrors :class:`GRU`."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, lengths: np.ndarray | None = None, initial: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, Tensor]:
        batch, seq_len, _ = x.shape
        if not is_grad_enabled():
            cell = self.cell
            all_np = kernels.lstm_sequence(
                x.data,
                cell.weight_ih.data,
                cell.bias_ih.data,
                cell.weight_hh.data,
                cell.bias_hh.data,
                initial=(initial[0].data, initial[1].data) if initial is not None else None,
            )
            all_hidden = Tensor(all_np)
            if lengths is None:
                return all_hidden, Tensor(all_np[:, -1, :].copy())
            return all_hidden, Tensor(kernels.gather_last(all_np, lengths))

        if initial is None:
            hidden = Tensor.zeros((batch, self.hidden_size))
            cell_state = Tensor.zeros((batch, self.hidden_size))
        else:
            hidden, cell_state = initial
        gates_x_all = (
            x.reshape(batch * seq_len, -1) @ self.cell.weight_ih + self.cell.bias_ih
        ).reshape(batch, seq_len, 4 * self.hidden_size)
        outputs: list[Tensor] = []
        for step in range(seq_len):
            hidden, cell_state = self.cell.step(gates_x_all[:, step, :], (hidden, cell_state))
            outputs.append(hidden)
        all_hidden = stack(outputs, axis=1)
        if lengths is None:
            return all_hidden, hidden
        final = _gather_last(all_hidden, lengths)
        return all_hidden, final


def _gather_last(all_hidden: Tensor, lengths: np.ndarray) -> Tensor:
    """Pick the hidden state at position ``length-1`` for each sequence."""
    lengths = np.asarray(lengths, dtype=np.int64)
    last = np.maximum(lengths - 1, 0)
    rows = np.arange(all_hidden.shape[0], dtype=np.int64)
    return all_hidden[rows, last]


class BiGRU(Module):
    """Bidirectional GRU; forward and backward outputs are concatenated.

    With per-sequence ``lengths`` the time reversal happens *within each
    sequence's true length* (padding stays in place), so the backward
    direction consumes real steps first and its final state is the state
    after reading the sequence start — not a function of padding.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.forward_rnn = GRU(input_size, hidden_size, rng=rng)
        self.backward_rnn = GRU(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, lengths: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        forward_out, forward_final = self.forward_rnn(x, lengths)
        if lengths is None:
            reversed_x = _reverse_time(x)
        else:
            reversed_x = _reverse_within_lengths(x, lengths)
        backward_out, backward_final = self.backward_rnn(reversed_x, lengths)
        # Un-reverse so backward_out[:, t] aligns with x[:, t].
        if lengths is None:
            backward_out = _reverse_time(backward_out)
        else:
            backward_out = _reverse_within_lengths(backward_out, lengths)
        outputs = concatenate([forward_out, backward_out], axis=-1)
        final = concatenate([forward_final, backward_final], axis=-1)
        return outputs, final


def _reverse_time(x: Tensor) -> Tensor:
    """Reverse a (batch, seq, d) tensor along the time axis, keeping gradients."""
    return x.flip(1)


def _reverse_within_lengths(x: Tensor, lengths: np.ndarray) -> Tensor:
    """Reverse each row of a (batch, seq, d) tensor within its true length.

    Padding positions keep their place; the map is an involution (applying it
    twice is the identity).
    """
    columns = kernels.reverse_within_lengths_index(lengths, x.shape[1])
    rows = np.arange(x.shape[0], dtype=np.int64)[:, None]
    return x[rows, columns]
