"""Recurrent layers (GRU and LSTM) used by the RNN-family baselines.

traj2vec, t2vec, Trembr and PIM in the paper are built on RNN encoders or
encoder-decoders; this module provides the cells and full-sequence wrappers
they need, including packed-style handling of per-sequence lengths so padded
positions do not contribute to the final hidden state.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concatenate, stack
from repro.utils.seeding import get_rng


class GRUCell(Module):
    """A single gated recurrent unit step."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng))
        self.weight_hh = Parameter(init.xavier_uniform((hidden_size, 3 * hidden_size), rng))
        self.bias_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """One step: ``x`` is (batch, input), ``hidden`` is (batch, hidden)."""
        gates_x = x @ self.weight_ih + self.bias_ih
        gates_h = hidden @ self.weight_hh + self.bias_hh
        h = self.hidden_size
        reset = (gates_x[:, :h] + gates_h[:, :h]).sigmoid()
        update = (gates_x[:, h : 2 * h] + gates_h[:, h : 2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h :] + reset * gates_h[:, 2 * h :]).tanh()
        return update * hidden + (1.0 - update) * candidate


class LSTMCell(Module):
    """A single long short-term memory step."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else get_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.weight_hh = Parameter(init.xavier_uniform((hidden_size, 4 * hidden_size), rng))
        self.bias_ih = Parameter(init.zeros((4 * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((4 * hidden_size,)))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """One step; ``state`` is ``(hidden, cell)``."""
        hidden, cell = state
        gates = x @ self.weight_ih + self.bias_ih + hidden @ self.weight_hh + self.bias_hh
        h = self.hidden_size
        input_gate = gates[:, :h].sigmoid()
        forget_gate = gates[:, h : 2 * h].sigmoid()
        cell_candidate = gates[:, 2 * h : 3 * h].tanh()
        output_gate = gates[:, 3 * h :].sigmoid()
        new_cell = forget_gate * cell + input_gate * cell_candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


class GRU(Module):
    """Full-sequence GRU returning all hidden states and the final state.

    Sequences are processed as ``(batch, seq, input)``.  When ``lengths`` is
    supplied, the "final" hidden state of each sequence is the state at its
    true last step rather than at the padded end.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, lengths: np.ndarray | None = None, initial: Tensor | None = None
    ) -> tuple[Tensor, Tensor]:
        batch, seq_len, _ = x.shape
        hidden = initial if initial is not None else Tensor.zeros((batch, self.hidden_size))
        outputs: list[Tensor] = []
        for step in range(seq_len):
            hidden = self.cell(x[:, step, :], hidden)
            outputs.append(hidden)
        all_hidden = stack(outputs, axis=1)
        if lengths is None:
            return all_hidden, hidden
        final = _gather_last(all_hidden, lengths)
        return all_hidden, final


class LSTM(Module):
    """Full-sequence LSTM; the API mirrors :class:`GRU`."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, lengths: np.ndarray | None = None, initial: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, Tensor]:
        batch, seq_len, _ = x.shape
        if initial is None:
            hidden = Tensor.zeros((batch, self.hidden_size))
            cell = Tensor.zeros((batch, self.hidden_size))
        else:
            hidden, cell = initial
        outputs: list[Tensor] = []
        for step in range(seq_len):
            hidden, cell = self.cell(x[:, step, :], (hidden, cell))
            outputs.append(hidden)
        all_hidden = stack(outputs, axis=1)
        if lengths is None:
            return all_hidden, hidden
        final = _gather_last(all_hidden, lengths)
        return all_hidden, final


def _gather_last(all_hidden: Tensor, lengths: np.ndarray) -> Tensor:
    """Pick the hidden state at position ``length-1`` for each sequence."""
    lengths = np.asarray(lengths, dtype=np.int64)
    batch = all_hidden.shape[0]
    rows = []
    for index in range(batch):
        last = max(int(lengths[index]) - 1, 0)
        rows.append(all_hidden[index, last, :])
    return stack(rows, axis=0)


class BiGRU(Module):
    """Bidirectional GRU; forward and backward outputs are concatenated."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.forward_rnn = GRU(input_size, hidden_size, rng=rng)
        self.backward_rnn = GRU(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, lengths: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        forward_out, forward_final = self.forward_rnn(x, lengths)
        reversed_x = Tensor(x.data[:, ::-1, :].copy(), requires_grad=False) if not x.requires_grad else _reverse_time(x)
        backward_out, backward_final = self.backward_rnn(reversed_x, lengths)
        backward_out = _reverse_time(backward_out)
        outputs = concatenate([forward_out, backward_out], axis=-1)
        final = concatenate([forward_final, backward_final], axis=-1)
        return outputs, final


def _reverse_time(x: Tensor) -> Tensor:
    """Reverse a (batch, seq, d) tensor along the time axis, keeping gradients."""
    seq_len = x.shape[1]
    steps = [x[:, seq_len - 1 - i, :] for i in range(seq_len)]
    return stack(steps, axis=1)
