"""repro — a from-scratch reproduction of START (ICDE 2023).

START is a two-stage self-supervised trajectory representation learning
framework: a Trajectory Pattern-Enhanced Graph Attention Network (TPE-GAT)
turns the road network plus travel semantics into road embeddings, and a
Time-Aware Trajectory Encoder (TAT-Enc) turns road sequences plus temporal
regularities into trajectory representations, pre-trained with span-masked
recovery and contrastive learning.

The supported public surface is :mod:`repro.api`: one :class:`~repro.api.Engine`
facade (train → encode → index → stream → query) with typed
requests/responses and a pluggable index-backend registry.

Sub-packages
------------
``repro.api``
    The typed public facade: ``Engine``, ``EngineConfig``, request/response
    dataclasses, index-backend registry.
``repro.nn``
    NumPy autodiff / neural-network substrate (replaces PyTorch).
``repro.roadnet``
    Road-network substrate: graphs, synthetic city generator, shortest paths.
``repro.trajectory``
    Trajectory substrate: generation, map matching, datasets, augmentation.
``repro.core``
    The START model, self-supervised pre-training and fine-tuning.
``repro.baselines``
    traj2vec, t2vec, Trembr, Transformer, BERT, PIM, PIM-TF, Toast, classical
    similarity measures.
``repro.serving``
    Representation serving internals: embedding store + chunked top-k index.
``repro.ann``
    Approximate-nearest-neighbour index structures (IVF, IVF-PQ) behind the
    ``repro.api`` backend registry.
``repro.streaming``
    Streaming internals: JSONL tail reader, sharded index, ingest service.
``repro.server``
    Concurrent serving runtime: batch aggregation, replica query workers,
    background stream ingest, checkpoint/restart.
``repro.obs``
    Observability: metrics registry (counters/gauges/histograms), SLO
    snapshots, optional process CPU/RSS monitor.
``repro.eval``
    Metrics and downstream-task evaluation harnesses.
``repro.experiments``
    Runners that regenerate every table and figure of the paper.

Imports are lazy (PEP 562): ``import repro`` is cheap, and sub-packages plus
the ``repro.api`` entry points materialise on first attribute access —
``repro.api.Engine`` works without eagerly importing the heavy model stack.
"""

from importlib import import_module

__version__ = "1.1.0"

#: Sub-packages resolved lazily on attribute access.
_SUBPACKAGES = frozenset(
    {
        "ann",
        "api",
        "baselines",
        "core",
        "eval",
        "experiments",
        "nn",
        "obs",
        "roadnet",
        "server",
        "serving",
        "streaming",
        "trajectory",
        "utils",
    }
)

#: Facade entry points re-exported at the top level (``repro.Engine`` etc.).
_API_EXPORTS = (
    "Engine",
    "EngineConfig",
    "EncodeRequest",
    "IngestBatch",
    "QueryHit",
    "QueryRequest",
    "QueryResponse",
    "SnapshotInfo",
    "available_backends",
    "register_backend",
)

__all__ = ["__version__", *sorted(_SUBPACKAGES), *sorted(_API_EXPORTS)]


def __getattr__(name: str):
    """Lazily import sub-packages and `repro.api` entry points (PEP 562)."""
    if name in _SUBPACKAGES:
        module = import_module(f"repro.{name}")
        globals()[name] = module  # cache: future lookups skip __getattr__
        return module
    if name in _API_EXPORTS:
        value = getattr(import_module("repro.api"), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute '{name}'")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
