"""repro — a from-scratch reproduction of START (ICDE 2023).

START is a two-stage self-supervised trajectory representation learning
framework: a Trajectory Pattern-Enhanced Graph Attention Network (TPE-GAT)
turns the road network plus travel semantics into road embeddings, and a
Time-Aware Trajectory Encoder (TAT-Enc) turns road sequences plus temporal
regularities into trajectory representations, pre-trained with span-masked
recovery and contrastive learning.

Sub-packages
------------
``repro.nn``
    NumPy autodiff / neural-network substrate (replaces PyTorch).
``repro.roadnet``
    Road-network substrate: graphs, synthetic city generator, shortest paths.
``repro.trajectory``
    Trajectory substrate: generation, map matching, datasets, augmentation.
``repro.core``
    The START model, self-supervised pre-training and fine-tuning.
``repro.baselines``
    traj2vec, t2vec, Trembr, Transformer, BERT, PIM, PIM-TF, Toast, classical
    similarity measures.
``repro.serving``
    Representation serving: embedding store + chunked top-k similarity index.
``repro.eval``
    Metrics and downstream-task evaluation harnesses.
``repro.experiments``
    Runners that regenerate every table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
