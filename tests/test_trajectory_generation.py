"""Tests for the synthetic trajectory generator, datasets, presets and IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    REFERENCE_EPOCH,
    CongestionModel,
    DemandConfig,
    PreprocessConfig,
    Trajectory,
    TrajectoryDataset,
    TrajectoryGenerator,
    build_dataset,
    build_network,
    is_weekend,
    label_of,
    load_dataset,
    preset_spec,
    save_dataset,
)


@pytest.fixture(scope="module")
def small_network():
    return generate_city(CityConfig(grid_rows=6, grid_cols=6, seed=4))


@pytest.fixture(scope="module")
def generated(small_network):
    config = DemandConfig(num_drivers=8, num_days=7, trips_per_driver_per_day=3.0, seed=5)
    generator = TrajectoryGenerator(small_network, CongestionModel(small_network), config)
    return generator.generate(num_trajectories=120)


class TestGenerator:
    def test_generates_requested_count(self, generated):
        assert 100 <= len(generated.trajectories) <= 120

    def test_trajectories_are_network_valid(self, small_network, generated):
        for trajectory in generated.trajectories[:30]:
            assert small_network.validate_path(trajectory.roads)

    def test_timestamps_strictly_increasing(self, generated):
        for trajectory in generated.trajectories[:30]:
            diffs = np.diff(trajectory.timestamps)
            assert (diffs > 0).all()

    def test_lengths_respect_config(self, generated):
        lengths = [len(t) for t in generated.trajectories]
        assert min(lengths) >= 6
        assert max(lengths) <= 128

    def test_departures_peak_in_rush_hours(self, small_network):
        config = DemandConfig(num_drivers=10, num_days=5, trips_per_driver_per_day=10.0, seed=1)
        generator = TrajectoryGenerator(small_network, config=config)
        result = generator.generate(num_trajectories=300)
        dataset = TrajectoryDataset(small_network, result.trajectories)
        weekday_counts = dataset.hourly_counts(weekend=False)
        # Rush hours should clearly dominate the small hours.
        assert weekday_counts[7:10].sum() + weekday_counts[17:20].sum() > 3 * weekday_counts[0:5].sum()

    def test_rush_hour_trips_slower(self, small_network, generated):
        """Same-hop trips during rush hour take longer on average (temporal regularity)."""
        rush, calm = [], []
        for t in generated.trajectories:
            hour = (int(t.departure_time) % 86400) // 3600
            speed = t.travel_time / max(len(t), 1)
            if is_weekend(t.departure_time):
                continue
            if 7 <= hour <= 9 or 17 <= hour <= 19:
                rush.append(speed)
            elif hour <= 5 or hour >= 22:
                calm.append(speed)
        if rush and calm:
            assert np.mean(rush) > np.mean(calm)

    def test_driver_labels_within_range(self, generated):
        assert all(0 <= t.user_id < 8 for t in generated.trajectories)

    def test_gps_emission(self, small_network):
        config = DemandConfig(num_drivers=4, num_days=2, trips_per_driver_per_day=2.0, seed=9)
        generator = TrajectoryGenerator(small_network, config=config)
        result = generator.generate(num_trajectories=5, emit_gps=True)
        assert len(result.raw_trajectories) == len(result.trajectories)
        assert all(len(raw) >= len(traj) for raw, traj in zip(result.raw_trajectories, result.trajectories))

    def test_modes_affect_duration(self, small_network):
        config = DemandConfig(
            num_drivers=6, num_days=4, trips_per_driver_per_day=4.0, modes=("car", "walk"), seed=3
        )
        generator = TrajectoryGenerator(small_network, config=config)
        result = generator.generate(num_trajectories=120)
        car = [t.travel_time / len(t) for t in result.trajectories if t.mode == "car"]
        walk = [t.travel_time / len(t) for t in result.trajectories if t.mode == "walk"]
        assert car and walk
        assert np.mean(walk) > 2 * np.mean(car)


class TestDataset:
    def _dataset(self, small_network, generated):
        return TrajectoryDataset(small_network, generated.trajectories, name="unit")

    def test_preprocess_filters(self, small_network):
        roads = small_network.road_ids()
        succ = small_network.successors(roads[0])
        short = Trajectory(roads=[roads[0], succ[0]], timestamps=[0.0, 1.0], user_id=0)
        keepers = []
        # Build 6 valid trajectories for user 1 so it survives the per-user filter.
        for i in range(6):
            path = [roads[0]]
            for _ in range(7):
                nxt = small_network.successors(path[-1])
                if not nxt:
                    break
                path.append(nxt[0])
            keepers.append(
                Trajectory(roads=path, timestamps=[float(j * 10 + i) for j in range(len(path))], user_id=1)
            )
        dataset = TrajectoryDataset(small_network, [short] + keepers)
        processed = dataset.preprocess(PreprocessConfig(min_length=6, min_trajectories_per_user=5))
        assert len(processed) == sum(1 for k in keepers if len(k) >= 6 and not k.has_loop())
        assert all(t.user_id == 1 for t in processed)

    def test_preprocess_caps_length(self, small_network):
        # A long synthetic path that revisits roads is filtered as a loop, so
        # build an artificial non-looping long trajectory by id juggling.
        roads = list(range(small_network.num_roads))[:140]
        trajectory = Trajectory(roads=roads, timestamps=[float(i) for i in range(len(roads))], user_id=0)
        dataset = TrajectoryDataset(small_network, [trajectory] * 6)
        processed = dataset.preprocess(PreprocessConfig(max_length=128, min_trajectories_per_user=1, remove_loops=False))
        assert all(len(t) <= 128 for t in processed)

    def test_chronological_split_ordering(self, small_network, generated):
        dataset = self._dataset(small_network, generated)
        split = dataset.chronological_split(0.6, 0.2)
        train_max = max(dataset[i].departure_time for i in split.train)
        test_min = min(dataset[i].departure_time for i in split.test)
        assert train_max <= test_min
        assert len(split.train) + len(split.validation) + len(split.test) == len(dataset)

    def test_split_fraction_validation(self, small_network, generated):
        dataset = self._dataset(small_network, generated)
        with pytest.raises(ValueError):
            dataset.chronological_split(0.8, 0.3)

    def test_statistics_fields(self, small_network, generated):
        stats = self._dataset(small_network, generated).statistics()
        assert stats["num_trajectories"] == len(generated.trajectories)
        assert stats["num_covered_roads"] <= stats["num_roads"]
        assert stats["mean_length"] >= 6

    def test_interval_distribution_positive(self, small_network, generated):
        intervals = self._dataset(small_network, generated).interval_distribution()
        assert (intervals > 0).all()
        assert intervals.std() > 0  # irregular intervals, Figure 1(c)

    def test_road_visit_counts_nonuniform(self, small_network, generated):
        counts = self._dataset(small_network, generated).road_visit_counts()
        assert counts.sum() > 0
        assert counts.max() > np.median(counts[counts > 0])


class TestPresetsAndIO:
    def test_preset_spec_unknown(self):
        with pytest.raises(ValueError):
            preset_spec("nope")

    def test_label_of(self):
        assert label_of("synthetic-bj") == "occupied"
        assert label_of("synthetic-porto") == "driver"
        assert label_of("synthetic-geolife") == "mode"

    def test_build_small_bj(self):
        dataset = build_dataset("synthetic-bj", scale=0.15)
        assert len(dataset) > 40
        assert dataset.name == "synthetic-bj"
        stats = dataset.statistics()
        assert stats["num_users"] > 5

    def test_build_geolife_shares_bj_network(self):
        bj_network = build_network("synthetic-bj")
        geolife = build_dataset("synthetic-geolife", scale=0.3, network=bj_network)
        assert geolife.network is bj_network
        modes = {t.mode for t in geolife}
        assert len(modes) >= 2

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            build_dataset("synthetic-bj", scale=0.0)

    def test_save_load_roundtrip(self, tmp_path, small_network, generated):
        dataset = TrajectoryDataset(small_network, generated.trajectories[:20], name="roundtrip")
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.name == "roundtrip"
        assert len(loaded) == 20
        assert loaded[0].roads == dataset[0].roads
        assert loaded[0].timestamps == pytest.approx(dataset[0].timestamps)

    def test_load_tolerates_blank_lines(self, tmp_path, small_network, generated):
        dataset = TrajectoryDataset(small_network, generated.trajectories[:4], name="blanks")
        save_dataset(dataset, tmp_path / "ds")
        jsonl = (tmp_path / "ds" / "trajectories.jsonl").read_text().splitlines()
        patched = [jsonl[0], "", jsonl[1], "   ", jsonl[2], jsonl[3], ""]
        (tmp_path / "ds" / "trajectories.jsonl").write_text("\n".join(patched) + "\n")
        assert len(load_dataset(tmp_path / "ds")) == 4

    def test_load_names_line_number_on_corrupt_record(self, tmp_path, small_network, generated):
        dataset = TrajectoryDataset(small_network, generated.trajectories[:3], name="corrupt")
        save_dataset(dataset, tmp_path / "ds")
        with open(tmp_path / "ds" / "trajectories.jsonl", "a") as handle:
            handle.write("{definitely not json}\n")
        with pytest.raises(ValueError, match=r"line 4"):
            load_dataset(tmp_path / "ds")

    def test_load_names_line_number_on_missing_field(self, tmp_path, small_network, generated):
        dataset = TrajectoryDataset(small_network, generated.trajectories[:2], name="missing")
        save_dataset(dataset, tmp_path / "ds")
        with open(tmp_path / "ds" / "trajectories.jsonl", "a") as handle:
            handle.write('{"roads": [1], "timestamps": [1.0]}\n')  # no user_id etc.
        with pytest.raises(ValueError, match=r"line 3"):
            load_dataset(tmp_path / "ds")
