"""Tests for the streaming layer: reader, batcher, shards, ingest service.

The load-bearing contract is *bit-identity*: a :class:`ShardedIndex` whose
shard capacity is a multiple of its database chunk size must return exactly
the ids and distances of the monolithic :class:`SimilarityIndex` over the
same rows — verified here both on fixed configurations (the acceptance gate
across several shard counts) and as a hypothesis property.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.index import SimilarityIndex
from repro.streaming.reader import MicroBatcher, TrajectoryStreamReader
from repro.streaming.service import SNAPSHOT_FORMAT_VERSION, IngestService
from repro.streaming.shards import ShardedIndex
from repro.trajectory import Trajectory, append_trajectories


def make_trajectory(trajectory_id: int, length: int) -> Trajectory:
    return Trajectory(
        roads=list(range(length)),
        timestamps=[float(1000 + 10 * i) for i in range(length)],
        user_id=trajectory_id % 5,
        trajectory_id=trajectory_id,
    )


def id_encode(batch: list[Trajectory]) -> np.ndarray:
    """Deterministic per-trajectory embedding, independent of batching."""
    return np.array(
        [[len(t), t.trajectory_id % 7, (t.trajectory_id * 13) % 11] for t in batch],
        dtype=np.float32,
    )


class TestTrajectoryStreamReader:
    def test_polls_pick_up_appends_incrementally(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        reader = TrajectoryStreamReader(path)
        assert reader.poll() == []  # file does not exist yet

        append_trajectories(path, [make_trajectory(i, 4) for i in range(3)])
        first = reader.poll()
        assert [t.trajectory_id for t in first] == [0, 1, 2]

        append_trajectories(path, [make_trajectory(i, 4) for i in range(3, 5)])
        second = reader.poll()
        assert [t.trajectory_id for t in second] == [3, 4]
        assert reader.poll() == []
        assert reader.records_read == 5

    def test_partial_trailing_line_waits_for_newline(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        append_trajectories(path, [make_trajectory(0, 3)])
        reader = TrajectoryStreamReader(path)
        assert len(reader.poll()) == 1

        line = json.dumps({"roads": [1], "timestamps": [1.0], "user_id": 0,
                           "occupied": 0, "trajectory_id": 9})
        with open(path, "a") as handle:  # a producer mid-write
            handle.write(line[: len(line) // 2])
        assert reader.poll() == []
        with open(path, "a") as handle:
            handle.write(line[len(line) // 2 :] + "\n")
        assert [t.trajectory_id for t in reader.poll()] == [9]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        append_trajectories(path, [make_trajectory(0, 3)])
        with open(path, "a") as handle:
            handle.write("\n   \n")
        append_trajectories(path, [make_trajectory(1, 3)])
        reader = TrajectoryStreamReader(path)
        assert [t.trajectory_id for t in reader.poll()] == [0, 1]

    def test_corrupt_record_names_file_and_line(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        append_trajectories(path, [make_trajectory(0, 3)])
        with open(path, "a") as handle:
            handle.write("{not json\n")
        reader = TrajectoryStreamReader(path)
        with pytest.raises(ValueError, match=r"line 2"):
            reader.poll()
        # The reader did not advance past the corrupt line: deterministic error.
        with pytest.raises(ValueError, match=r"line 2"):
            reader.poll()

    def test_invalid_utf8_names_file_and_line(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        append_trajectories(path, [make_trajectory(0, 3)])
        with open(path, "ab") as handle:
            handle.write(b"\xff\xfe not unicode\n")
        reader = TrajectoryStreamReader(path)
        with pytest.raises(ValueError, match=r"line 2"):
            reader.poll()

    def test_max_records_and_iter(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        append_trajectories(path, [make_trajectory(i, 3) for i in range(5)])
        reader = TrajectoryStreamReader(path)
        assert len(reader.poll(max_records=2)) == 2
        assert [t.trajectory_id for t in reader] == [2, 3, 4]
        with pytest.raises(ValueError):
            reader.poll(max_records=0)


class TestMicroBatcher:
    def test_bucket_fills_emit_batches(self):
        batcher = MicroBatcher(batch_size=3, bucket_width=10)
        emitted = []
        # lengths 4, 5, 6 share bucket 0; 25 lands in bucket 2.
        for i, length in enumerate([4, 25, 5, 6]):
            batch = batcher.add(make_trajectory(i, length))
            if batch is not None:
                emitted.append(batch)
        assert len(emitted) == 1
        assert [len(t) for t in emitted[0]] == [4, 5, 6]
        assert batcher.pending == 1

    def test_flush_drains_partials_shortest_first(self):
        batcher = MicroBatcher(batch_size=10, bucket_width=10)
        for i, length in enumerate([35, 4, 22, 5]):
            assert batcher.add(make_trajectory(i, length)) is None
        batches = batcher.flush()
        assert [[len(t) for t in batch] for batch in batches] == [[4, 5], [22], [35]]
        assert batcher.pending == 0
        assert batcher.flush() == []

    def test_add_many_yields_batches(self):
        batcher = MicroBatcher(batch_size=2, bucket_width=1000)
        batches = list(batcher.add_many(make_trajectory(i, 5) for i in range(5)))
        assert [len(b) for b in batches] == [2, 2]
        assert batcher.pending == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(bucket_width=0)


class TestShardedIndexBitIdentity:
    """The acceptance gate: sharded == monolithic, bit for bit."""

    CHUNK = 16

    @pytest.mark.parametrize("k", [1, 5, 17])
    @pytest.mark.parametrize("capacity", [16, 48, 80, 256])  # 19, 7, 4, 2 shards
    def test_topk_bit_identical_across_shard_counts(self, rng, k, capacity):
        database = rng.standard_normal((300, 24)).astype(np.float32)
        queries = rng.standard_normal((40, 24)).astype(np.float32)
        mono = SimilarityIndex(database, database_chunk_size=self.CHUNK).topk(queries, k)
        sharded = ShardedIndex.from_vectors(
            database, shard_capacity=capacity, database_chunk_size=self.CHUNK
        )
        assert sharded.num_shards == -(-300 // capacity)
        result = sharded.top_k(queries, k)
        np.testing.assert_array_equal(result.indices, mono.indices)
        # Bitwise, not approximate: same float32 words.
        assert (
            result.distances.view(np.uint32) == mono.distances.view(np.uint32)
        ).all()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        rows=st.integers(5, 200),
        dim=st.integers(2, 48),
        k=st.integers(1, 12),
        chunk=st.integers(4, 64),
        capacity_multiple=st.integers(1, 6),
    )
    def test_topk_bit_identity_property(self, seed, rows, dim, k, chunk, capacity_multiple):
        rng = np.random.default_rng(seed)
        database = rng.standard_normal((rows, dim)).astype(np.float32)
        queries = rng.standard_normal((9, dim)).astype(np.float32)
        mono = SimilarityIndex(database, database_chunk_size=chunk).topk(queries, k)
        sharded = ShardedIndex.from_vectors(
            database,
            shard_capacity=chunk * capacity_multiple,
            database_chunk_size=chunk,
        )
        result = sharded.top_k(queries, k)
        np.testing.assert_array_equal(result.indices, mono.indices)
        assert (
            result.distances.view(np.uint32) == mono.distances.view(np.uint32)
        ).all()

    def test_ranks_of_matches_monolithic(self, rng):
        database = rng.standard_normal((200, 12)).astype(np.float32)
        queries = rng.standard_normal((30, 12)).astype(np.float32)
        truth = rng.integers(0, 200, size=30)
        mono = SimilarityIndex(database, database_chunk_size=32).ranks_of(queries, truth)
        sharded = ShardedIndex.from_vectors(
            database, shard_capacity=64, database_chunk_size=32
        )
        np.testing.assert_array_equal(sharded.ranks_of(queries, truth), mono)


class TestShardedIndexMutation:
    def test_add_assigns_sequential_ids_and_seals_shards(self, rng):
        index = ShardedIndex(shard_capacity=10)
        first = index.add(rng.standard_normal((25, 4)).astype(np.float32))
        np.testing.assert_array_equal(first, np.arange(25))
        assert index.num_shards == 3
        assert [len(s) for s in index.shards] == [10, 10, 5]
        second = index.add(rng.standard_normal((7, 4)).astype(np.float32))
        np.testing.assert_array_equal(second, np.arange(25, 32))
        # appends fill the open shard before opening a new one
        assert [len(s) for s in index.shards] == [10, 10, 10, 2]

    def test_add_validates(self, rng):
        index = ShardedIndex(shard_capacity=10)
        index.add(rng.standard_normal((3, 4)).astype(np.float32))
        with pytest.raises(ValueError):
            index.add(rng.standard_normal((2, 5)).astype(np.float32))  # dim mismatch
        with pytest.raises(ValueError):
            index.add(rng.standard_normal((2, 4)).astype(np.float32), ids=np.array([0, 9]))
        with pytest.raises(ValueError):
            index.add(rng.standard_normal((2, 4)).astype(np.float32), ids=np.array([7, 7]))

    def test_remove_excludes_rows_and_clamps_k(self, rng):
        database = rng.standard_normal((40, 6)).astype(np.float32)
        index = ShardedIndex.from_vectors(database, shard_capacity=16)
        removed = index.remove(np.arange(0, 35))
        assert removed == 35
        assert len(index) == 5
        assert index.tombstone_count == 35
        result = index.top_k(rng.standard_normal((3, 6)).astype(np.float32), k=20)
        assert result.indices.shape == (3, 5)  # clamped to alive rows
        assert (result.indices >= 35).all()
        assert np.isfinite(result.distances).all()
        # idempotent: already-dead rows do not count again
        assert index.remove(np.arange(0, 35)) == 0

    def test_ranks_of_rejects_dead_truth(self, rng):
        index = ShardedIndex.from_vectors(rng.standard_normal((10, 4)).astype(np.float32))
        index.remove([3])
        with pytest.raises(ValueError, match="alive"):
            index.ranks_of(rng.standard_normal((1, 4)).astype(np.float32), np.array([3]))
        with pytest.raises(ValueError):
            index.ranks_of(rng.standard_normal((1, 4)).astype(np.float32), np.array([99]))

    def test_compact_reclaims_tombstones_and_preserves_answers(self, rng):
        database = rng.standard_normal((100, 8)).astype(np.float32)
        queries = rng.standard_normal((11, 8)).astype(np.float32)
        index = ShardedIndex.from_vectors(
            database, shard_capacity=16, database_chunk_size=16
        )
        index.remove(np.arange(0, 100, 2))  # half the rows
        before = index.top_k(queries, k=7)
        generation = index.generation
        assert index.compact() is True
        assert index.generation == generation + 1
        assert index.tombstone_count == 0
        assert index.num_shards == 4  # 50 survivors / 16
        after = index.top_k(queries, k=7)
        np.testing.assert_array_equal(after.indices, before.indices)
        np.testing.assert_array_equal(after.distances, before.distances)
        # survivors keep their ids; the freed memory is actually gone
        assert sum(len(s) for s in index.shards) == 50
        assert index.compact() is False  # nothing left to reclaim

    def test_compacted_index_matches_monolithic_on_survivors(self, rng):
        database = rng.standard_normal((90, 8)).astype(np.float32)
        queries = rng.standard_normal((9, 8)).astype(np.float32)
        index = ShardedIndex.from_vectors(
            database, shard_capacity=32, database_chunk_size=16
        )
        dead = rng.choice(90, size=30, replace=False)
        index.remove(dead)
        index.compact()
        survivors = np.setdiff1d(np.arange(90), dead)
        mono = SimilarityIndex(database[survivors], database_chunk_size=16).topk(queries, 5)
        result = index.top_k(queries, 5)
        # monolithic reports positions among survivors; the shards report ids
        np.testing.assert_array_equal(result.indices, survivors[mono.indices])
        assert (
            result.distances.view(np.uint32) == mono.distances.view(np.uint32)
        ).all()

    def test_empty_index_queries(self):
        index = ShardedIndex(dim=4)
        assert len(index) == 0
        result = index.top_k(np.zeros((3, 4), dtype=np.float32), k=5)
        assert result.indices.shape == (3, 0)
        with pytest.raises(ValueError):
            index.top_k(np.zeros((3, 4), dtype=np.float32), k=0)


class TestIngestService:
    def test_ingest_encodes_each_trajectory_exactly_once(self, tmp_path):
        seen: list[int] = []

        def counting_encode(batch):
            seen.extend(t.trajectory_id for t in batch)
            return id_encode(batch)

        path = tmp_path / "arrivals.jsonl"
        reader = TrajectoryStreamReader(path)
        service = IngestService(
            counting_encode, shard_capacity=8, batch_size=4, bucket_width=8
        )
        append_trajectories(path, [make_trajectory(i, 3 + i % 9) for i in range(10)])
        assert service.drain(reader) == 10
        append_trajectories(path, [make_trajectory(i, 3 + i % 9) for i in range(10, 16)])
        assert service.drain(reader) == 6
        assert sorted(seen) == list(range(16))  # once each, never re-encoded
        assert len(service) == 16

    def test_incremental_append_does_not_touch_sealed_shards(self, rng):
        service = IngestService(id_encode, shard_capacity=4, batch_size=4)
        service.ingest([make_trajectory(i, 5) for i in range(8)])
        sealed = service.index.shards[:2]
        sealed_lengths = [len(s) for s in sealed]
        service.ingest([make_trajectory(i, 5) for i in range(8, 14)])
        # the sealed shard objects are the same objects, same row counts
        assert service.index.shards[:2] == sealed
        assert [len(s) for s in sealed] == sealed_lengths

    def test_row_ids_map_back_to_trajectory_ids(self):
        service = IngestService(id_encode, batch_size=3, bucket_width=4)
        trajectories = [make_trajectory(100 + i, 3 + 2 * i) for i in range(7)]
        service.ingest(trajectories)
        result = service.top_k(id_encode(trajectories), k=1)
        matched = service.trajectory_ids(result.indices[:, 0])
        np.testing.assert_array_equal(matched, [100 + i for i in range(7)])

    def test_query_cache_hits_and_invalidates_on_mutation(self):
        service = IngestService(id_encode, cache_size=4)
        service.ingest([make_trajectory(i, 4) for i in range(6)])
        queries = id_encode([make_trajectory(0, 4)])
        first = service.top_k(queries, k=2)
        assert service.cache_stats == {"hits": 0, "misses": 1, "entries": 1}
        second = service.top_k(queries, k=2)
        assert second is first  # served from the LRU
        assert service.cache_stats["hits"] == 1
        # shared objects are frozen: one caller cannot poison another's answer
        with pytest.raises(ValueError):
            first.indices[0, 0] = 99
        service.ingest([make_trajectory(99, 4)])  # generation bump
        third = service.top_k(queries, k=2)
        assert third is not first
        assert service.cache_stats["misses"] == 2
        # different k is a different entry
        service.top_k(queries, k=1)
        assert service.cache_stats["misses"] == 3

    def test_remove_drops_mapping_and_results(self):
        service = IngestService(id_encode)
        trajectories = [make_trajectory(i, 4 + i) for i in range(5)]
        service.ingest(trajectories)
        assert service.remove([0, 1]) == 2
        assert len(service) == 3
        result = service.top_k(id_encode(trajectories), k=3)
        assert (result.indices >= 2).all()

    def test_snapshot_restore_round_trip(self, tmp_path, rng):
        service = IngestService(
            id_encode, shard_capacity=4, batch_size=3, metadata={"model": "test"}
        )
        trajectories = [make_trajectory(200 + i, 3 + i % 6) for i in range(11)]
        service.ingest(trajectories)
        service.remove([1, 5])
        queries = rng.standard_normal((6, 3)).astype(np.float32)
        expected = service.top_k(queries, k=4)

        snapshot_dir = service.snapshot(tmp_path / "snap")
        restored = IngestService.restore(snapshot_dir, id_encode)
        assert restored.metadata == {"model": "test"}
        assert len(restored) == len(service)
        result = restored.top_k(queries, k=4)
        np.testing.assert_array_equal(result.indices, expected.indices)
        assert (
            result.distances.view(np.uint32) == expected.distances.view(np.uint32)
        ).all()
        np.testing.assert_array_equal(
            restored.trajectory_ids(result.indices), service.trajectory_ids(expected.indices)
        )
        # new rows after restore continue the id sequence, not reuse dead ids
        new_ids = restored.index.add(np.zeros((1, 3), dtype=np.float32))
        assert new_ids[0] == 11

    def test_snapshot_restore_empty_service(self, tmp_path):
        service = IngestService(id_encode)
        restored = IngestService.restore(service.snapshot(tmp_path / "snap"), id_encode)
        assert len(restored) == 0

    def test_restore_refuses_future_format(self, tmp_path):
        service = IngestService(id_encode)
        service.ingest([make_trajectory(0, 4)])
        snapshot_dir = service.snapshot(tmp_path / "snap")
        manifest_path = snapshot_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            IngestService.restore(snapshot_dir, id_encode)
        with pytest.raises(ValueError, match="snapshot"):
            IngestService.restore(tmp_path / "nowhere", id_encode)
