"""Tests for the START core: config, tokens, TPE-GAT, TAT-Enc, batching, model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchBuilder,
    IGNORE_LABEL,
    STARTModel,
    StartConfig,
    TimeIntervalBias,
    TimePatternEmbedding,
    TPEGAT,
    hop_interval_matrix,
    paper_config,
    raw_interval_matrix,
    road_to_token,
    tiny_config,
    token_to_road,
    vocabulary_size,
)
from repro.core.tokens import CLS_TOKEN, DAY_MASK, MASK_TOKEN, MINUTE_MASK, PAD_TOKEN
from repro.nn import Tensor
from repro.roadnet import CityConfig, generate_city, road_feature_matrix
from repro.trajectory import (
    CongestionModel,
    DemandConfig,
    TrajectoryDataset,
    TrajectoryGenerator,
    transfer_probability_matrix,
)


@pytest.fixture(scope="module")
def network():
    return generate_city(CityConfig(grid_rows=5, grid_cols=5, seed=8))


@pytest.fixture(scope="module")
def dataset(network):
    config = DemandConfig(num_drivers=6, num_days=7, trips_per_driver_per_day=2.0, seed=8)
    generator = TrajectoryGenerator(network, CongestionModel(network), config)
    result = generator.generate(num_trajectories=60)
    ds = TrajectoryDataset(network, result.trajectories, name="core-test")
    ds.chronological_split()
    return ds


@pytest.fixture(scope="module")
def transfer(network, dataset):
    return transfer_probability_matrix(network, dataset.train_trajectories())


class TestConfig:
    def test_defaults_valid(self):
        config = StartConfig()
        assert config.ffn_dim == 2 * config.d_model

    def test_paper_config_shape(self):
        config = paper_config()
        assert config.d_model == 256
        assert config.gat_heads == (8, 16, 1)
        assert config.encoder_layers == 6

    def test_variant_override(self):
        config = tiny_config().variant(use_time_interval=False)
        assert not config.use_time_interval
        assert config.d_model == 32

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"d_model": 30, "encoder_heads": 4},
            {"gat_layers": 2, "gat_heads": (4,)},
            {"road_encoder": "gnn"},
            {"interval_mode": "banana"},
            {"interval_decay": "square"},
            {"loss_balance": 1.5},
            {"mask_ratio": 0.0},
            {"use_mask_loss": False, "use_contrastive_loss": False},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            StartConfig(**kwargs)


class TestTokens:
    def test_roundtrip(self):
        assert token_to_road(road_to_token(17)) == 17

    def test_specials_do_not_collide_with_roads(self):
        assert road_to_token(0) > max(PAD_TOKEN, CLS_TOKEN, MASK_TOKEN)

    def test_vocabulary_size(self):
        assert vocabulary_size(100) == 103


class TestTPEGAT:
    def test_output_shape(self, network, dataset, transfer):
        features = road_feature_matrix(network)
        gat = TPEGAT(network, features, transfer, d_model=16, num_layers=2, heads=(2, 1))
        out = gat()
        assert out.shape == (network.num_roads, 16)

    def test_gradients_reach_all_heads(self, network, transfer):
        features = road_feature_matrix(network)
        gat = TPEGAT(network, features, transfer, d_model=8, num_layers=1, heads=(2,))
        gat().sum().backward()
        missing = [name for name, p in gat.named_parameters() if p.grad is None]
        assert missing == []

    def test_transfer_probability_changes_output(self, network, dataset, transfer):
        features = road_feature_matrix(network)
        with_transfer = TPEGAT(network, features, transfer, d_model=8, num_layers=1, heads=(1,))
        without_transfer = TPEGAT(network, features, None, d_model=8, num_layers=1, heads=(1,))
        # Same weights, different transfer matrices -> different outputs.
        without_transfer.load_state_dict(with_transfer.state_dict())
        assert not np.allclose(with_transfer().data, without_transfer().data)

    def test_invalid_heads_count(self, network, transfer):
        features = road_feature_matrix(network)
        with pytest.raises(ValueError):
            TPEGAT(network, features, transfer, d_model=8, num_layers=2, heads=(2,))


class TestTimeModules:
    def test_time_pattern_embedding_shape(self):
        emb = TimePatternEmbedding(16)
        minutes = np.array([[1, 720, 1440], [0, MINUTE_MASK, 5]])
        days = np.array([[1, 3, 7], [0, DAY_MASK, 2]])
        assert emb(minutes, days).shape == (2, 3, 16)

    def test_time_pattern_embedding_shape_mismatch(self):
        emb = TimePatternEmbedding(8)
        with pytest.raises(ValueError):
            emb(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_raw_interval_matrix_symmetry_and_padding(self):
        times = np.array([[0.0, 10.0, 30.0]])
        mask = np.array([[False, False, True]])
        delta = raw_interval_matrix(times, mask)
        assert delta[0, 0, 1] == pytest.approx(10.0)
        assert delta[0, 1, 0] == pytest.approx(10.0)
        assert delta[0, 0, 2] == pytest.approx(0.0)  # padded column zeroed

    def test_hop_interval_matrix(self):
        hops = hop_interval_matrix(2, 4)
        assert hops.shape == (2, 4, 4)
        assert hops[0, 0, 3] == pytest.approx(3.0)

    def test_interval_bias_decay_orders(self):
        bias = TimeIntervalBias(decay="log", adaptive=False)
        intervals = np.array([[[0.0, 10.0], [10.0, 0.0]]])
        out = bias(intervals).data[0, 0]
        assert out[0, 0] > out[0, 1]  # closer in time -> larger bias

    def test_interval_bias_adaptive_is_learnable(self):
        bias = TimeIntervalBias(decay="log", adaptive=True, hidden=4)
        intervals = np.array([[[0.0, 5.0], [5.0, 0.0]]])
        out = bias(intervals)
        out.sum().backward()
        assert bias.omega1.grad is not None and bias.omega2.grad is not None

    def test_interval_bias_invalid_decay(self):
        with pytest.raises(ValueError):
            TimeIntervalBias(decay="sqrt")


class TestBatchBuilder:
    def test_build_shapes_and_cls(self, network, dataset):
        builder = BatchBuilder(network.num_roads, rng=np.random.default_rng(0))
        chunk = dataset.trajectories[:4]
        batch = builder.build(chunk)
        assert batch.tokens.shape[0] == 4
        assert (batch.tokens[:, 0] == CLS_TOKEN).all()
        assert batch.intervals.shape == (4, batch.seq_len, batch.seq_len)
        assert batch.padding_mask.shape == batch.tokens.shape
        np.testing.assert_array_equal(batch.lengths, [len(t) + 1 for t in chunk])

    def test_padding_mask_consistent_with_lengths(self, network, dataset):
        builder = BatchBuilder(network.num_roads, rng=np.random.default_rng(0))
        batch = builder.build(dataset.trajectories[:6])
        np.testing.assert_array_equal((~batch.padding_mask).sum(axis=1), batch.lengths)

    def test_span_mask_produces_labels_and_masked_tokens(self, network, dataset):
        builder = BatchBuilder(network.num_roads, mask_ratio=0.3, mask_length=2, rng=np.random.default_rng(0))
        batch = builder.build(dataset.trajectories[:4], span_mask=True)
        masked_positions = batch.tokens == MASK_TOKEN
        assert masked_positions.any()
        # Labels exist exactly where the mask token is.
        assert ((batch.mask_labels != IGNORE_LABEL) == masked_positions).all()
        # Temporal indices at masked positions use the [MASKT] ids.
        assert (batch.minute_indices[masked_positions] == MINUTE_MASK).all()
        assert (batch.day_indices[masked_positions] == DAY_MASK).all()

    def test_departure_only_mode_hides_time(self, network, dataset):
        builder = BatchBuilder(network.num_roads, rng=np.random.default_rng(0))
        batch = builder.build(dataset.trajectories[:3], time_mode="departure_only")
        for row in range(3):
            valid = ~batch.padding_mask[row]
            minutes = batch.minute_indices[row][valid]
            assert len(set(minutes.tolist())) == 1  # every position shows the departure minute
        assert np.allclose(batch.intervals, 0.0)

    def test_invalid_time_mode(self, network, dataset):
        builder = BatchBuilder(network.num_roads)
        with pytest.raises(ValueError):
            builder.build(dataset.trajectories[:2], time_mode="arrival")

    def test_truncation_respects_max_length(self, network, dataset):
        builder = BatchBuilder(network.num_roads, max_length=8)
        batch = builder.build(dataset.trajectories[:4])
        assert batch.seq_len <= 8

    def test_label_kinds(self, network, dataset):
        builder = BatchBuilder(network.num_roads)
        occupied = builder.build(dataset.trajectories[:4], label_kind="occupied").class_labels
        driver = builder.build(dataset.trajectories[:4], label_kind="driver").class_labels
        assert set(occupied.tolist()).issubset({0, 1})
        assert (driver == [t.user_id for t in dataset.trajectories[:4]]).all()

    def test_build_from_views_marks_masks(self, network, dataset):
        from repro.trajectory import TrajectoryAugmenter

        builder = BatchBuilder(network.num_roads, rng=np.random.default_rng(0))
        augmenter = TrajectoryAugmenter(rng=np.random.default_rng(1))
        views = [augmenter.road_mask(t) for t in dataset.trajectories[:3]]
        batch = builder.build_from_views(views)
        assert (batch.tokens == MASK_TOKEN).any()
        assert (batch.mask_labels == IGNORE_LABEL).all()  # contrastive views carry no labels


class TestSTARTModel:
    @pytest.fixture(scope="class")
    def model(self, dataset):
        return STARTModel.from_dataset(dataset, tiny_config())

    def test_forward_shapes(self, model, dataset):
        builder = model.make_builder()
        batch = builder.build(dataset.trajectories[:5])
        sequence, pooled = model(batch)
        assert sequence.shape == (5, batch.seq_len, model.config.d_model)
        assert pooled.shape == (5, model.config.d_model)

    def test_mask_logits_shape(self, model, dataset):
        builder = model.make_builder()
        batch = builder.build(dataset.trajectories[:3], span_mask=True)
        sequence, _ = model(batch)
        logits = model.mask_logits(sequence)
        assert logits.shape == (3, batch.seq_len, model.num_roads)

    def test_encode_returns_finite_vectors(self, model, dataset):
        vectors = model.encode(dataset.trajectories[:7])
        assert vectors.shape == (7, model.config.d_model)
        assert np.isfinite(vectors).all()

    def test_encode_empty(self, model):
        assert model.encode([]).shape == (0, model.config.d_model)

    def test_encode_is_deterministic_in_eval(self, model, dataset):
        first = model.encode(dataset.trajectories[:4])
        second = model.encode(dataset.trajectories[:4])
        np.testing.assert_allclose(first, second, atol=1e-6)

    def test_random_road_encoder_variant(self, dataset):
        model = STARTModel.from_dataset(dataset, tiny_config(road_encoder="random"))
        vectors = model.encode(dataset.trajectories[:3])
        assert vectors.shape[0] == 3

    def test_node2vec_requires_embeddings(self, dataset):
        with pytest.raises(ValueError):
            STARTModel(dataset.network, tiny_config(road_encoder="node2vec"))

    def test_ablation_variants_forward(self, dataset):
        for overrides in (
            {"use_time_embedding": False},
            {"use_time_interval": False},
            {"interval_mode": "hop"},
            {"interval_decay": "inverse"},
            {"adaptive_interval": False},
            {"use_transfer_prob": False},
        ):
            model = STARTModel.from_dataset(dataset, tiny_config(**overrides))
            vectors = model.encode(dataset.trajectories[:2])
            assert np.isfinite(vectors).all()

    def test_state_dict_roundtrip_preserves_encoding(self, dataset):
        model_a = STARTModel.from_dataset(dataset, tiny_config())
        model_b = STARTModel.from_dataset(dataset, tiny_config(seed=123))
        model_b.load_state_dict(model_a.state_dict())
        np.testing.assert_allclose(
            model_a.encode(dataset.trajectories[:3]),
            model_b.encode(dataset.trajectories[:3]),
            atol=1e-5,
        )
