"""The repo gate: `repro.analysis` over the shipped tree must come back clean.

This is the test that makes the analyzer matter — any new finding in
``src/repro`` that is neither fixed, suppressed inline with a
``# repro: allow[rule-id]``, nor added to ``analysis_baseline.json`` with a
written reason fails CI here.  It also keeps the baseline honest: an entry
whose finding no longer exists is stale and must be deleted.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import Baseline, run_analysis
from repro.analysis.baseline import DEFAULT_BASELINE_NAME
from repro.analysis.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_TREE = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / DEFAULT_BASELINE_NAME


def test_source_tree_has_no_new_findings():
    result = run_analysis([SRC_TREE], baseline=Baseline.load(BASELINE_PATH))
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], (
        "repro.analysis found new violations in src/repro — fix them, suppress "
        "with `# repro: allow[rule-id]`, or baseline with a reason:\n" + rendered
    )


def test_baseline_has_no_stale_entries():
    result = run_analysis([SRC_TREE], baseline=Baseline.load(BASELINE_PATH))
    stale = "\n".join(f"{e.rule} @ {e.path} ({e.match!r})" for e in result.stale_baseline)
    assert result.stale_baseline == [], (
        "analysis_baseline.json grandfathers findings that no longer exist — "
        "delete these entries:\n" + stale
    )


def test_every_baseline_entry_is_exercised():
    """Each grandfathered finding still matches exactly one baseline entry."""
    result = run_analysis([SRC_TREE], baseline=Baseline.load(BASELINE_PATH))
    baseline = Baseline.load(BASELINE_PATH)
    assert len(result.baselined) == len(baseline.entries)


def test_cli_gate_passes_on_shipped_tree(tmp_path, capsys):
    artifact = tmp_path / "analysis.json"
    code = cli_main(
        [
            str(SRC_TREE),
            "--baseline",
            str(BASELINE_PATH),
            "--format",
            "json",
            "--output",
            str(artifact),
        ]
    )
    assert code == 0, capsys.readouterr().out
    payload = json.loads(artifact.read_text())
    assert payload["ok"] is True
    assert payload["summary"]["new"] == 0
    assert payload["files_scanned"] > 100
