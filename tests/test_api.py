"""Tests for the `repro.api` facade: Engine, typed messages, backend registry.

Two layers of coverage:

* fast, model-free tests drive the engine with a deterministic fake encoder
  (backend equivalence, registry, cache, mutation, snapshot/restore);
* one full round trip drives a real tiny START model through
  config → train → encode → ingest waves → query → snapshot → restore.

The hypothesis property pins the PR 2 invariant at the facade level: the
``"chunked"`` and ``"sharded"`` backends are **bit-identical** (ids and
distances) whenever ``shard_capacity`` is a multiple of
``database_chunk_size``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    EncodeRequest,
    Engine,
    EngineConfig,
    IngestBatch,
    QueryHit,
    QueryRequest,
    UnsupportedOperation,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.core import STARTModel, tiny_config
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    CongestionModel,
    DemandConfig,
    TrajectoryDataset,
    TrajectoryGenerator,
)


@dataclass
class FakeTrajectory:
    """Minimal stand-in: only ``__len__`` and ``trajectory_id`` are used."""

    length: int
    trajectory_id: int

    def __len__(self) -> int:
        return self.length


def linear_encode(batch: list[FakeTrajectory]) -> np.ndarray:
    """Deterministic per-trajectory embedding (independent of batching)."""
    return np.array(
        [[t.length, t.trajectory_id % 7, t.trajectory_id % 3] for t in batch],
        dtype=np.float32,
    )


def fake_corpus(count: int, start: int = 0) -> list[FakeTrajectory]:
    return [FakeTrajectory(length=3 + (i % 11), trajectory_id=100 + i) for i in range(start, start + count)]


@pytest.fixture(scope="module")
def dataset():
    network = generate_city(CityConfig(grid_rows=5, grid_cols=5, seed=3))
    config = DemandConfig(num_drivers=6, num_days=8, trips_per_driver_per_day=2.0, seed=3)
    generator = TrajectoryGenerator(network, CongestionModel(network), config)
    result = generator.generate(num_trajectories=90)
    ds = TrajectoryDataset(network, result.trajectories, name="api-test")
    ds.chronological_split()
    return ds


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"bruteforce", "chunked", "sharded"} <= set(available_backends())

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown index backend 'annoy'"):
            create_backend("annoy")

    def test_register_and_unregister_custom_backend(self):
        calls = {}

        @register_backend("test-custom")
        def factory(**kwargs):
            calls.update(kwargs)
            return create_backend("sharded", **kwargs)

        try:
            backend = create_backend("test-custom", shard_capacity=7)
            assert calls["shard_capacity"] == 7
            backend.add(np.ones((3, 2), dtype=np.float32))
            assert len(backend) == 3
            with pytest.raises(ValueError, match="already registered"):
                register_backend("test-custom", factory)
        finally:
            unregister_backend("test-custom")
        assert "test-custom" not in available_backends()

    def test_engine_uses_config_backend_string(self):
        engine = Engine(linear_encode, EngineConfig(backend="bruteforce"))
        assert engine.backend.name == "bruteforce"


class TestEngineServing:
    def make_engine(self, backend: str = "sharded", **overrides) -> Engine:
        return Engine(linear_encode, EngineConfig(backend=backend, **overrides))

    def test_encode_matches_plain_encoder_row_order(self):
        engine = self.make_engine()
        corpus = fake_corpus(37)
        vectors = engine.encode(EncodeRequest(trajectories=corpus, batch_size=8))
        np.testing.assert_array_equal(vectors, linear_encode(corpus))
        assert vectors.dtype == np.float32
        assert not vectors.flags.writeable

    def test_ingest_assigns_insertion_order_ids(self):
        engine = self.make_engine()
        first = engine.ingest(fake_corpus(10))
        second = engine.ingest(IngestBatch(trajectories=fake_corpus(5, start=10)))
        np.testing.assert_array_equal(first, np.arange(10))
        np.testing.assert_array_equal(second, np.arange(10, 15))
        assert len(engine) == 15

    def test_query_maps_trajectory_ids(self):
        engine = self.make_engine()
        corpus = fake_corpus(20)
        engine.ingest(corpus)
        response = engine.query(QueryRequest(queries=corpus[:4], k=1))
        # Identical feature rows exist (lengths repeat mod 11); the nearest
        # hit must at least share the query's features, and the reported
        # trajectory id must belong to the matched row.
        assert response.ids.shape == (4, 1)
        for row, hits in enumerate(response.hits):
            assert isinstance(hits[0], QueryHit)
            matched = corpus[int(response.ids[row, 0])]
            assert hits[0].trajectory_id == matched.trajectory_id

    def test_query_response_arrays_frozen_and_cached(self):
        engine = self.make_engine()
        engine.ingest(fake_corpus(12))
        queries = linear_encode(fake_corpus(3))
        first = engine.query(QueryRequest(queries=queries, k=2))
        again = engine.query(QueryRequest(queries=queries, k=2))
        assert again is first  # served from the generation-keyed cache
        assert engine.cache_stats["hits"] == 1
        with pytest.raises(ValueError):
            first.ids[0, 0] = 99
        # Mutation bumps the generation: the cache entry can never be reused.
        engine.ingest(fake_corpus(1, start=50))
        assert engine.query(QueryRequest(queries=queries, k=2)) is not first

    def test_query_k_alongside_request_rejected(self):
        engine = self.make_engine()
        engine.ingest(fake_corpus(5))
        with pytest.raises(ValueError, match="inside the QueryRequest"):
            engine.query(QueryRequest(queries=linear_encode(fake_corpus(1))), k=3)

    def test_remove_and_compact_on_sharded(self):
        engine = self.make_engine(shard_capacity=8)
        ids = engine.ingest(fake_corpus(20))
        assert engine.remove(ids[:5]) == 5
        assert len(engine) == 15
        assert engine.compact()
        assert len(engine) == 15
        response = engine.query(QueryRequest(queries=linear_encode(fake_corpus(2)), k=20))
        assert not np.isin(ids[:5], response.ids).any()

    def test_remove_unsupported_on_append_only_backends(self):
        for backend in ("chunked", "bruteforce"):
            engine = self.make_engine(backend)
            ids = engine.ingest(fake_corpus(4))
            with pytest.raises(UnsupportedOperation, match="sharded"):
                engine.remove(ids[:1])
            assert engine.compact() is False

    def test_ranks_of_matches_bruteforce_reference(self, rng):
        vectors = rng.standard_normal((80, 6)).astype(np.float32)
        queries = rng.standard_normal((9, 6)).astype(np.float32)
        truth = rng.integers(0, 80, size=9)
        engines = {}
        for backend in ("sharded", "chunked", "bruteforce"):
            engine = self.make_engine(backend, shard_capacity=32, database_chunk_size=16)
            engine.ingest_vectors(vectors)
            engines[backend] = engine.ranks_of(queries, truth)
        np.testing.assert_array_equal(engines["sharded"], engines["bruteforce"])
        np.testing.assert_array_equal(engines["chunked"], engines["bruteforce"])

    def test_snapshot_restore_bit_identical_with_tombstones(self, rng, tmp_path):
        engine = self.make_engine(shard_capacity=16, database_chunk_size=8)
        vectors = rng.standard_normal((40, 5)).astype(np.float32)
        ids = engine.ingest_vectors(vectors, trajectory_ids=range(1000, 1040))
        engine.remove(ids[7:12])
        info = engine.snapshot(tmp_path / "snap")
        assert info.backend == "sharded"
        assert info.rows == 35
        restored = Engine.restore(tmp_path / "snap", linear_encode)
        queries = rng.standard_normal((6, 5)).astype(np.float32)
        original = engine.query(QueryRequest(queries=queries, k=10))
        replica = restored.query(QueryRequest(queries=queries, k=10))
        np.testing.assert_array_equal(original.ids, replica.ids)
        np.testing.assert_array_equal(original.distances, replica.distances)
        np.testing.assert_array_equal(original.trajectory_ids, replica.trajectory_ids)
        # Fresh ids continue after the snapshot's next_id, never reused.
        new_ids = restored.ingest_vectors(rng.standard_normal((2, 5)).astype(np.float32))
        assert new_ids.min() >= 40

    def test_ingest_without_trajectory_ids_defaults_to_row_ids(self):
        """Objects lacking a trajectory_id must not collide across waves."""

        @dataclass
        class Anonymous:
            length: int

            def __len__(self) -> int:
                return self.length

        def encode(batch):
            return np.array([[t.length, 1.0] for t in batch], dtype=np.float32)

        engine = Engine(encode, EngineConfig(backend="sharded"))
        engine.ingest([Anonymous(3), Anonymous(4)])
        engine.ingest([Anonymous(5), Anonymous(6)])
        # Each row maps to its own (unique) global id, not its wave position.
        np.testing.assert_array_equal(
            engine.trajectory_ids(np.arange(4)), np.arange(4)
        )

    def test_restore_tombstoned_snapshot_into_append_only_backend(self, rng, tmp_path):
        """A cross-backend restore filters dead rows instead of crashing."""
        sharded = self.make_engine(shard_capacity=8)
        ids = sharded.ingest_vectors(rng.standard_normal((20, 4)).astype(np.float32))
        sharded.remove(ids[3:7])
        sharded.snapshot(tmp_path / "snap")
        chunked = Engine.restore(
            tmp_path / "snap", linear_encode, config=EngineConfig(backend="chunked")
        )
        assert len(chunked) == 16
        queries = rng.standard_normal((3, 4)).astype(np.float32)
        response = chunked.query(QueryRequest(queries=queries, k=16))
        assert not np.isin(ids[3:7], response.ids).any()
        expected = sharded.query(QueryRequest(queries=queries, k=16))
        np.testing.assert_array_equal(response.ids, expected.ids)

    def test_restore_rejects_non_snapshot_and_newer_formats(self, tmp_path):
        with pytest.raises(ValueError, match="not an Engine snapshot"):
            Engine.restore(tmp_path, linear_encode)

    def test_restore_explains_ingest_service_snapshots(self, tmp_path):
        """The deprecated service writes the same manifest.json name; pointing
        Engine.restore at one must give a migration hint, not a KeyError."""
        from repro.streaming.service import IngestService

        service = IngestService(linear_encode, shard_capacity=8)
        service.ingest(fake_corpus(10))
        service.snapshot(tmp_path / "old")
        with pytest.raises(ValueError, match="IngestService snapshot"):
            Engine.restore(tmp_path / "old", linear_encode)
        engine = self.make_engine()
        engine.ingest(fake_corpus(3))
        engine.snapshot(tmp_path / "snap")
        manifest = tmp_path / "snap" / "manifest.json"
        manifest.write_text(manifest.read_text().replace('"format_version": 1', '"format_version": 99'))
        with pytest.raises(ValueError, match="snapshot format v99"):
            Engine.restore(tmp_path / "snap", linear_encode)

    def test_engine_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(shard_capacity=0)
        with pytest.raises(ValueError):
            EngineConfig(database_chunk_size=0)
        with pytest.raises(ValueError):
            EngineConfig(encode_batch_size=0)


class TestBackendEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        rows=st.integers(1, 120),
        num_queries=st.integers(1, 12),
        dim=st.integers(2, 10),
        chunk=st.sampled_from([4, 16, 64]),
        multiplier=st.integers(1, 4),
        k=st.integers(1, 12),
    )
    def test_chunked_and_sharded_bit_identical_at_aligned_geometry(
        self, seed, rows, num_queries, dim, chunk, multiplier, k
    ):
        """PR 2 invariant at the facade: shard_capacity % database_chunk == 0
        ⇒ the two backends return bit-identical QueryResponses."""
        rng = np.random.default_rng(seed)
        vectors = rng.standard_normal((rows, dim)).astype(np.float32)
        queries = rng.standard_normal((num_queries, dim)).astype(np.float32)
        geometry = dict(shard_capacity=chunk * multiplier, database_chunk_size=chunk)
        chunked = Engine(linear_encode, EngineConfig(backend="chunked", **geometry))
        sharded = Engine(linear_encode, EngineConfig(backend="sharded", **geometry))
        chunked.ingest_vectors(vectors)
        sharded.ingest_vectors(vectors)
        a = chunked.query(QueryRequest(queries=queries, k=k))
        b = sharded.query(QueryRequest(queries=queries, k=k))
        np.testing.assert_array_equal(a.ids, b.ids)
        assert (a.distances == b.distances).all()  # bitwise, not allclose
        truth = rng.integers(0, rows, size=num_queries)
        np.testing.assert_array_equal(
            chunked.ranks_of(queries, truth), sharded.ranks_of(queries, truth)
        )


class TestEngineModelLifecycle:
    def test_full_round_trip_with_start(self, dataset, tmp_path):
        """config → train → encode → ingest waves → query → snapshot →
        restore → query again, all through the facade."""
        config = EngineConfig(
            start=tiny_config(pretrain_epochs=1, batch_size=16),
            backend="sharded",
            shard_capacity=16,
            database_chunk_size=8,
        )
        engine = Engine.from_dataset(dataset, config)
        assert isinstance(engine.model, STARTModel)
        history = engine.pretrain(dataset.train_trajectories(), epochs=1)
        assert history.epochs == 1

        test = dataset.test_trajectories()
        vectors = engine.encode(test)
        assert vectors.shape == (len(test), engine.model.config.d_model)

        # Two ingest waves: earlier rows are never re-encoded.
        split = len(test) // 2
        engine.ingest(test[:split])
        calls_after_first = engine.encode_calls
        engine.ingest(test[split:])
        assert engine.encode_calls > calls_after_first
        assert len(engine) == len(test)

        response = engine.query(QueryRequest(queries=test[:3], k=5))
        assert response.ids.shape == (3, 5)
        # Each query trajectory is itself in the database: its own row is the
        # top hit at ~zero distance (exact zero is not guaranteed — batch
        # composition shifts padding, which can move float32 results by ulps).
        np.testing.assert_array_equal(response.ids[:, 0], np.arange(3))
        assert response.distances[:, 0] == pytest.approx(0.0, abs=0.05)

        # The index survives without the model; queries are bit-identical.
        info = engine.snapshot(tmp_path / "index")
        assert info.rows == len(test)
        replica = Engine.restore(info.path, engine.model)
        query_vectors = engine.encode(test[:3])
        original = engine.query(QueryRequest(queries=query_vectors, k=5))
        restored = replica.query(QueryRequest(queries=query_vectors, k=5))
        np.testing.assert_array_equal(original.ids, restored.ids)
        assert (original.distances == restored.distances).all()

    def test_save_load_checkpoint_reproduces_encodings(self, dataset, tmp_path):
        config = EngineConfig(start=tiny_config(pretrain_epochs=1, batch_size=16))
        engine = Engine.from_dataset(dataset, config)
        engine.pretrain(dataset.train_trajectories()[:32], epochs=1)
        test = dataset.test_trajectories()[:8]
        before = engine.encode(test)
        path = engine.save(tmp_path / "start.npz")
        loaded = Engine.load(path, dataset)
        assert loaded.config.start == engine.model.config
        np.testing.assert_allclose(loaded.encode(test), before, rtol=1e-6, atol=1e-6)

    def test_load_requires_context_and_engine_checkpoint(self, dataset, tmp_path):
        config = EngineConfig(start=tiny_config(pretrain_epochs=1, batch_size=16))
        engine = Engine.from_dataset(dataset, config)
        path = engine.save(tmp_path / "start.npz")
        with pytest.raises(ValueError, match="dataset or a network"):
            Engine.load(path)

    def test_load_honours_saved_backend_choice(self, dataset, tmp_path):
        config = EngineConfig(
            start=tiny_config(pretrain_epochs=1, batch_size=16), backend="chunked"
        )
        engine = Engine.from_dataset(dataset, config)
        path = engine.save(tmp_path / "start.npz")
        assert Engine.load(path, dataset).config.backend == "chunked"
        override = Engine.load(path, dataset, config=EngineConfig(backend="bruteforce"))
        assert override.config.backend == "bruteforce"

    def test_load_explains_non_start_checkpoints(self, dataset, tmp_path):
        from repro.baselines import build_baseline

        baseline = build_baseline("Trembr", dataset.network, tiny_config())
        path = Engine(baseline).save(tmp_path / "trembr.npz")
        with pytest.raises(ValueError, match="cannot\\s+rebuild"):
            Engine.load(path, dataset)

    def test_pretrain_resets_index(self, dataset):
        config = EngineConfig(start=tiny_config(pretrain_epochs=1, batch_size=16))
        engine = Engine.from_dataset(dataset, config)
        engine.ingest(dataset.test_trajectories()[:6])
        assert len(engine) == 6
        engine.pretrain(dataset.train_trajectories()[:32], epochs=1)
        assert len(engine) == 0  # stale vectors dropped with the old weights

    def test_untrainable_encoder_raises(self):
        engine = Engine(linear_encode)
        with pytest.raises(TypeError, match="not trainable"):
            engine.pretrain([FakeTrajectory(3, 0), FakeTrajectory(4, 1)])
