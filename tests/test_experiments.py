"""Smoke tests for the experiment runners (tiny scales, subsets of models).

These tests check that every table/figure runner produces well-formed output;
the full-scale regeneration of the paper's artefacts lives in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import tiny_config
from repro.experiments import (
    ABLATION_VARIANTS,
    Figure3Settings,
    Figure4Settings,
    Figure6Settings,
    Figure7Settings,
    Figure8Settings,
    Figure9Settings,
    Figure10Settings,
    TABLE2_MODELS,
    Table2Settings,
    Table3Settings,
    best_pair,
    format_figure1,
    format_figure3,
    format_figure4,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10,
    format_table,
    format_table1,
    format_table2,
    format_table3,
    format_series,
    merge_reports,
    run_figure1,
    run_figure3,
    run_figure4,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_table1,
    run_table2,
    run_table3,
    summarize_winners,
    experiment_dataset,
)

SMOKE_SCALE = 0.15
SMOKE_CONFIG = tiny_config(batch_size=16)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "a" in text and "0.125" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        assert format_series("s", [1, 2], [0.1, 0.2]) == "s: 1: 0.100, 2: 0.200"

    def test_merge_reports(self):
        merged = merge_reports({"A": {"x": 1.0}, "": {"y": 2.0}})
        assert merged == {"A x": 1.0, "y": 2.0}


class TestDatasetsAndStats:
    def test_experiment_dataset_cached(self):
        first = experiment_dataset("synthetic-porto", scale=SMOKE_SCALE)
        second = experiment_dataset("synthetic-porto", scale=SMOKE_SCALE)
        assert first is second

    def test_geolife_shares_bj_network(self):
        bj = experiment_dataset("synthetic-bj", scale=SMOKE_SCALE)
        geolife = experiment_dataset("synthetic-geolife", scale=SMOKE_SCALE)
        assert geolife.network is bj.network

    def test_table1_rows(self):
        rows = run_table1(scale=SMOKE_SCALE)
        assert {row["Dataset"] for row in rows} == {"synthetic-bj", "synthetic-porto"}
        assert all(row["#Trajectory"] > 0 for row in rows)
        assert "Table I" in format_table1(rows)

    def test_figure1_structure(self):
        result = run_figure1(scale=SMOKE_SCALE)
        assert len(result["weekday_hourly_counts"]) == 24
        assert len(result["daily_counts"]) == 7
        assert result["interval_distribution"]["std_s"] > 0
        assert 0.0 <= result["visit_frequencies"]["gini"] <= 1.0
        assert "Figure 1" in format_figure1(result)

    def test_figure1_shows_rush_hour_structure(self):
        result = run_figure1(scale=0.3)
        weekday = np.array(result["weekday_hourly_counts"], dtype=float)
        assert weekday[7:10].sum() > weekday[0:3].sum()


class TestTableRunners:
    def test_table2_subset(self):
        settings = Table2Settings(
            scale=SMOKE_SCALE,
            pretrain_epochs=1,
            finetune_epochs=1,
            num_queries=5,
            num_negatives=10,
            models=("Trembr", "START"),
            config=SMOKE_CONFIG,
        )
        rows = run_table2("synthetic-porto", settings)
        assert [row["Model"] for row in rows] == ["Trembr", "START"]
        for row in rows:
            assert np.isfinite(row["ETA MAE"]) and row["SIM MR"] >= 1.0
        winners = summarize_winners(rows)
        assert set(winners.values()).issubset({"Trembr", "START"})
        assert "Table II" in format_table2(rows)

    def test_table2_model_order_matches_paper(self):
        assert TABLE2_MODELS[-1] == "START"
        assert TABLE2_MODELS[0] == "traj2vec"

    def test_table3_structure(self):
        settings = Table3Settings(
            scale=SMOKE_SCALE, geolife_scale=0.3, pretrain_epochs=1, finetune_epochs=1, config=SMOKE_CONFIG
        )
        rows = run_table3(settings)
        names = [row["Model"] for row in rows]
        assert names == [
            "No Pre-train Geolife",
            "Pre-train Geolife",
            "Porto-START",
            "BJ-START",
            "Porto-Trembr",
            "BJ-Trembr",
        ]
        for row in rows:
            assert np.isfinite(row["ETA MAE"])
            assert 0.0 <= row["CLS Micro-F1"] <= 1.0
        assert "Table III" in format_table3(rows)


class TestFigureRunners:
    def test_figure3(self):
        settings = Figure3Settings(
            scale=SMOKE_SCALE, pretrain_epochs=1, finetune_epochs=1, config=SMOKE_CONFIG
        )
        result = run_figure3(settings)
        assert set(result["series"]) == {"START", "w/o Temporal", "Trembr"}
        for series in result["series"].values():
            assert len(series["weekday_by_hour"]) == len(result["hour_buckets"])
            assert np.isfinite(series["overall"])
        assert "Figure 3" in format_figure3(result)

    def test_figure4(self):
        settings = Figure4Settings(
            scale=0.3,
            pretrain_epochs=1,
            proportions=(0.2, 0.4),
            num_queries=5,
            database_size=20,
            models=("Trembr", "START"),
            config=SMOKE_CONFIG,
        )
        result = run_figure4("synthetic-porto", settings)
        assert set(result["precision"]) == {"Trembr", "START"}
        for series in result["precision"].values():
            assert len(series) == 2
            assert all(0.0 <= value <= 1.0 for value in series)
        assert "Figure 4" in format_figure4(result)

    def test_figure6(self):
        settings = Figure6Settings(
            scale=SMOKE_SCALE, fractions=(0.5, 1.0), pretrain_epochs=1, finetune_epochs=1, config=SMOKE_CONFIG
        )
        result = run_figure6("synthetic-porto", settings)
        assert len(result["train_sizes"]) == 2
        for variant in ("Pre-train", "No Pre-train"):
            assert len(result["eta_mape"][variant]) == 2
            assert len(result["classification"][variant]) == 2
        assert "Figure 6" in format_figure6(result)

    def test_figure7_subset(self):
        settings = Figure7Settings(
            scale=SMOKE_SCALE,
            pretrain_epochs=1,
            finetune_epochs=1,
            num_queries=5,
            num_negatives=10,
            variants=("w/o Time Emb", "START"),
            config=SMOKE_CONFIG,
        )
        rows = run_figure7("synthetic-porto", settings)
        assert [row["Variant"] for row in rows] == ["w/o Time Emb", "START"]
        assert "Figure 7" in format_figure7(rows)

    def test_figure7_variant_list_matches_paper(self):
        assert set(ABLATION_VARIANTS) >= {
            "w/o TPE-GAT",
            "w/ Node2vec",
            "w/o TransProb",
            "w/o Time Emb",
            "w/o Time Interval",
            "w/ Hop",
            "w/o Log",
            "w/o Adaptive",
            "w/o Mask",
            "w/o Contra",
            "START",
        }

    def test_figure8_subset(self):
        settings = Figure8Settings(
            scale=SMOKE_SCALE,
            pretrain_epochs=1,
            finetune_epochs=1,
            augmentations=("shift", "mask"),
            config=SMOKE_CONFIG,
        )
        result = run_figure8("synthetic-porto", settings)
        assert ("shift", "mask") in result["mape_grid"]
        assert result["mape_grid"][("shift", "mask")] == result["mape_grid"][("mask", "shift")]
        assert best_pair(result) in result["mape_grid"]
        assert "Figure 8" in format_figure8(result)

    def test_figure9_subset(self):
        settings = Figure9Settings(
            scale=SMOKE_SCALE,
            pretrain_epochs=1,
            finetune_epochs=1,
            encoder_layers=(1,),
            embedding_sizes=(16,),
            batch_sizes=(16,),
            config=SMOKE_CONFIG,
        )
        result = run_figure9("synthetic-porto", settings)
        assert len(result["encoder_layers"]["scores"]) == 1
        assert len(result["embedding_size"]["scores"]) == 1
        assert len(result["batch_size"]["scores"]) == 1
        assert "Figure 9" in format_figure9(result)

    def test_figure10(self):
        settings = Figure10Settings(
            scale=0.3,
            pretrain_epochs=1,
            encode_sizes=(10, 20),
            query_sizes=(4,),
            deep_models=("START",),
            inference_models=("Trembr", "START"),
            classical_measures=("DTW",),
            config=SMOKE_CONFIG,
            ann_backends=("ivf", "ivfpq"),
            ann_params={"ivf": {"nlist": 4, "nprobe": 2}},
        )
        result = run_figure10("synthetic-porto", settings)
        inference = result["inference"]
        assert set(inference["seconds"]) == {"Trembr", "START"}
        for series in inference["seconds"].values():
            assert len(series) == 2 and all(value >= 0 for value in series)
        similarity = result["similarity"]
        assert "START" in similarity["query_time"] and "DTW" in similarity["query_time"]
        # The ANN sweep serves the same vectors through the approximate
        # backends and reports per-query time + recall against the exact ids.
        for label in ("START[ivf]", "START[ivfpq]"):
            assert label in similarity["query_time"]
            recalls = similarity["recall_at_k"][label]
            assert len(recalls) == len(similarity["query_sizes"])
            assert all(0.0 <= value <= 1.0 for value in recalls)
        formatted = format_figure10(result)
        assert "Figure 10" in formatted and "ANN top-k recall" in formatted
