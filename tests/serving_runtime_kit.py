"""The deterministic concurrency test-kit for :mod:`repro.server`.

Concurrency tests usually buy coverage with ``sleep()`` and pay for it in
flakes.  This kit removes real time from the equation entirely:

* **Virtual time** — runtimes and aggregators under test take a
  :class:`~repro.utils.clock.VirtualClock`; linger timeouts and poll
  intervals fire exactly when the test calls ``clock.advance``, and
  ``clock.wait_for_waiters`` is the rendezvous that proves a background
  thread is parked before time moves.  No test in ``tests/test_server.py``
  sleeps, ever.
* **Synchronous stepping** — :meth:`ServingRuntime.pump` runs one ingest
  cycle on the calling thread, so stream grouping, publication and
  checkpointing are driven step-by-step without the background thread
  (a runtime never ``start()``-ed is a perfectly good single-threaded
  harness; the crash-restart property test exploits exactly that).
* **Fault injection** — :class:`FaultInjector` arms one-shot
  :class:`~repro.server.KillWorker` faults on the batch hooks, and
  :class:`FlakyEncoder` poisons chosen trajectory ids so a single request's
  encode fails mid-batch.  Both fire at deterministic points (batch
  boundaries), not at timers.
* **Bit-level oracles** — :func:`assert_responses_identical` compares
  responses array-bitwise, and :func:`engine_fingerprint` reduces an entire
  engine to a comparable tuple (rows, probe answers, id mapping) for
  crash-restart equivalence.

Encoders: :func:`id_encode` is per-trajectory deterministic (batching
cannot change it); :func:`batch_sensitive_encode` deliberately mixes the
whole encode wave into every row (mean-centering), so any test asserting
bit-identity through it proves the *batch composition* was replayed
exactly — the property that makes checkpoint replay lossless.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.api import Engine, EngineConfig, QueryRequest, QueryResponse
from repro.server import KillWorker, ServerConfig, ServerHooks, ServingRuntime
from repro.trajectory import Trajectory, append_trajectories
from repro.utils.clock import VirtualClock  # noqa: F401  (re-export for tests)

#: Geometry small enough that tens of rows cross chunk and shard boundaries
#: (mirrors ``tests/backend_conformance.py``).
SMALL_GEOMETRY = dict(shard_capacity=16, query_chunk_size=4, database_chunk_size=8)

#: Embedding dimensionality of the kit encoders.
DIM = 3


# ---------------------------------------------------------------------- #
# Trajectories and encoders
# ---------------------------------------------------------------------- #
def make_trajectory(trajectory_id: int, length: int | None = None) -> Trajectory:
    """A deterministic trajectory; lengths vary by id to exercise bucketing."""
    if length is None:
        length = 3 + (trajectory_id % 3)
    return Trajectory(
        roads=list(range(length)),
        timestamps=[float(1000 + 10 * i) for i in range(length)],
        user_id=trajectory_id % 5,
        trajectory_id=trajectory_id,
    )


def write_stream(path, trajectory_ids) -> None:
    """Append one JSONL record per id to ``path`` (the runtime's stream format)."""
    append_trajectories(path, [make_trajectory(i) for i in trajectory_ids])


def id_encode(batch) -> np.ndarray:
    """Per-trajectory deterministic embedding — batching cannot change it."""
    return np.array(
        [[len(t), t.trajectory_id % 7, (t.trajectory_id * 13) % 11] for t in batch],
        dtype=np.float32,
    )


def batch_sensitive_encode(batch) -> np.ndarray:
    """Mean-centered :func:`id_encode`: every row depends on its batch-mates.

    The adversarial encoder of the crash-restart tests: replaying records in
    different groups than the original run produces *different bits*, so
    bit-identical results prove the deterministic-grouping contract.
    """
    vectors = id_encode(batch)
    return (vectors - vectors.mean(axis=0, keepdims=True)).astype(np.float32)


# ---------------------------------------------------------------------- #
# Engines and runtimes
# ---------------------------------------------------------------------- #
def make_engine(encoder=id_encode, backend: str = "bruteforce", **overrides) -> Engine:
    config = dict(SMALL_GEOMETRY)
    config.update(overrides)
    return Engine(encoder, EngineConfig(backend=backend, **config))


def seed_engine(engine: Engine, rows: int, *, first_id: int = 1000) -> list[int]:
    """Ingest ``rows`` deterministic trajectories; returns their trajectory ids."""
    ids = list(range(first_id, first_id + rows))
    engine.ingest([make_trajectory(i) for i in ids])
    return ids


def make_runtime(
    engine: Engine | None = None,
    *,
    hooks: ServerHooks | None = None,
    clock=None,
    **config_overrides,
) -> ServingRuntime:
    """A small-knob runtime (2 workers, batch 4) over a seeded engine."""
    if engine is None:
        engine = make_engine()
        seed_engine(engine, 24)
    defaults = dict(max_batch=4, linger=0.01, num_workers=2, ingest_group_size=4)
    defaults.update(config_overrides)
    return ServingRuntime(engine, ServerConfig(**defaults), hooks=hooks, clock=clock)


def probe_queries(count: int = 6, *, seed: int = 7) -> np.ndarray:
    """Deterministic query vectors in the kit's embedding space."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((count, DIM)).astype(np.float32)


# ---------------------------------------------------------------------- #
# Hooks: recording and fault injection
# ---------------------------------------------------------------------- #
class HookRecorder(ServerHooks):
    """Thread-safe log of every runtime hook invocation.

    Events are ``(kind, payload)`` tuples in arrival order; :meth:`of`
    filters one kind.  Safe to read while the runtime is live.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[tuple[str, dict]] = []

    def _record(self, kind: str, **payload) -> None:
        with self._lock:
            self._events.append((kind, payload))

    @property
    def events(self) -> list[tuple[str, dict]]:
        with self._lock:
            return list(self._events)

    def of(self, kind: str) -> list[dict]:
        return [payload for event_kind, payload in self.events if event_kind == kind]

    def on_batch_start(self, worker_id, batch_size, generation) -> None:
        self._record(
            "batch_start", worker_id=worker_id, batch_size=batch_size, generation=generation
        )

    def on_batch_done(self, worker_id, batch_size, generation) -> None:
        self._record(
            "batch_done", worker_id=worker_id, batch_size=batch_size, generation=generation
        )

    def on_publish(self, generation, rows) -> None:
        self._record("publish", generation=generation, rows=rows)

    def on_checkpoint(self, path, generation) -> None:
        self._record("checkpoint", path=path, generation=generation)

    def on_worker_exit(self, worker_id, reason) -> None:
        self._record("worker_exit", worker_id=worker_id, reason=reason)


class FaultInjector(HookRecorder):
    """A :class:`HookRecorder` that can kill workers at batch boundaries.

    :meth:`arm_kill` schedules the next ``count`` batch starts to raise
    :class:`~repro.server.KillWorker` — each armed fault fires exactly once,
    so a test arms precisely the crashes it wants and nothing re-fires
    later.  The runtime re-enqueues the killed worker's batch, making the
    fault invisible to callers (which is exactly what tests assert).
    """

    def __init__(self) -> None:
        super().__init__()
        self._kills_remaining = 0

    def arm_kill(self, count: int = 1) -> None:
        with self._lock:
            self._kills_remaining += count

    def on_batch_start(self, worker_id, batch_size, generation) -> None:
        super().on_batch_start(worker_id, batch_size, generation)
        with self._lock:
            fire = self._kills_remaining > 0
            if fire:
                self._kills_remaining -= 1
        if fire:
            raise KillWorker(f"armed fault: killing worker {worker_id}")


class FlakyEncoder:
    """Wraps an encoder; any batch containing a poisoned trajectory id fails.

    Used to fail *one request's* encode inside a multi-request batch: the
    runtime encodes per request, so only the poisoned caller sees the error.
    """

    def __init__(self, base=id_encode, poison_ids=()) -> None:
        self.base = base
        self.poison_ids = set(poison_ids)
        self.calls = 0

    def __call__(self, batch) -> np.ndarray:
        self.calls += 1
        for trajectory in batch:
            if trajectory.trajectory_id in self.poison_ids:
                raise RuntimeError(f"poisoned trajectory {trajectory.trajectory_id}")
        return self.base(batch)


# ---------------------------------------------------------------------- #
# Oracles
# ---------------------------------------------------------------------- #
def sequential_reference(engine: Engine, requests) -> list[QueryResponse]:
    """The ground truth: the same requests, one by one, through Engine.query."""
    return [engine.query(request) for request in requests]


def assert_responses_identical(actual: QueryResponse, expected: QueryResponse) -> None:
    """Array-bitwise equality — ids, distances (exact ulps) and source ids."""
    np.testing.assert_array_equal(actual.ids, expected.ids)
    assert actual.distances.tobytes() == expected.distances.tobytes(), (
        "distances differ at the bit level"
    )
    np.testing.assert_array_equal(actual.trajectory_ids, expected.trajectory_ids)


def engine_fingerprint(engine: Engine, probes: np.ndarray | None = None) -> tuple:
    """Reduce an engine's queryable state to a bit-comparable tuple."""
    if probes is None:
        probes = probe_queries()
    rows = len(engine)
    if rows == 0:
        return (0,)
    response = engine.query(QueryRequest(queries=probes, k=min(5, rows)))
    return (
        rows,
        response.ids.tobytes(),
        response.distances.tobytes(),
        response.trajectory_ids.tobytes(),
    )
