"""Kernel-equivalence coverage for the fused/fast hot path.

The fused attention (packed Q/K/V) and the time-parallel GRU/LSTM must
reproduce the seed implementations — four separate projections and per-step
Python loops — to ``rtol=1e-5`` for outputs *and* gradients, including ragged
``lengths``.  The reference implementations below are straight ports of the
seed code, driven off the *same* parameters as the modules under test.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    GRU,
    LSTM,
    BiGRU,
    MultiHeadSelfAttention,
    Tensor,
    TransformerEncoderLayer,
    no_grad,
    stack,
)
from repro.nn.rnn import _gather_last, _reverse_time, _reverse_within_lengths
from repro.nn.tensor import gather_rows, masked_fill, take_rows
from repro.utils.seeding import get_rng

RTOL = 1e-5
ATOL = 1e-5


# --------------------------------------------------------------------- #
# Reference (seed) implementations
# --------------------------------------------------------------------- #
def reference_attention(attn: MultiHeadSelfAttention, x, attention_bias=None, key_padding_mask=None):
    """Seed implementation: separate Q/K/V projections, post-matmul scaling."""
    batch, seq, _ = x.shape
    d = attn.d_model
    w = attn.qkv_weight
    b = attn.qkv_bias

    def split_heads(t):
        return t.reshape(batch, seq, attn.num_heads, attn.d_head).transpose(0, 2, 1, 3)

    query = split_heads(x @ w[:, :d] + b[:d])
    key = split_heads(x @ w[:, d : 2 * d] + b[d : 2 * d])
    value = split_heads(x @ w[:, 2 * d :] + b[2 * d :])
    scores = (query @ key.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(attn.d_head))
    if attention_bias is not None:
        scores = scores + attention_bias
    if key_padding_mask is not None:
        mask = np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
        mask = np.broadcast_to(mask, (batch, attn.num_heads, seq, seq))
        scores = masked_fill(scores, mask, -1e9)
    weights = scores.softmax(axis=-1)
    context = (weights @ value).transpose(0, 2, 1, 3).reshape(batch, seq, d)
    return attn.out_proj(context)


def reference_gru(gru: GRU, x, lengths=None, initial=None):
    """Seed implementation: per-step cell forward, per-row final gather."""
    batch, seq_len, _ = x.shape
    hidden = initial if initial is not None else Tensor.zeros((batch, gru.hidden_size))
    outputs = []
    for step in range(seq_len):
        hidden = gru.cell(x[:, step, :], hidden)
        outputs.append(hidden)
    all_hidden = stack(outputs, axis=1)
    if lengths is None:
        return all_hidden, hidden
    rows = [all_hidden[i, max(int(lengths[i]) - 1, 0), :] for i in range(batch)]
    return all_hidden, stack(rows, axis=0)


def reference_lstm(lstm: LSTM, x, lengths=None):
    batch, seq_len, _ = x.shape
    hidden = Tensor.zeros((batch, lstm.hidden_size))
    cell = Tensor.zeros((batch, lstm.hidden_size))
    outputs = []
    for step in range(seq_len):
        hidden, cell = lstm.cell(x[:, step, :], (hidden, cell))
        outputs.append(hidden)
    all_hidden = stack(outputs, axis=1)
    if lengths is None:
        return all_hidden, hidden
    rows = [all_hidden[i, max(int(lengths[i]) - 1, 0), :] for i in range(batch)]
    return all_hidden, stack(rows, axis=0)


def _input(shape, seed, requires_grad=True):
    data = np.random.default_rng(seed).standard_normal(shape).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)


def _grads_of(fn, params):
    for p in params:
        p.zero_grad()
    out = fn()
    out.sum().backward()
    return out.data.copy(), [None if p.grad is None else p.grad.copy() for p in params]


# --------------------------------------------------------------------- #
# Fused attention
# --------------------------------------------------------------------- #
class TestFusedAttentionEquivalence:
    @pytest.mark.parametrize("shape,heads", [((2, 5, 16), 4), ((1, 9, 8), 2), ((3, 3, 12), 3)])
    def test_outputs_and_grads_match(self, shape, heads):
        attn = MultiHeadSelfAttention(shape[-1], heads, dropout=0.0, rng=get_rng(0))
        attn.eval()
        params = attn.parameters()
        x_new, x_ref = _input(shape, 1), _input(shape, 1)

        new_out, new_grads = _grads_of(lambda: attn(x_new), params)
        ref_out, ref_grads = _grads_of(lambda: reference_attention(attn, x_ref), params)
        np.testing.assert_allclose(new_out, ref_out, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(x_new.grad, x_ref.grad, rtol=RTOL, atol=ATOL)
        for got, want in zip(new_grads, ref_grads):
            np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    def test_bias_and_mask_match(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=get_rng(3))
        attn.eval()
        x_new, x_ref = _input((2, 6, 8), 4), _input((2, 6, 8), 4)
        bias = Tensor(np.random.default_rng(5).standard_normal((2, 1, 6, 6)).astype(np.float32))
        mask = np.zeros((2, 6), dtype=bool)
        mask[0, 4:] = True
        mask[1, 2:] = True

        new_out, _ = _grads_of(lambda: attn(x_new, attention_bias=bias, key_padding_mask=mask), attn.parameters())
        ref_out, _ = _grads_of(
            lambda: reference_attention(attn, x_ref, attention_bias=bias, key_padding_mask=mask),
            attn.parameters(),
        )
        np.testing.assert_allclose(new_out, ref_out, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(x_new.grad, x_ref.grad, rtol=RTOL, atol=ATOL)

    def test_no_grad_fast_path_matches_autograd(self):
        attn = MultiHeadSelfAttention(16, 4, dropout=0.1, rng=get_rng(7))
        attn.eval()
        x = _input((3, 7, 16), 8, requires_grad=False)
        mask = np.zeros((3, 7), dtype=bool)
        mask[1, 5:] = True
        slow = attn(x, key_padding_mask=mask)  # grads enabled -> autograd path
        with no_grad():
            fast = attn(x, key_padding_mask=mask)
        np.testing.assert_allclose(fast.data, slow.data, rtol=RTOL, atol=ATOL)

    def test_fast_path_weights_match(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=get_rng(9))
        attn.eval()
        x = _input((1, 5, 8), 10, requires_grad=False)
        _, slow_w = attn(x, return_weights=True)
        with no_grad():
            _, fast_w = attn(x, return_weights=True)
        np.testing.assert_allclose(fast_w.data, slow_w.data, rtol=RTOL, atol=ATOL)

    def test_encoder_layer_fast_path(self):
        layer = TransformerEncoderLayer(16, 4, dropout=0.1, rng=get_rng(11))
        layer.eval()
        x = _input((2, 6, 16), 12, requires_grad=False)
        mask = np.zeros((2, 6), dtype=bool)
        mask[0, 3:] = True
        slow = layer(x, key_padding_mask=mask)
        with no_grad():
            fast = layer(x, key_padding_mask=mask)
        np.testing.assert_allclose(fast.data, slow.data, rtol=RTOL, atol=ATOL)


# --------------------------------------------------------------------- #
# Time-parallel recurrent sweeps
# --------------------------------------------------------------------- #
class TestRecurrentEquivalence:
    @pytest.mark.parametrize(
        "shape,lengths",
        [
            ((3, 6, 4), None),
            ((3, 6, 4), [2, 6, 4]),
            ((1, 1, 5), [1]),
            ((4, 9, 3), [9, 1, 5, 3]),
        ],
    )
    def test_gru_outputs_and_grads_match(self, shape, lengths):
        gru = GRU(shape[-1], 7, rng=get_rng(0))
        lengths = None if lengths is None else np.array(lengths)
        params = gru.parameters()
        x_new, x_ref = _input(shape, 2), _input(shape, 2)

        def run(module_input, fn):
            out_all, out_final = fn(module_input)
            return (out_all.sum() + out_final.sum())

        for p in params:
            p.zero_grad()
        all_new, final_new = gru(x_new, lengths=lengths)
        (all_new.sum() + final_new.sum()).backward()
        new_grads = [p.grad.copy() for p in params]

        for p in params:
            p.zero_grad()
        all_ref, final_ref = reference_gru(gru, x_ref, lengths=lengths)
        (all_ref.sum() + final_ref.sum()).backward()
        ref_grads = [p.grad.copy() for p in params]

        np.testing.assert_allclose(all_new.data, all_ref.data, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(final_new.data, final_ref.data, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(x_new.grad, x_ref.grad, rtol=RTOL, atol=ATOL)
        for got, want in zip(new_grads, ref_grads):
            np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    def test_gru_initial_state_matches(self):
        gru = GRU(4, 6, rng=get_rng(1))
        x_new, x_ref = _input((2, 5, 4), 3), _input((2, 5, 4), 3)
        initial = _input((2, 6), 4, requires_grad=False)
        all_new, _ = gru(x_new, initial=initial)
        all_ref, _ = reference_gru(gru, x_ref, initial=initial)
        np.testing.assert_allclose(all_new.data, all_ref.data, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("lengths", [None, [3, 8, 1]])
    def test_lstm_outputs_and_grads_match(self, lengths):
        lstm = LSTM(5, 6, rng=get_rng(2))
        lengths = None if lengths is None else np.array(lengths)
        params = lstm.parameters()
        x_new, x_ref = _input((3, 8, 5), 6), _input((3, 8, 5), 6)

        for p in params:
            p.zero_grad()
        all_new, final_new = lstm(x_new, lengths=lengths)
        (all_new.sum() + final_new.sum()).backward()
        new_grads = [p.grad.copy() for p in params]

        for p in params:
            p.zero_grad()
        all_ref, final_ref = reference_lstm(lstm, x_ref, lengths=lengths)
        (all_ref.sum() + final_ref.sum()).backward()
        ref_grads = [p.grad.copy() for p in params]

        np.testing.assert_allclose(all_new.data, all_ref.data, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(final_new.data, final_ref.data, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(x_new.grad, x_ref.grad, rtol=RTOL, atol=ATOL)
        for got, want in zip(new_grads, ref_grads):
            np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("module_cls", [GRU, LSTM])
    def test_no_grad_fast_path_matches_autograd(self, module_cls):
        rnn = module_cls(4, 6, rng=get_rng(5))
        x = _input((3, 7, 4), 9, requires_grad=False)
        lengths = np.array([7, 2, 5])
        slow_all, slow_final = rnn(x, lengths=lengths)
        with no_grad():
            fast_all, fast_final = rnn(x, lengths=lengths)
        np.testing.assert_allclose(fast_all.data, slow_all.data, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(fast_final.data, slow_final.data, rtol=RTOL, atol=ATOL)


# --------------------------------------------------------------------- #
# BiGRU padded-reversal regression
# --------------------------------------------------------------------- #
class TestBiGRUPadding:
    def test_padded_batch_matches_unpadded_rows(self):
        """The seed bug: reversing the padded block wholesale fed padding to
        the backward RNN first, so ragged rows disagreed with their unpadded
        encodings.  Each row of a padded batch must now encode exactly as the
        same sequence alone in an exact-length batch."""
        bigru = BiGRU(3, 5, rng=get_rng(0))
        rng = np.random.default_rng(1)
        rows = [rng.standard_normal((length, 3)).astype(np.float32) for length in (2, 6, 4)]
        padded = np.zeros((3, 6, 3), dtype=np.float32)
        for i, row in enumerate(rows):
            padded[i, : row.shape[0]] = row
        lengths = np.array([2, 6, 4])

        outputs, final = bigru(Tensor(padded), lengths=lengths)
        for i, row in enumerate(rows):
            alone_out, alone_final = bigru(
                Tensor(row[None, :, :]), lengths=np.array([row.shape[0]])
            )
            np.testing.assert_allclose(
                final.data[i], alone_final.data[0], rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                outputs.data[i, : row.shape[0]], alone_out.data[0], rtol=RTOL, atol=ATOL
            )

    def test_backward_final_reads_sequence_start(self):
        """The backward direction's final state must be the state after
        consuming the *first* real step, independent of padding length."""
        bigru = BiGRU(2, 4, rng=get_rng(2))
        rng = np.random.default_rng(3)
        row = rng.standard_normal((3, 2)).astype(np.float32)
        short = np.zeros((1, 3, 2), dtype=np.float32)
        short[0] = row
        long = np.zeros((1, 10, 2), dtype=np.float32)
        long[0, :3] = row
        _, final_short = bigru(Tensor(short), lengths=np.array([3]))
        _, final_long = bigru(Tensor(long), lengths=np.array([3]))
        np.testing.assert_allclose(final_long.data, final_short.data, rtol=RTOL, atol=ATOL)

    def test_gradients_flow_with_lengths(self):
        bigru = BiGRU(3, 4, rng=get_rng(4))
        x = _input((2, 5, 3), 5)
        outputs, final = bigru(x, lengths=np.array([2, 5]))
        (outputs.sum() + final.sum()).backward()
        assert x.grad is not None
        missing = [name for name, p in bigru.named_parameters() if p.grad is None]
        assert missing == []


# --------------------------------------------------------------------- #
# Property-based coverage for the vectorised helpers
# --------------------------------------------------------------------- #
@st.composite
def _batch_and_lengths(draw):
    batch = draw(st.integers(min_value=1, max_value=5))
    seq_len = draw(st.integers(min_value=1, max_value=8))
    dim = draw(st.integers(min_value=1, max_value=4))
    lengths = draw(
        st.lists(st.integers(min_value=1, max_value=seq_len), min_size=batch, max_size=batch)
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    data = np.random.default_rng(seed).standard_normal((batch, seq_len, dim)).astype(np.float32)
    return data, np.array(lengths, dtype=np.int64)


class TestHelperProperties:
    @given(_batch_and_lengths())
    @settings(max_examples=60, deadline=None)
    def test_gather_last_matches_python_loop(self, case):
        data, lengths = case
        got = _gather_last(Tensor(data), lengths).data
        want = np.stack([data[i, max(int(l) - 1, 0)] for i, l in enumerate(lengths)])
        np.testing.assert_allclose(got, want)

    @given(_batch_and_lengths())
    @settings(max_examples=60, deadline=None)
    def test_reverse_time_matches_python_loop(self, case):
        data, _ = case
        got = _reverse_time(Tensor(data)).data
        want = np.stack([data[:, data.shape[1] - 1 - i, :] for i in range(data.shape[1])], axis=1)
        np.testing.assert_allclose(got, want)

    @given(_batch_and_lengths())
    @settings(max_examples=60, deadline=None)
    def test_reverse_within_lengths_is_involution_and_local(self, case):
        data, lengths = case
        once = _reverse_within_lengths(Tensor(data), lengths).data
        twice = _reverse_within_lengths(Tensor(once), lengths).data
        np.testing.assert_allclose(twice, data)
        for i, length in enumerate(lengths):
            np.testing.assert_allclose(once[i, :length], data[i, :length][::-1])
            np.testing.assert_allclose(once[i, length:], data[i, length:])

    def test_reverse_time_gradients(self):
        x = _input((2, 4, 3), 0)
        _reverse_time(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(x.data))

    def test_gather_last_gradients(self):
        x = _input((3, 4, 2), 1)
        _gather_last(x, np.array([1, 4, 2])).sum().backward()
        expected = np.zeros_like(x.data)
        expected[0, 0] = expected[1, 3] = expected[2, 1] = 1.0
        np.testing.assert_allclose(x.grad, expected)


# --------------------------------------------------------------------- #
# The gather primitives behind the fast backward passes
# --------------------------------------------------------------------- #
class TestGatherPrimitives:
    def test_take_rows_matches_getitem(self):
        x_a = _input((6, 4), 0)
        x_b = _input((6, 4), 0)
        rows = np.array([4, 0, 2])
        take_rows(x_a, rows).sum().backward()
        x_b[rows].sum().backward()
        np.testing.assert_allclose(x_a.grad, x_b.grad)

    def test_gather_rows_matches_getitem(self):
        x_a = _input((5, 3), 1)
        x_b = _input((5, 3), 1)
        indices = np.array([0, 2, 2, 4, 0])
        scatter = np.zeros((5, len(indices)), dtype=np.float32)
        scatter[indices, np.arange(len(indices))] = 1.0
        weights = np.random.default_rng(2).standard_normal((len(indices), 3)).astype(np.float32)
        (gather_rows(x_a, indices, scatter) * Tensor(weights)).sum().backward()
        (x_b[indices] * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(x_a.grad, x_b.grad, rtol=RTOL, atol=ATOL)

    def test_gather_rows_without_scatter_matrix(self):
        """The scatter_matrix=None fallback (large-graph path) matches the GEMM backward."""
        x_a = _input((5, 3), 3)
        x_b = _input((5, 3), 3)
        indices = np.array([1, 1, 3, 0])
        scatter = np.zeros((5, len(indices)), dtype=np.float32)
        scatter[indices, np.arange(len(indices))] = 1.0
        gather_rows(x_a, indices, None).sum().backward()
        gather_rows(x_b, indices, scatter).sum().backward()
        np.testing.assert_allclose(x_a.grad, x_b.grad, rtol=RTOL, atol=ATOL)
