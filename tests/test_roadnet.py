"""Tests for the road-network substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet import (
    ROAD_TYPES,
    CityConfig,
    RoadNetwork,
    RoadSegment,
    feature_dimension,
    generate_city,
    generate_city_pair,
    k_shortest_paths,
    load_network,
    path_cost,
    road_feature_matrix,
    save_network,
    shortest_path,
    shortest_path_length,
)


def tiny_network() -> RoadNetwork:
    """A 4-road chain with a shortcut: 0 -> 1 -> 2 -> 3 and 0 -> 3 (long)."""
    segments = [
        RoadSegment(0, (0, 0), (100, 0), "primary", max_speed=60),
        RoadSegment(1, (100, 0), (200, 0), "primary", max_speed=60),
        RoadSegment(2, (200, 0), (300, 0), "primary", max_speed=60),
        RoadSegment(3, (300, 0), (400, 0), "primary", max_speed=60),
        RoadSegment(4, (100, 0), (300, 0), "residential", length=500.0, max_speed=30),
    ]
    edges = [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]
    return RoadNetwork(segments, edges)


class TestRoadSegment:
    def test_length_computed_from_geometry(self):
        seg = RoadSegment(0, (0, 0), (30, 40))
        assert seg.length == pytest.approx(50.0)

    def test_explicit_length_kept(self):
        seg = RoadSegment(0, (0, 0), (30, 40), length=120.0)
        assert seg.length == 120.0

    def test_free_flow_travel_time(self):
        seg = RoadSegment(0, (0, 0), (100, 0), max_speed=36.0)  # 10 m/s
        assert seg.free_flow_travel_time() == pytest.approx(10.0)

    def test_midpoint(self):
        seg = RoadSegment(0, (0, 0), (10, 20))
        assert seg.midpoint == (5.0, 10.0)


class TestRoadNetwork:
    def test_sizes_and_lookup(self):
        net = tiny_network()
        assert net.num_roads == 5
        assert net.num_edges == 5
        assert net.segment(4).road_type == "residential"
        assert 4 in net and 99 not in net

    def test_successors_predecessors_degrees(self):
        net = tiny_network()
        assert set(net.successors(0)) == {1, 4}
        assert net.predecessors(3) == [2, 4]
        assert net.out_degree(0) == 2
        assert net.in_degree(0) == 0

    def test_adjacency_matrix(self):
        net = tiny_network()
        adj = net.adjacency_matrix()
        assert adj.shape == (5, 5)
        assert adj.sum() == 5
        assert adj[0, 1] == 1 and adj[1, 0] == 0

    def test_edge_index_shape(self):
        assert tiny_network().edge_index().shape == (2, 5)

    def test_duplicate_and_self_edges_ignored(self):
        segments = [RoadSegment(0, (0, 0), (1, 0)), RoadSegment(1, (1, 0), (2, 0))]
        net = RoadNetwork(segments, [(0, 1), (0, 1), (0, 0)])
        assert net.num_edges == 1

    def test_invalid_edge_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork([RoadSegment(0, (0, 0), (1, 0))], [(0, 7)])

    def test_duplicate_road_id_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork([RoadSegment(0, (0, 0), (1, 0)), RoadSegment(0, (1, 0), (2, 0))], [])

    def test_validate_path(self):
        net = tiny_network()
        assert net.validate_path([0, 1, 2, 3])
        assert net.validate_path([0, 4, 3])
        assert not net.validate_path([0, 2])

    def test_subgraph(self):
        net = tiny_network()
        sub = net.subgraph({0, 1, 2})
        assert sub.num_roads == 3
        assert sub.num_edges == 2

    def test_describe(self):
        stats = tiny_network().describe()
        assert stats["num_roads"] == 5
        assert stats["total_length_km"] > 0


class TestShortestPaths:
    def test_shortest_path_prefers_short_route(self):
        net = tiny_network()
        path, cost = shortest_path(net, 0, 3, weight="length")
        assert path == [0, 1, 2, 3]
        assert cost == pytest.approx(400.0)

    def test_shortest_path_length(self):
        net = tiny_network()
        assert shortest_path_length(net, 0, 3) == pytest.approx(400.0)

    def test_no_path_raises(self):
        net = tiny_network()
        with pytest.raises(ValueError):
            shortest_path(net, 3, 0)

    def test_unknown_road_raises(self):
        with pytest.raises(ValueError):
            shortest_path(tiny_network(), 0, 42)

    def test_k_shortest_paths_returns_alternatives(self):
        net = tiny_network()
        paths = k_shortest_paths(net, 0, 3, k=3)
        assert len(paths) == 2  # only two loopless routes exist
        assert paths[0][0] == [0, 1, 2, 3]
        assert paths[1][0] == [0, 4, 3]
        assert paths[0][1] <= paths[1][1]

    def test_k_shortest_paths_k_validation(self):
        with pytest.raises(ValueError):
            k_shortest_paths(tiny_network(), 0, 3, k=0)

    def test_k_shortest_paths_disconnected(self):
        assert k_shortest_paths(tiny_network(), 3, 0, k=2) == []

    def test_path_cost(self):
        net = tiny_network()
        assert path_cost(net, [0, 1]) == pytest.approx(200.0)

    def test_time_weight_uses_speed(self):
        net = tiny_network()
        length_path, _ = shortest_path(net, 0, 3, weight="length")
        time_path, _ = shortest_path(net, 0, 3, weight="time")
        assert length_path == time_path == [0, 1, 2, 3]

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            shortest_path(tiny_network(), 0, 3, weight="bananas")


class TestGenerator:
    def test_generated_city_is_reasonable(self):
        net = generate_city(CityConfig(grid_rows=6, grid_cols=6, seed=3))
        assert net.num_roads > 30
        assert net.num_edges > net.num_roads  # connectivity between segments
        stats = net.describe()
        assert stats["mean_out_degree"] > 1.0

    def test_generated_city_deterministic(self):
        config = CityConfig(grid_rows=5, grid_cols=5, seed=11)
        net_a = generate_city(config)
        net_b = generate_city(config)
        assert net_a.num_roads == net_b.num_roads
        assert net_a.edges == net_b.edges

    def test_generated_city_has_mixed_road_types(self):
        net = generate_city(CityConfig(grid_rows=8, grid_cols=8, seed=0))
        types = {seg.road_type for seg in net.segments}
        assert "primary" in types and "residential" in types
        assert types.issubset(set(ROAD_TYPES))

    def test_city_pair_sizes(self):
        bj, porto = generate_city_pair(seed=0)
        assert bj.num_roads > porto.num_roads

    def test_most_roads_reachable(self):
        net = generate_city(CityConfig(grid_rows=6, grid_cols=6, seed=5))
        source = net.road_ids()[0]
        reachable = 0
        for target in net.road_ids()[1:30]:
            try:
                shortest_path(net, source, target)
                reachable += 1
            except ValueError:
                pass
        assert reachable >= 25


class TestFeaturesAndIO:
    def test_feature_matrix_shape(self):
        net = tiny_network()
        features = road_feature_matrix(net)
        assert features.shape == (5, feature_dimension())

    def test_feature_matrix_one_hot(self):
        net = tiny_network()
        features = road_feature_matrix(net, normalize=False)
        one_hot = features[:, : len(ROAD_TYPES)]
        np.testing.assert_allclose(one_hot.sum(axis=1), np.ones(5))

    def test_feature_matrix_normalised(self):
        net = generate_city(CityConfig(grid_rows=5, grid_cols=5, seed=2))
        features = road_feature_matrix(net)
        numeric = features[:, len(ROAD_TYPES):]
        np.testing.assert_allclose(numeric.mean(axis=0), np.zeros(5), atol=1e-4)

    def test_save_load_roundtrip(self, tmp_path):
        net = tiny_network()
        save_network(net, tmp_path / "net")
        loaded = load_network(tmp_path / "net")
        assert loaded.num_roads == net.num_roads
        assert loaded.edges == net.edges
        assert loaded.segment(4).length == pytest.approx(500.0)
        assert loaded.segment(0).road_type == "primary"


@settings(max_examples=10, deadline=None)
@given(rows=st.integers(min_value=3, max_value=7), cols=st.integers(min_value=3, max_value=7))
def test_property_generated_network_edges_reference_valid_roads(rows, cols):
    net = generate_city(CityConfig(grid_rows=rows, grid_cols=cols, seed=rows * 10 + cols))
    ids = set(net.road_ids())
    assert all(a in ids and b in ids for a, b in net.edges)
    # Road ids are dense 0..N-1.
    assert ids == set(range(net.num_roads))
