"""Tests for ``repro.obs`` — the metrics registry, monitor, and snapshots.

The acceptance pins:

* instruments are exact under concurrency (an 8-thread hammer loses no
  increments — same doctrine as the ``_LRUCache`` hammer in
  ``test_server.py``);
* histogram bucketing is deterministic at the edges (exact bound, below the
  first bound, above the last bound);
* registration is get-or-create with "one name, one meaning" conflicts;
* the :class:`~repro.obs.SystemMonitor` lifecycle is driven entirely by a
  :class:`~repro.utils.clock.VirtualClock` — no real sleeps;
* snapshots are deterministic, versioned, and atomically dumpable;
* the :class:`~repro.api.Engine` integration records cache hits/misses,
  encode batch sizes, and per-backend query latency into a bound registry.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.api import QueryRequest
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SystemMonitor,
    default_process_sampler,
    dump_metrics,
    format_snapshot,
)
from repro.utils.clock import VirtualClock
from serving_runtime_kit import make_engine, make_trajectory, probe_queries, seed_engine


# ---------------------------------------------------------------------- #
# Instruments
# ---------------------------------------------------------------------- #
class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_is_rejected(self):
        counter = Counter()
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1.0)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == 1.0

    def test_peak_is_a_high_watermark(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.peak == 10.0  # the burst stays visible after it drains


class TestHistogram:
    def test_bucket_edges(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        histogram.observe(0.5)  # below the first bound -> first bucket
        histogram.observe(1.0)  # exactly the first bound -> first bucket
        histogram.observe(2.0)  # exactly a middle bound -> that bucket
        histogram.observe(4.0)  # exactly the last bound -> last bucket
        histogram.observe(4.5)  # above the last bound -> overflow
        series = histogram._series()
        assert series["bucket_counts"] == [2, 1, 1]
        assert series["overflow"] == 1
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(12.0)
        assert histogram.mean == pytest.approx(2.4)

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram(())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram((1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="finite"):
            Histogram((1.0, float("inf")))

    def test_quantile_interpolates_within_buckets(self):
        histogram = Histogram((1.0, 2.0))
        for _ in range(4):
            histogram.observe(0.5)
        # All mass in the first bucket: interpolate between 0 and its bound.
        assert histogram.quantile(0.5) == pytest.approx(0.5)
        assert histogram.quantile(1.0) == pytest.approx(1.0)

    def test_quantile_edge_cases(self):
        histogram = Histogram((1.0, 2.0))
        assert histogram.quantile(0.5) == 0.0  # empty
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        histogram.observe(100.0)  # only overflow mass
        assert histogram.quantile(0.9) == 2.0  # reports the last bound


# ---------------------------------------------------------------------- #
# Families + registry
# ---------------------------------------------------------------------- #
class TestMetricFamily:
    def test_same_labels_return_the_same_child(self):
        registry = MetricsRegistry()
        family = registry.counter_family("requests_total", labels=("backend",))
        assert family.labels(backend="ivf") is family.labels(backend="ivf")
        assert family.labels(backend="ivf") is not family.labels(backend="flat")

    def test_wrong_label_names_are_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter_family("requests_total", labels=("backend",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(nope="x")
        with pytest.raises(ValueError, match="takes labels"):
            family.labels()

    def test_series_are_sorted_by_label_values(self):
        registry = MetricsRegistry()
        family = registry.gauge_family("depth", labels=("shard",))
        family.labels(shard="b").set(2.0)
        family.labels(shard="a").set(1.0)
        series = registry.snapshot()["metrics"]["depth"]["series"]
        assert [s["labels"]["shard"] for s in series] == ["a", "b"]


class TestMetricsRegistry:
    def test_registration_is_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("total") is registry.counter("total")
        assert registry.histogram("sizes", buckets=(1.0, 2.0)) is registry.histogram(
            "sizes", buckets=(1.0, 2.0)
        )

    def test_conflicting_shapes_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("total")
        with pytest.raises(ValueError, match="one name, one meaning"):
            registry.gauge("total")  # same name, different kind
        registry.histogram("sizes", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="one name, one meaning"):
            registry.histogram("sizes", buckets=(1.0, 4.0))  # different buckets
        registry.counter_family("labeled", labels=("a",))
        with pytest.raises(ValueError, match="one name, one meaning"):
            registry.counter_family("labeled", labels=("b",))  # different labels

    def test_empty_name_is_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            MetricsRegistry().counter("")

    def test_snapshot_is_versioned_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("zebra_total", "came second").inc(3)
        registry.gauge("apple_depth").set(7.0)
        registry.histogram("latency", buckets=DEFAULT_LATENCY_BUCKETS).observe(0.002)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert list(snapshot["metrics"]) == ["apple_depth", "latency", "zebra_total"]
        assert snapshot["metrics"]["zebra_total"]["help"] == "came second"
        # Byte-identical across calls: the trajectory artefact is diffable.
        assert json.dumps(snapshot, sort_keys=True) == json.dumps(
            registry.snapshot(), sort_keys=True
        )

    def test_names_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.counter("a_total")
        assert registry.names() == ["a_total", "b_total"]


class TestNullRegistry:
    def test_disabled_and_empty(self):
        assert NULL_REGISTRY.enabled is False
        assert isinstance(NULL_REGISTRY, NullRegistry)
        assert NULL_REGISTRY.snapshot()["metrics"] == {}
        assert NULL_REGISTRY.names() == []

    def test_instruments_are_free_noops(self):
        counter = NULL_REGISTRY.counter("anything")
        counter.inc(5)
        assert counter.value == 0.0
        histogram = NULL_REGISTRY.histogram("sizes", buckets=DEFAULT_SIZE_BUCKETS)
        histogram.observe(3.0)
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0
        family = NULL_REGISTRY.counter_family("labeled", labels=("x",))
        assert family.labels(x="1") is family.labels(x="2")  # one shared no-op
        gauge = NULL_REGISTRY.gauge("depth")
        gauge.set(9.0)
        assert gauge.value == 0.0
        assert gauge.peak == 0.0


# ---------------------------------------------------------------------- #
# Thread safety
# ---------------------------------------------------------------------- #
class TestRegistryThreadSafety:
    def test_registry_survives_a_hammer(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total")
        histogram = registry.histogram("hammer_sizes", buckets=(1.0, 4.0, 16.0))
        gauge = registry.gauge("hammer_depth")
        family = registry.counter_family("hammer_labeled_total", labels=("worker",))
        errors: list[Exception] = []
        ops_per_thread = 2000

        def hammer(seed: int) -> None:
            try:
                child = family.labels(worker=str(seed % 2))
                for i in range(ops_per_thread):
                    counter.inc()
                    histogram.observe(float(i % 20))
                    gauge.set(float(i))
                    child.inc()
                # Re-resolution under load returns the very same objects.
                assert registry.counter("hammer_total") is counter
                assert family.labels(worker=str(seed % 2)) is child
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Every mutation is lock-protected: none may be lost to a race.
        assert counter.value == 8 * ops_per_thread
        assert histogram.count == 8 * ops_per_thread
        labeled = registry.snapshot()["metrics"]["hammer_labeled_total"]["series"]
        assert sum(series["value"] for series in labeled) == 8 * ops_per_thread

    def test_concurrent_first_resolution_yields_one_family(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)
        resolved: list[int] = []
        lock = threading.Lock()

        def resolve() -> None:
            barrier.wait(timeout=5)
            child = registry.counter("contested_total")
            with lock:
                resolved.append(id(child))

        threads = [threading.Thread(target=resolve) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(resolved)) == 1


# ---------------------------------------------------------------------- #
# SystemMonitor
# ---------------------------------------------------------------------- #
class TestSystemMonitor:
    def test_lifecycle_under_virtual_clock(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        sample_taken = threading.Event()
        readings: list[float] = []

        def sampler() -> tuple[float, float]:
            readings.append(clock.monotonic())
            sample_taken.set()
            return float(len(readings)), 1000.0 * len(readings)

        monitor = SystemMonitor(registry, interval=2.0, sampler=sampler, clock=clock)
        monitor.start()
        assert monitor.running
        assert monitor.start() is monitor  # idempotent, no second thread
        # start() sampled once synchronously on the calling thread.
        assert registry.counter("process_samples_total").value == 1
        assert registry.gauge("process_cpu_seconds").value == 1.0
        assert registry.gauge("process_rss_bytes").value == 1000.0

        sample_taken.clear()
        clock.wait_for_waiters(1)  # the loop is provably parked on the clock
        clock.advance(1.0)  # below the interval: the deadline is not reached
        assert not sample_taken.is_set()
        clock.advance(1.0)  # crosses the deadline -> one loop sample
        assert sample_taken.wait(timeout=5)  # real timeout bounds failure only
        assert registry.counter("process_samples_total").value == 2

        sample_taken.clear()
        clock.wait_for_waiters(1)
        clock.advance(2.0)
        assert sample_taken.wait(timeout=5)
        assert registry.counter("process_samples_total").value == 3

        clock.wait_for_waiters(1)
        monitor.stop()
        assert not monitor.running
        monitor.stop()  # idempotent
        # Stopped means stopped: advancing time takes no further samples.
        count_after_stop = registry.counter("process_samples_total").value
        clock.advance(10.0)
        assert registry.counter("process_samples_total").value == count_after_stop

    def test_context_manager_stops_the_thread(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        with SystemMonitor(registry, sampler=lambda: (1.0, 2.0), clock=clock) as monitor:
            assert monitor.running
        assert not monitor.running

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            SystemMonitor(MetricsRegistry(), interval=0.0)

    def test_default_sampler_reads_this_process(self):
        cpu_seconds, rss_bytes = default_process_sampler()
        assert cpu_seconds > 0.0
        assert rss_bytes > 0.0

    def test_sample_once_works_against_the_null_registry(self):
        monitor = SystemMonitor(NULL_REGISTRY, sampler=lambda: (1.0, 2.0))
        assert monitor.sample_once() == (1.0, 2.0)


# ---------------------------------------------------------------------- #
# Dump + format
# ---------------------------------------------------------------------- #
class TestDumpAndFormat:
    def test_dump_metrics_writes_valid_json_atomically(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("served_total").inc(5)
        target = tmp_path / "nested" / "snapshot.json"
        written = dump_metrics(target, registry.snapshot())
        assert written == target
        loaded = json.loads(target.read_text())
        assert loaded["metrics"]["served_total"]["series"][0]["value"] == 5
        # The tmp staging file was replaced away, not left behind.
        assert list(target.parent.iterdir()) == [target]

    def test_format_snapshot_renders_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("served_total").inc(3)
        registry.gauge("lag").set(7.0)
        registry.histogram("wait_seconds", buckets=(0.1, 1.0)).observe(0.05)
        family = registry.counter_family("by_backend_total", labels=("backend",))
        family.labels(backend="ivf").inc()
        snapshot = registry.snapshot()
        snapshot["slo"] = {"qps": 12.5}
        text = format_snapshot(snapshot)
        assert SNAPSHOT_SCHEMA in text
        assert "served_total" in text and " 3" in text
        assert "{backend=ivf}" in text
        assert "peak" in text  # gauges show their high watermark
        assert "count=1" in text  # histograms show count/sum/quantiles
        assert "qps" in text  # the slo block is rendered

    def test_format_snapshot_handles_empty(self):
        assert "(no metrics recorded)" in format_snapshot(NULL_REGISTRY.snapshot())


# ---------------------------------------------------------------------- #
# Engine integration
# ---------------------------------------------------------------------- #
class TestEngineIntegration:
    def test_cache_and_backend_latency_metrics(self):
        registry = MetricsRegistry()
        engine = make_engine()
        seed_engine(engine, 12)
        engine.bind_metrics(registry)
        request = QueryRequest(queries=probe_queries(1), k=3)
        engine.query(request)
        engine.query(request)  # identical request: served from the cache
        families = registry.snapshot()["metrics"]
        by_result = {
            series["labels"]["result"]: series["value"]
            for series in families["engine_cache_requests_total"]["series"]
        }
        assert by_result == {"hit": 1, "miss": 1}
        (latency,) = families["engine_query_seconds"]["series"]
        assert latency["labels"]["backend"] == "bruteforce"
        assert latency["count"] == 1  # only the miss ran a backend scan

    def test_encode_batch_sizes_are_recorded(self):
        registry = MetricsRegistry()
        engine = make_engine()
        engine.bind_metrics(registry)
        engine.ingest([make_trajectory(i) for i in range(3)])
        histogram = registry.snapshot()["metrics"]["engine_encode_batch_size"]
        assert histogram["series"][0]["count"] >= 1
        assert histogram["series"][0]["sum"] == 3  # every trajectory counted once

    def test_bind_metrics_detaches_with_none(self):
        registry = MetricsRegistry()
        engine = make_engine()
        seed_engine(engine, 8)
        engine.bind_metrics(registry)
        engine.bind_metrics(None)
        assert engine.metrics_registry is NULL_REGISTRY
        engine.query(QueryRequest(queries=probe_queries(1), k=2))
        series = registry.snapshot()["metrics"]["engine_cache_requests_total"]["series"]
        # The bind pre-created the hit/miss children; the detach means no
        # traffic ever lands in them.
        assert all(entry["value"] == 0.0 for entry in series)

    def test_replicas_share_the_primary_registry_children(self):
        registry = MetricsRegistry()
        engine = make_engine()
        seed_engine(engine, 8)
        engine.bind_metrics(registry)
        replica = engine.replicate()
        assert replica.metrics_registry is registry
        replica.query(QueryRequest(queries=probe_queries(1), k=2))
        by_result = {
            series["labels"]["result"]: series["value"]
            for series in registry.snapshot()["metrics"]["engine_cache_requests_total"][
                "series"
            ]
        }
        assert by_result["miss"] == 1  # the replica's traffic lands in one place
