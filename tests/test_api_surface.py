"""Public-API surface lock for `repro.api`, `repro.server`, `repro.analysis` and `repro.obs`.

``tests/data/api_surface.json`` is the checked-in snapshot of the facade's
contract: the exported names (``repro.api.__all__`` and
``repro.server.__all__``), every public dataclass's field list (including
``ServerConfig``'s knobs), the public `Engine`/`ServingRuntime` methods,
the registered built-in backends, and the static-analysis surface (its
``__all__``, the ``Finding`` shape, the registered rule ids, and the CLI
entry point).  This test
diffs the live surface against the snapshot, so an accidental rename, field
removal or export drop fails CI with an explicit diff instead of silently
breaking downstream users.

Changing the surface on purpose: update the snapshot in the same commit —
regenerate it with

    PYTHONPATH=src python tests/test_api_surface.py --regenerate

and let the reviewer see the contract change as a readable JSON diff.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import repro.analysis as analysis
import repro.api as api
import repro.obs as obs
import repro.server as server

SNAPSHOT_PATH = Path(__file__).parent / "data" / "api_surface.json"

#: Public dataclasses whose field lists are part of the locked contract.
_LOCKED_DATACLASSES = (
    "EncodeRequest",
    "EngineConfig",
    "IngestBatch",
    "QueryHit",
    "QueryRequest",
    "QueryResponse",
    "SnapshotInfo",
)

#: Backends that must always be available from a clean install.
_BUILTIN_BACKENDS = ("bruteforce", "chunked", "ivf", "ivfpq", "sharded")


def current_surface() -> dict:
    """Introspect the live `repro.api` surface into the snapshot shape."""
    surface: dict = {"__all__": sorted(api.__all__)}
    surface["dataclasses"] = {
        name: [field.name for field in dataclasses.fields(getattr(api, name))]
        for name in _LOCKED_DATACLASSES
    }
    surface["builtin_backends"] = sorted(
        name for name in api.available_backends() if name in _BUILTIN_BACKENDS
    )
    surface["engine_methods"] = sorted(
        name
        for name in dir(api.Engine)
        if not name.startswith("_") and callable(getattr(api.Engine, name, None))
    )
    surface["server"] = {
        "__all__": sorted(server.__all__),
        "server_config_fields": [
            field.name for field in dataclasses.fields(server.ServerConfig)
        ],
        "runtime_methods": sorted(
            name
            for name in dir(server.ServingRuntime)
            if not name.startswith("_")
            and callable(getattr(server.ServingRuntime, name, None))
        ),
    }
    surface["obs"] = {
        "__all__": sorted(obs.__all__),
        "registry_methods": sorted(
            name
            for name in dir(obs.MetricsRegistry)
            if not name.startswith("_")
            and callable(getattr(obs.MetricsRegistry, name, None))
        ),
        "snapshot_schema": obs.SNAPSHOT_SCHEMA,
        "snapshot_schema_version": obs.SNAPSHOT_SCHEMA_VERSION,
    }
    surface["analysis"] = {
        "__all__": sorted(analysis.__all__),
        "cli_entry": "python -m repro.analysis",
        "finding_fields": [
            field.name for field in dataclasses.fields(analysis.Finding)
        ],
        "rules": sorted(analysis.available_rules()),
    }
    return surface


def test_api_surface_matches_snapshot():
    assert SNAPSHOT_PATH.exists(), (
        f"missing {SNAPSHOT_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_api_surface.py --regenerate`"
    )
    locked = json.loads(SNAPSHOT_PATH.read_text())
    live = current_surface()
    assert live == locked, (
        "repro.api's public surface drifted from tests/data/api_surface.json.\n"
        "If the change is intentional, regenerate the snapshot "
        "(PYTHONPATH=src python tests/test_api_surface.py --regenerate) and "
        "commit it together with the code change.\n"
        f"live:   {json.dumps(live, indent=2, sort_keys=True)}\n"
        f"locked: {json.dumps(locked, indent=2, sort_keys=True)}"
    )


def test_every_locked_dataclass_is_exported_and_frozen():
    for name in _LOCKED_DATACLASSES:
        cls = getattr(api, name)
        assert name in api.__all__
        assert dataclasses.is_dataclass(cls)
        assert cls.__dataclass_params__.frozen, f"{name} must be frozen"


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(json.dumps(current_surface(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT_PATH}")
    else:
        print(json.dumps(current_surface(), indent=2, sort_keys=True))
